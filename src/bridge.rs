//! Bridge between the optimizer-level policies (`spotweb-core`) and
//! the request-level simulator (`spotweb-sim`).
//!
//! `spotweb-core` and `spotweb-sim` are deliberately decoupled (the
//! simulator must not depend on the optimizer); this facade module
//! supplies the glue: [`PolicyBridge`] adapts any
//! [`spotweb_core::policy::Policy`] to the simulator's
//! [`spotweb_sim::runner::FleetPolicy`], estimating the revocation
//! covariance from the market history exactly as the coarse harness
//! does.

use spotweb_core::policy::{Policy, PolicyObservation};
use spotweb_market::estimate_correlation;
use spotweb_market::Catalog;
use spotweb_sim::runner::FleetPolicy;

/// Adapter: drive a provisioning [`Policy`] from the request-level
/// simulator's observations.
pub struct PolicyBridge<P> {
    policy: P,
    catalog: Catalog,
}

impl<P: Policy> PolicyBridge<P> {
    /// Wrap `policy` operating over `catalog`.
    pub fn new(policy: P, catalog: Catalog) -> Self {
        PolicyBridge { policy, catalog }
    }

    /// Access the wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

impl<P: Policy> FleetPolicy for PolicyBridge<P> {
    fn decide_fleet(
        &mut self,
        interval: usize,
        observed_rps: f64,
        prices: &[f64],
        failure_probs: &[f64],
        failure_history: &[Vec<f64>],
    ) -> Vec<u32> {
        let covariance = if failure_history.first().map_or(0, |s| s.len()) >= 2 {
            estimate_correlation(failure_history, 0.1)
        } else {
            spotweb_linalg::Matrix::identity(self.catalog.len())
        };
        let obs = PolicyObservation {
            interval,
            current_workload: observed_rps,
            prices,
            failure_probs,
            covariance: &covariance,
            oracle: None,
        };
        self.policy.decide(&self.catalog, &obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_core::{SpotWebConfig, SpotWebPolicy};
    use spotweb_market::{Catalog, CloudSim};
    use spotweb_sim::runner::{run_full_stack, RunnerConfig};
    use spotweb_workload::Trace;

    #[test]
    fn spotweb_policy_drives_request_level_simulation() {
        let catalog = Catalog::fig4_testbed();
        let config = RunnerConfig {
            intervals: 5,
            seed: 4,
            ..RunnerConfig::default()
        };
        let mut cloud = CloudSim::new(catalog.clone(), 6, 64);
        cloud.warm_up(8);
        let trace = Trace::new(config.interval_secs, vec![300.0; 7]);
        let mut bridge = PolicyBridge::new(
            SpotWebPolicy::new(
                SpotWebConfig {
                    // The testbed intervals are 10 min, not hourly.
                    interval_secs: config.interval_secs,
                    ..SpotWebConfig::default()
                },
                catalog.len(),
            ),
            catalog,
        );
        let report = run_full_stack(&mut bridge, &mut cloud, &trace, &config);
        assert!(report.served > 10_000, "served {}", report.served);
        assert!(
            report.drop_fraction < 0.05,
            "drops {}",
            report.drop_fraction
        );
        assert!(report.p90 < 1.0, "p90 {}", report.p90);
        assert!(report.cost > 0.0);
    }
}
