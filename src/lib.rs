//! # SpotWeb
//!
//! A from-scratch Rust implementation of **SpotWeb** (Ali-Eldin et al.,
//! HPDC 2019): a framework for running latency-sensitive distributed
//! web services on *transient* (revocable, spot-priced) cloud servers
//! while maintaining Quality-of-Service.
//!
//! This crate is a facade that re-exports the subsystem crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `spotweb-linalg` | dense matrices, Cholesky/LDLᵀ/QR, least squares |
//! | [`solver`] | `spotweb-solver` | ADMM quadratic-program solver |
//! | [`market`] | `spotweb-market` | transient-cloud market simulator (catalog, prices, revocations) |
//! | [`workload`] | `spotweb-workload` | synthetic Wikipedia/VoD workload traces |
//! | [`predict`] | `spotweb-predict` | cubic-spline + AR predictors with 99% CI padding |
//! | [`core`] | `spotweb-core` | multi-period portfolio optimizer, baselines, controller |
//! | [`lb`] | `spotweb-lb` | transiency-aware weighted-round-robin load balancer |
//! | [`sim`] | `spotweb-sim` | discrete-event web-cluster simulator |
//! | [`telemetry`] | `spotweb-telemetry` | deterministic tracing, streaming metrics, decision-explain records |
//!
//! ## Quickstart
//!
//! One optimization step, end to end:
//!
//! ```
//! use spotweb::core::{MpoOptimizer, SpotWebConfig, ForecastBundle, to_server_counts};
//! use spotweb::market::{Catalog, CloudSim, estimate_correlation};
//!
//! // A cloud of 9 EC2-style spot markets, warmed up for two days.
//! let catalog = Catalog::ec2_subset(9);
//! let mut cloud = CloudSim::new(catalog.clone(), 42, 336);
//! cloud.warm_up(48);
//! let tick = cloud.current();
//!
//! // Forecasts over a 4-hour horizon (flat here; plug in the
//! // spotweb::predict stack for real traces).
//! let forecast = ForecastBundle {
//!     workload: vec![5_000.0; 4],
//!     prices: vec![tick.prices.clone(); 4],
//!     failures: vec![tick.failure_probs.clone(); 4],
//! };
//! let m = estimate_correlation(&cloud.history().failure_matrix(), 0.1);
//!
//! let mut optimizer = MpoOptimizer::new(SpotWebConfig::default());
//! let decision = optimizer
//!     .optimize(&catalog, &forecast, &m, &vec![0.0; catalog.len()])
//!     .expect("solvable portfolio");
//! let fleet = to_server_counts(&catalog, decision.first(), 5_000.0, 5e-3);
//! let capacity: f64 = fleet
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
//!     .sum();
//! assert!(capacity >= 5_000.0);
//! ```
//!
//! See `examples/` for larger walkthroughs (`quickstart`,
//! `cost_showdown`, `failover_drill`, `forecasting`, `full_stack`).

pub mod bridge;

pub use spotweb_core as core;
pub use spotweb_lb as lb;
pub use spotweb_linalg as linalg;
pub use spotweb_market as market;
pub use spotweb_predict as predict;
pub use spotweb_sim as sim;
pub use spotweb_solver as solver;
pub use spotweb_telemetry as telemetry;
pub use spotweb_workload as workload;
