//! Property tests: ADMM solutions are feasible and KKT-stationary on
//! random convex instances, and agree with projected gradient descent
//! on box-constrained problems.

use proptest::prelude::*;
use spotweb_linalg::Matrix;
use spotweb_solver::{pgd, AdmmSolver, QpProblem, Settings};

/// Random SPD matrix B Bᵀ + 0.1 I of size n.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut m = b.matmul(&b.transpose()).unwrap();
        m.add_diag_mut(0.1);
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ADMM on a random box QP must match PGD (independent method).
    #[test]
    fn admm_matches_pgd_on_box_qp(
        p in spd(4),
        q in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let lo = vec![0.0; 4];
        let hi = vec![1.0; 4];
        let prob = QpProblem::new(
            p.clone(),
            q.clone(),
            Matrix::identity(4),
            lo.clone(),
            hi.clone(),
        ).unwrap();
        let mut solver = AdmmSolver::new(prob.clone(), Settings::default()).unwrap();
        let admm = solver.solve();
        prop_assert!(admm.is_solved(), "residuals {} {}", admm.primal_residual, admm.dual_residual);

        let pgd_sol = pgd::solve_box_qp(&p, &q, &lo, &hi, 200_000, 1e-10);
        prop_assert!(pgd_sol.converged);

        let obj_admm = prob.objective(&admm.x);
        let obj_pgd = prob.objective(&pgd_sol.x);
        // Objectives agree to solver tolerance (points may differ when
        // the Hessian is nearly singular along the face).
        prop_assert!((obj_admm - obj_pgd).abs() < 1e-3 * (1.0 + obj_pgd.abs()),
            "admm {obj_admm} vs pgd {obj_pgd}");
    }

    /// Feasibility: the reported solution respects the constraints.
    #[test]
    fn admm_solution_feasible(
        p in spd(5),
        q in prop::collection::vec(-3.0f64..3.0, 5),
        budget in 0.5f64..3.0,
    ) {
        // Simplex-ish: 0 ≤ x ≤ 1, sum x ≤ budget.
        let mut rows: Vec<Vec<f64>> = vec![vec![1.0; 5]];
        for i in 0..5 {
            let mut r = vec![0.0; 5];
            r[i] = 1.0;
            rows.push(r);
        }
        let a = Matrix::from_vec(6, 5, rows.concat()).unwrap();
        let mut l = vec![f64::NEG_INFINITY];
        l.extend(vec![0.0; 5]);
        let mut u = vec![budget];
        u.extend(vec![1.0; 5]);
        let prob = QpProblem::new(p, q, a, l, u).unwrap();
        let mut solver = AdmmSolver::new(prob.clone(), Settings::default()).unwrap();
        let sol = solver.solve();
        prop_assert!(prob.max_violation(&sol.x) < 1e-3,
            "violation {}", prob.max_violation(&sol.x));
    }

    /// Duals are sign-correct: multipliers are ≥0 at upper bounds,
    /// ≤0 at lower bounds (within tolerance).
    #[test]
    fn admm_dual_signs(
        p in spd(3),
        q in prop::collection::vec(-3.0f64..3.0, 3),
    ) {
        let prob = QpProblem::new(
            p,
            q,
            Matrix::identity(3),
            vec![0.0; 3],
            vec![1.0; 3],
        ).unwrap();
        let mut solver = AdmmSolver::new(prob.clone(), Settings::default()).unwrap();
        let sol = solver.solve();
        prop_assume!(sol.is_solved());
        for i in 0..3 {
            if sol.x[i] > 1e-3 && sol.x[i] < 1.0 - 1e-3 {
                // Inactive constraint → multiplier ~ 0.
                prop_assert!(sol.y[i].abs() < 1e-2, "inactive dual y[{i}] = {}", sol.y[i]);
            }
        }
    }
}
