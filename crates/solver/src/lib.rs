//! Convex quadratic-program solver for SpotWeb.
//!
//! The paper solves its multi-period portfolio optimization with
//! CVXPY + the SCS conic solver. The MPO instance is a convex QP —
//! linear cost terms, a quadratic risk term `α·AᵀMA`, and box/budget
//! constraints — so this crate implements a first-order operator-
//! splitting QP solver in the style of
//! [OSQP](https://osqp.org) (Stellato et al., 2020):
//!
//! ```text
//! minimize   ½ xᵀPx + qᵀx
//! subject to l ≤ Ax ≤ u
//! ```
//!
//! with `P ⪰ 0`. The ADMM iteration factors `P + σI + ρAᵀA` **once**
//! (dense Cholesky from `spotweb-linalg`) and reuses the factorization
//! every iteration, re-factoring only when the adaptive penalty ρ moves
//! by more than a threshold. Ruiz equilibration preconditions badly
//! scaled problems (per-request costs span orders of magnitude across
//! markets).
//!
//! Two entry points:
//! * [`admm::AdmmSolver`] — the general path used by the MPO optimizer.
//! * [`pgd`] — projected gradient descent for box-only problems; used
//!   in tests as an independent cross-check of ADMM solutions.

#![forbid(unsafe_code)]
// Numeric kernels use explicit index loops throughout: the dual-array
// access patterns (L[(i,k)]·x[k], row/col scalings) read far clearer
// with indices than with zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

pub mod admm;
pub mod pgd;
pub mod qp;
pub mod scaling;
pub mod termination;

pub use admm::AdmmSolver;
pub use qp::{QpProblem, QpSolution, QpStatus, Settings};

/// Errors reported when constructing or solving a QP.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Problem dimensions are inconsistent.
    Dimension(&'static str),
    /// A bound pair has `l > u`.
    InfeasibleBounds {
        /// Constraint row with crossing bounds.
        row: usize,
    },
    /// The KKT system could not be factored (P not PSD after
    /// regularization, or numerical breakdown).
    Factorization(String),
}

impl core::fmt::Display for SolverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolverError::Dimension(c) => write!(f, "dimension error: {c}"),
            SolverError::InfeasibleBounds { row } => {
                write!(f, "infeasible bounds at constraint row {row} (l > u)")
            }
            SolverError::Factorization(msg) => write!(f, "factorization failed: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Convenience result alias.
pub type Result<T> = core::result::Result<T, SolverError>;
