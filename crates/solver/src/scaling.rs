//! Ruiz equilibration.
//!
//! Portfolio QPs are badly scaled out of the box: per-request costs are
//! ~1e-5 while allocation fractions are ~1 and penalty terms can be
//! ~1e2. Ruiz equilibration iteratively normalizes the rows/columns of
//! the stacked KKT data so the ADMM residuals are commensurate, which
//! dramatically reduces iteration counts.
//!
//! We scale the problem
//! `min ½xᵀPx + qᵀx, l ≤ Ax ≤ u` to
//! `min ½x̄ᵀ(cDPD)x̄ + (cDq)ᵀx̄, El ≤ (EAD)x̄ ≤ Eu` with diagonal `D`,
//! `E` and cost scalar `c`, solving in the scaled space and unscaling
//! `x = Dx̄`, `y = cE ȳ`.

use spotweb_linalg::Matrix;

use crate::qp::QpProblem;

/// Diagonal scalings produced by [`ruiz_equilibrate`].
#[derive(Debug, Clone)]
pub struct Scaling {
    /// Variable scaling (length n): `x = d ⊙ x̄`.
    pub d: Vec<f64>,
    /// Constraint scaling (length m): scaled rows are `e[i] · a_i`.
    pub e: Vec<f64>,
    /// Cost scalar `c`.
    pub c: f64,
}

impl Scaling {
    /// The identity scaling (used when scaling is disabled).
    pub fn identity(n: usize, m: usize) -> Self {
        Scaling {
            d: vec![1.0; n],
            e: vec![1.0; m],
            c: 1.0,
        }
    }

    /// Map a scaled primal iterate back to the original space.
    pub fn unscale_x(&self, x_bar: &[f64]) -> Vec<f64> {
        x_bar.iter().zip(&self.d).map(|(v, d)| v * d).collect()
    }

    /// Map a scaled dual iterate back to the original space.
    pub fn unscale_y(&self, y_bar: &[f64]) -> Vec<f64> {
        y_bar
            .iter()
            .zip(&self.e)
            .map(|(v, e)| v * e / self.c)
            .collect()
    }
}

/// Infinity norm of column `j` over both `P` (n rows) and `A` (m rows).
fn col_norm(p: &Matrix, a: &Matrix, j: usize) -> f64 {
    let mut nrm: f64 = 0.0;
    for i in 0..p.rows() {
        nrm = nrm.max(p[(i, j)].abs());
    }
    for i in 0..a.rows() {
        nrm = nrm.max(a[(i, j)].abs());
    }
    nrm
}

/// Infinity norm of row `i` of `A`.
fn row_norm(a: &Matrix, i: usize) -> f64 {
    a.row(i).iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

fn safe_inv_sqrt(v: f64) -> f64 {
    if v < 1e-10 {
        1.0
    } else {
        1.0 / v.sqrt()
    }
}

/// Equilibrate the problem in place, returning the applied [`Scaling`].
///
/// `iters` rounds of the modified Ruiz iteration (as in OSQP §5.1),
/// followed by a cost normalization that picks `c` so the scaled
/// objective gradient has unit-ish magnitude.
pub fn ruiz_equilibrate(problem: &mut QpProblem, iters: usize) -> Scaling {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut scaling = Scaling::identity(n, m);

    for _ in 0..iters {
        // Column scalings from max |entry| per variable across P and A.
        let delta_d: Vec<f64> = (0..n)
            .map(|j| safe_inv_sqrt(col_norm(&problem.p, &problem.a, j)))
            .collect();
        // Row scalings for A.
        let delta_e: Vec<f64> = (0..m)
            .map(|i| safe_inv_sqrt(row_norm(&problem.a, i)))
            .collect();

        // P ← D P D.
        for i in 0..n {
            for j in 0..n {
                problem.p[(i, j)] *= delta_d[i] * delta_d[j];
            }
        }
        // q ← D q.
        for j in 0..n {
            problem.q[j] *= delta_d[j];
        }
        // A ← E A D.
        for i in 0..m {
            for j in 0..n {
                problem.a[(i, j)] *= delta_e[i] * delta_d[j];
            }
        }
        // Bounds ← E ⊙ bounds.
        for i in 0..m {
            problem.l[i] *= delta_e[i];
            problem.u[i] *= delta_e[i];
        }
        for j in 0..n {
            scaling.d[j] *= delta_d[j];
        }
        for i in 0..m {
            scaling.e[i] *= delta_e[i];
        }
    }

    // Cost normalization: c = 1 / max(mean column norm of P, ‖q‖∞).
    let mean_p_col: f64 = if n == 0 {
        0.0
    } else {
        (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| problem.p[(i, j)].abs())
                    .fold(0.0_f64, f64::max)
            })
            .sum::<f64>()
            / n as f64
    };
    let q_norm = spotweb_linalg::vector::norm_inf(&problem.q);
    let denom = mean_p_col.max(q_norm);
    let c = if denom < 1e-10 { 1.0 } else { 1.0 / denom };
    problem.p.scale_mut(c);
    for v in &mut problem.q {
        *v *= c;
    }
    scaling.c = c;
    scaling
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Matrix;

    fn badly_scaled() -> QpProblem {
        QpProblem::new(
            Matrix::from_diag(&[1e6, 1e-4]),
            vec![1e5, 1e-3],
            Matrix::from_rows(&[&[1e3, 0.0], &[0.0, 1e-2]]),
            vec![0.0, 0.0],
            vec![1e3, 1e-2],
        )
        .unwrap()
    }

    #[test]
    fn equilibration_flattens_norms() {
        let mut p = badly_scaled();
        ruiz_equilibrate(&mut p, 10);
        // After equilibration all row norms of A should be near 1.
        for i in 0..p.a.rows() {
            let rn = p.a.row(i).iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            assert!((rn - 1.0).abs() < 0.2, "row {i} norm {rn}");
        }
    }

    #[test]
    fn unscaling_round_trips_solution() {
        let mut p = badly_scaled();
        // x̄ feasible in scaled space maps to x feasible in the original.
        let orig = badly_scaled();
        let s = ruiz_equilibrate(&mut p, 10);
        let x_bar = vec![0.5 / s.d[0].max(1e-30) * s.d[0], 0.0]; // arbitrary
        let x = s.unscale_x(&x_bar);
        assert_eq!(x.len(), 2);
        // The scaled constraint l̄ ≤ Āx̄ ≤ ū iff original l ≤ Ax ≤ u.
        let scaled_violation = p.max_violation(&x_bar);
        let orig_violation = orig.max_violation(&x);
        assert!((scaled_violation <= 1e-9) == (orig_violation <= 1e-6));
    }

    #[test]
    fn identity_scaling_is_noop() {
        let s = Scaling::identity(3, 2);
        assert_eq!(s.unscale_x(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.unscale_y(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn zero_matrix_does_not_explode() {
        let mut p = QpProblem::new(
            Matrix::zeros(2, 2),
            vec![0.0; 2],
            Matrix::zeros(1, 2),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let s = ruiz_equilibrate(&mut p, 5);
        assert!(s.d.iter().all(|v| v.is_finite() && *v > 0.0));
        assert!(s.c.is_finite() && s.c > 0.0);
    }
}
