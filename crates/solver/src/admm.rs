//! The ADMM iteration (OSQP-style operator splitting).

use spotweb_linalg::vector;
use spotweb_linalg::{BlockTridiagCholesky, Cholesky, CsrMatrix, Matrix};

use crate::qp::{QpProblem, QpSolution, QpStatus, Settings};
use crate::scaling::{ruiz_equilibrate, Scaling};
use crate::termination::Residuals;
use crate::{Result, SolverError};

/// Multiplier applied to ρ on equality rows (`l == u`), as in OSQP —
/// equality constraints need a much stiffer penalty to converge fast.
const EQ_RHO_BOOST: f64 = 1e3;

/// Bounds for the adaptive penalty.
const RHO_MIN: f64 = 1e-6;
const RHO_MAX: f64 = 1e6;

/// The cached KKT factorization: dense, or block-tridiagonal when the
/// problem has multi-period structure (see
/// [`AdmmSolver::with_block_structure`]).
enum KktFactor {
    Dense(Cholesky),
    Block(BlockTridiagCholesky),
}

impl KktFactor {
    fn solve_in_place(&self, x: &mut [f64]) {
        match self {
            KktFactor::Dense(f) => f.solve_in_place(x).expect("kkt solve"),
            KktFactor::Block(f) => f.solve_in_place(x).expect("kkt solve"),
        }
    }
}

/// Scratch vectors for one ADMM solve, owned by the solver and reused
/// across [`AdmmSolver::solve_from`] calls so a receding-horizon
/// controller re-solving every interval performs zero per-solve heap
/// allocation in the iteration loop. Every buffer is fully rewritten
/// by `reset` before use, so reuse cannot leak state between solves.
#[derive(Default)]
struct SolveWorkspace {
    /// Primal iterate (scaled coordinates).
    x: Vec<f64>,
    /// Dual iterate (scaled coordinates).
    y: Vec<f64>,
    /// Auxiliary (projected) constraint iterate.
    z: Vec<f64>,
    /// KKT right-hand side / x̃ in place.
    rhs: Vec<f64>,
    /// Aᵀ(ρ⊙z − y) accumulator.
    aty: Vec<f64>,
    /// A·x̃ accumulator.
    ztil: Vec<f64>,
    /// ρ⊙z − y accumulator.
    tmp_m: Vec<f64>,
    /// Residual scratch: A·x.
    ax: Vec<f64>,
    /// Residual scratch: P·x.
    px: Vec<f64>,
    /// Residual scratch: Aᵀy.
    aty_res: Vec<f64>,
}

impl SolveWorkspace {
    /// Size every buffer for an `n`-variable, `m`-constraint problem
    /// and zero-fill it.
    fn reset(&mut self, n: usize, m: usize) {
        for v in [
            &mut self.x,
            &mut self.rhs,
            &mut self.aty,
            &mut self.px,
            &mut self.aty_res,
        ] {
            v.clear();
            v.resize(n, 0.0);
        }
        for v in [
            &mut self.y,
            &mut self.z,
            &mut self.ztil,
            &mut self.tmp_m,
            &mut self.ax,
        ] {
            v.clear();
            v.resize(m, 0.0);
        }
    }
}

/// An ADMM solver instance bound to one problem.
///
/// Construction performs the (optional) Ruiz equilibration and the
/// initial KKT factorization; [`AdmmSolver::solve`] then iterates.
/// The solver supports warm starting via [`AdmmSolver::solve_from`],
/// which SpotWeb's receding-horizon controller uses between periods —
/// consecutive portfolio problems differ only in the forecast data, so
/// the previous solution is an excellent initial iterate.
pub struct AdmmSolver {
    /// Scaled problem (identical to the original if scaling is off).
    prob: QpProblem,
    /// Original (unscaled) problem, kept for final reporting.
    orig: QpProblem,
    scaling: Scaling,
    settings: Settings,
    /// Per-row penalty ρᵢ (boosted on equality rows).
    rho_vec: Vec<f64>,
    /// Scalar ρ the vector was derived from.
    rho: f64,
    /// Block size for the structured factorization, when enabled.
    block_size: Option<usize>,
    kkt: KktFactor,
    /// Sparse copies of the scaled `A` and `P` for the hot-loop
    /// products (box/budget constraint matrices are > 99% zeros).
    a_sparse: CsrMatrix,
    p_sparse: CsrMatrix,
    /// Reusable per-solve scratch (see [`SolveWorkspace`]).
    workspace: SolveWorkspace,
}

impl AdmmSolver {
    /// Set up a solver: equilibrate (if enabled) and factor the KKT matrix.
    pub fn new(problem: QpProblem, settings: Settings) -> Result<Self> {
        Self::build(problem, settings, None)
    }

    /// Set up a solver that exploits *multi-period structure*: the
    /// variables form `H` consecutive blocks of `block_size`, `P` is
    /// block-tridiagonal with respect to that blocking, and every
    /// constraint row touches variables of a single block. SpotWeb's
    /// portfolio QP has exactly this shape (per-period risk + budget,
    /// adjacent-period churn coupling), and the block factorization
    /// turns the per-iteration `O((HN)³)` setup into `O(H·N³)`.
    ///
    /// Returns [`SolverError::Dimension`] when the structure does not
    /// hold — callers can fall back to [`AdmmSolver::new`].
    pub fn with_block_structure(
        problem: QpProblem,
        settings: Settings,
        block_size: usize,
    ) -> Result<Self> {
        if block_size == 0 || !problem.num_vars().is_multiple_of(block_size) {
            return Err(SolverError::Dimension(
                "block size must divide the variable count",
            ));
        }
        verify_block_structure(&problem, block_size)?;
        Self::build(problem, settings, Some(block_size))
    }

    fn build(problem: QpProblem, settings: Settings, block_size: Option<usize>) -> Result<Self> {
        let orig = problem.clone();
        let mut prob = problem;
        let scaling = if settings.scaling {
            ruiz_equilibrate(&mut prob, settings.scaling_iters)
        } else {
            Scaling::identity(prob.num_vars(), prob.num_constraints())
        };
        let rho = settings.rho;
        let rho_vec = build_rho_vec(&prob, rho);
        let kkt = factor_kkt(&prob, settings.sigma, &rho_vec, block_size)?;
        let a_sparse = CsrMatrix::from_dense(&prob.a, 0.0);
        let p_sparse = CsrMatrix::from_dense(&prob.p, 0.0);
        Ok(AdmmSolver {
            prob,
            orig,
            scaling,
            settings,
            rho_vec,
            rho,
            block_size,
            kkt,
            a_sparse,
            p_sparse,
            workspace: SolveWorkspace::default(),
        })
    }

    /// Solve from a cold start (zero initial iterate).
    pub fn solve(&mut self) -> QpSolution {
        let n = self.prob.num_vars();
        let m = self.prob.num_constraints();
        self.solve_from(&vec![0.0; n], &vec![0.0; m])
    }

    /// Solve warm-started from `(x0, y0)` **in the original problem's
    /// coordinates** (they are mapped into the scaled space internally).
    ///
    /// SpotWeb's receding-horizon controller calls this with the
    /// previous interval's primal/dual solution: consecutive portfolio
    /// problems differ only in the forecast data, so the previous
    /// optimum is a near-feasible initial iterate and convergence
    /// takes a fraction of the cold-start iterations.
    ///
    /// # Examples
    ///
    /// ```
    /// use spotweb_linalg::Matrix;
    /// use spotweb_solver::{AdmmSolver, QpProblem, Settings};
    ///
    /// // min (x − 0.5)² subject to 0 ≤ x ≤ 1.
    /// let qp = QpProblem::new(
    ///     Matrix::from_diag(&[2.0]),
    ///     vec![-1.0],
    ///     Matrix::identity(1),
    ///     vec![0.0],
    ///     vec![1.0],
    /// )
    /// .unwrap();
    /// let mut solver = AdmmSolver::new(qp.clone(), Settings::default()).unwrap();
    /// let cold = solver.solve();
    /// assert!(cold.is_solved());
    ///
    /// // Warm-start a fresh solver from the previous optimum: it
    /// // converges in no more iterations than the cold start did.
    /// let mut next = AdmmSolver::new(qp, Settings::default()).unwrap();
    /// let warm = next.solve_from(&cold.x, &cold.y);
    /// assert!(warm.is_solved());
    /// assert!(warm.iterations <= cold.iterations);
    /// ```
    pub fn solve_from(&mut self, x0: &[f64], y0: &[f64]) -> QpSolution {
        let n = self.prob.num_vars();
        let m = self.prob.num_constraints();
        assert_eq!(x0.len(), n, "warm-start x length");
        assert_eq!(y0.len(), m, "warm-start y length");

        // Take the workspace out of `self` so the iteration below can
        // borrow it mutably alongside `self` (for ρ updates).
        let mut ws = std::mem::take(&mut self.workspace);
        ws.reset(n, m);

        // Map the warm start into scaled coordinates: x̄ = D⁻¹x, ȳ = cE⁻¹… —
        // inverse of Scaling::unscale_*.
        for ((dst, v), d) in ws.x.iter_mut().zip(x0).zip(&self.scaling.d) {
            *dst = v / d;
        }
        for ((dst, v), e) in ws.y.iter_mut().zip(y0).zip(&self.scaling.e) {
            *dst = v * self.scaling.c / e;
        }
        self.a_sparse
            .matvec_into(&ws.x, &mut ws.z)
            .expect("warm-start A·x");
        vector::clamp_box(&mut ws.z, &self.prob.l, &self.prob.u);

        let alpha = self.settings.alpha;
        let sigma = self.settings.sigma;
        let mut status = QpStatus::MaxIterations;
        let mut iterations = self.settings.max_iter;
        let mut last_res: Option<Residuals> = None;

        for it in 1..=self.settings.max_iter {
            // rhs = σx − q + Aᵀ(ρ⊙z − y)
            for i in 0..m {
                ws.tmp_m[i] = self.rho_vec[i] * ws.z[i] - ws.y[i];
            }
            self.a_sparse
                .matvec_transpose_into(&ws.tmp_m, &mut ws.aty)
                .expect("admm: Aᵀv shape");
            for j in 0..n {
                ws.rhs[j] = sigma * ws.x[j] - self.prob.q[j] + ws.aty[j];
            }
            // x̃ = K⁻¹ rhs (in place).
            self.kkt.solve_in_place(&mut ws.rhs);
            let xtil = &ws.rhs;
            self.a_sparse
                .matvec_into(xtil, &mut ws.ztil)
                .expect("admm: A·x̃ shape");

            // Relaxed updates.
            for j in 0..n {
                ws.x[j] = alpha * ws.rhs[j] + (1.0 - alpha) * ws.x[j];
            }
            for i in 0..m {
                let z_relaxed = alpha * ws.ztil[i] + (1.0 - alpha) * ws.z[i];
                let z_pre = z_relaxed + ws.y[i] / self.rho_vec[i];
                let z_new = z_pre.clamp(self.prob.l[i], self.prob.u[i]);
                ws.y[i] += self.rho_vec[i] * (z_relaxed - z_new);
                ws.z[i] = z_new;
            }

            let do_check = it % self.settings.check_interval == 0 || it == self.settings.max_iter;
            let do_adapt = self.settings.adaptive_rho_interval > 0
                && it % self.settings.adaptive_rho_interval == 0;
            if do_check || do_adapt {
                let res = Residuals::compute_sparse(
                    &self.p_sparse,
                    &self.prob.q,
                    &self.a_sparse,
                    &ws.x,
                    &ws.z,
                    &ws.y,
                    &mut ws.ax,
                    &mut ws.px,
                    &mut ws.aty_res,
                );
                if do_check && res.converged(self.settings.eps_abs, self.settings.eps_rel) {
                    status = QpStatus::Solved;
                    iterations = it;
                    last_res = Some(res);
                    break;
                }
                if do_adapt {
                    self.maybe_update_rho(res.rho_ratio());
                }
                last_res = Some(res);
            }
        }

        // Unscale and report against the original problem.
        let x_orig = self.scaling.unscale_x(&ws.x);
        let y_orig = self.scaling.unscale_y(&ws.y);
        self.workspace = ws;
        let mut z_orig = self.orig.a.matvec(&x_orig).expect("report: A·x");
        vector::clamp_box(&mut z_orig, &self.orig.l, &self.orig.u);
        let objective = self.orig.objective(&x_orig);
        let (primal_residual, dual_residual) = match last_res {
            Some(r) => (r.primal, r.dual),
            None => (f64::INFINITY, f64::INFINITY),
        };
        QpSolution {
            x: x_orig,
            y: y_orig,
            z: z_orig,
            status,
            iterations,
            objective,
            primal_residual,
            dual_residual,
        }
    }

    /// Adaptive ρ: rescale by the primal/dual residual ratio, refactor
    /// the KKT system only if the change exceeds the tolerance.
    fn maybe_update_rho(&mut self, ratio: f64) {
        if !ratio.is_finite() || ratio == 0.0 {
            return;
        }
        let new_rho = (self.rho * ratio).clamp(RHO_MIN, RHO_MAX);
        let tol = self.settings.adaptive_rho_tolerance;
        if new_rho > self.rho * tol || new_rho < self.rho / tol {
            self.rho = new_rho;
            self.rho_vec = build_rho_vec(&self.prob, new_rho);
            if let Ok(kkt) = factor_kkt(
                &self.prob,
                self.settings.sigma,
                &self.rho_vec,
                self.block_size,
            ) {
                self.kkt = kkt;
            }
            // On (unlikely) factorization failure keep the old factor —
            // the iteration remains valid for the old ρ.
        }
    }

    /// Current scalar penalty (for diagnostics/tests).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of decision variables of the bound problem.
    pub fn num_vars(&self) -> usize {
        self.prob.num_vars()
    }

    /// Number of constraint rows of the bound problem.
    pub fn num_constraints(&self) -> usize {
        self.prob.num_constraints()
    }

    /// Replace the linear cost `q` in place, keeping the KKT
    /// factorization.
    ///
    /// The KKT matrix `P + σI + Aᵀdiag(ρ)A` does not depend on `q`, so
    /// when two consecutive problems differ *only* in their linear
    /// cost — SpotWeb's receding-horizon controller with an unchanged
    /// covariance: same `P`, same constraints, fresh price/forecast
    /// vector — the `O(n³)` factorization from construction can be
    /// reused and only this `O(n)` update is paid. The Ruiz scaling
    /// computed at construction is kept as a fixed preconditioner
    /// (any fixed positive scaling is valid; it may merely differ from
    /// what a fresh equilibration of the new `q` would pick).
    ///
    /// Returns [`SolverError::Dimension`] when `q` has the wrong length.
    pub fn update_linear_cost(&mut self, q: &[f64]) -> Result<()> {
        let n = self.prob.num_vars();
        if q.len() != n {
            return Err(SolverError::Dimension(
                "linear cost length must match the variable count",
            ));
        }
        self.orig.q.copy_from_slice(q);
        for j in 0..n {
            self.prob.q[j] = self.scaling.c * self.scaling.d[j] * q[j];
        }
        Ok(())
    }
}

/// Per-row ρ with the equality-constraint boost.
fn build_rho_vec(prob: &QpProblem, rho: f64) -> Vec<f64> {
    prob.l
        .iter()
        .zip(&prob.u)
        .map(|(&lo, &hi)| if lo == hi { rho * EQ_RHO_BOOST } else { rho })
        .collect()
}

/// Assemble the dense `K = P + σI + Aᵀ diag(ρ) A`.
fn assemble_kkt(prob: &QpProblem, sigma: f64, rho_vec: &[f64]) -> Matrix {
    let n = prob.num_vars();
    let m = prob.num_constraints();
    let mut k = prob.p.clone();
    k.add_diag_mut(sigma);
    // K += Aᵀ diag(ρ) A, accumulated row by row of A.
    for r in 0..m {
        let row = prob.a.row(r);
        let w = rho_vec[r];
        for i in 0..n {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            let wri = w * ri;
            for j in i..n {
                k[(i, j)] += wri * row[j];
            }
        }
    }
    // Mirror upper→lower (we filled the upper triangle above).
    for i in 0..n {
        for j in 0..i {
            k[(i, j)] = k[(j, i)];
        }
    }
    k
}

/// Factor the KKT matrix, densely or blockwise.
fn factor_kkt(
    prob: &QpProblem,
    sigma: f64,
    rho_vec: &[f64],
    block_size: Option<usize>,
) -> Result<KktFactor> {
    let k = assemble_kkt(prob, sigma, rho_vec);
    match block_size {
        None => Cholesky::factor(&k)
            .map(KktFactor::Dense)
            .map_err(|e| SolverError::Factorization(e.to_string())),
        Some(nb) => {
            let h = prob.num_vars() / nb;
            let mut diag = Vec::with_capacity(h);
            let mut sub = Vec::with_capacity(h.saturating_sub(1));
            for t in 0..h {
                let mut d = Matrix::zeros(nb, nb);
                for i in 0..nb {
                    for j in 0..nb {
                        d[(i, j)] = k[(t * nb + i, t * nb + j)];
                    }
                }
                diag.push(d);
                if t > 0 {
                    let mut e = Matrix::zeros(nb, nb);
                    for i in 0..nb {
                        for j in 0..nb {
                            e[(i, j)] = k[(t * nb + i, (t - 1) * nb + j)];
                        }
                    }
                    sub.push(e);
                }
            }
            BlockTridiagCholesky::factor(&diag, &sub)
                .map(KktFactor::Block)
                .map_err(|e| SolverError::Factorization(e.to_string()))
        }
    }
}

/// Check that `P` is block-tridiagonal and every constraint row is
/// local to one block of `block_size` variables.
fn verify_block_structure(prob: &QpProblem, block_size: usize) -> Result<()> {
    let n = prob.num_vars();
    for i in 0..n {
        for j in 0..n {
            let (bi, bj) = (i / block_size, j / block_size);
            if bi.abs_diff(bj) >= 2 && prob.p[(i, j)] != 0.0 {
                return Err(SolverError::Dimension(
                    "P is not block-tridiagonal for the given block size",
                ));
            }
        }
    }
    for r in 0..prob.num_constraints() {
        let row = prob.a.row(r);
        let mut block: Option<usize> = None;
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                let b = j / block_size;
                match block {
                    None => block = Some(b),
                    Some(prev) if prev != b => {
                        return Err(SolverError::Dimension(
                            "constraint row spans multiple blocks",
                        ))
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Matrix;

    fn solve(problem: QpProblem) -> QpSolution {
        let mut s = AdmmSolver::new(problem, Settings::default()).unwrap();
        s.solve()
    }

    #[test]
    fn unconstrained_minimum_inside_box() {
        // min (x-0.5)² over 0 ≤ x ≤ 1 → x = 0.5.
        let p = QpProblem::new(
            Matrix::from_diag(&[2.0]),
            vec![-1.0],
            Matrix::identity(1),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let sol = solve(p);
        assert!(sol.is_solved());
        assert!((sol.x[0] - 0.5).abs() < 1e-4, "x = {}", sol.x[0]);
    }

    #[test]
    fn active_box_constraint() {
        // min (x-2)² over 0 ≤ x ≤ 1 → x = 1 (upper bound active).
        let p = QpProblem::new(
            Matrix::from_diag(&[2.0]),
            vec![-4.0],
            Matrix::identity(1),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let sol = solve(p);
        assert!(sol.is_solved());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        // Dual of the active upper bound must be positive.
        assert!(sol.y[0] > 0.0);
    }

    #[test]
    fn equality_constraint_simplex() {
        // min ½‖x‖² s.t. x₁ + x₂ = 1, x ≥ 0 → x = (0.5, 0.5).
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let p = QpProblem::new(
            Matrix::identity(2),
            vec![0.0, 0.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let sol = solve(p);
        assert!(sol.is_solved());
        assert!((sol.x[0] - 0.5).abs() < 1e-4);
        assert!((sol.x[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn weighted_projection_problem() {
        // min ½(x₁² + 10x₂²) − x₁ − 10x₂ s.t. x₁ + x₂ ≤ 1, x ≥ 0.
        // Unconstrained optimum (1, 1) violates the budget; KKT gives
        // x₁ + x₂ = 1 with 1 − x₁ = 10(1 − x₂) ⇒ x₁ = 10/11·... solve:
        // λ = 1 − x₁ = 10 − 10x₂, x₁ + x₂ = 1 → x₂ = 10/11 − ... do it
        // numerically: x₁ = 1 − λ, x₂ = 1 − λ/10, sum = 2 − 1.1λ = 1 →
        // λ = 10/11 → x₁ = 1/11, x₂ = 10/11.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let p = QpProblem::new(
            Matrix::from_diag(&[1.0, 10.0]),
            vec![-1.0, -10.0],
            a,
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![1.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let sol = solve(p);
        assert!(sol.is_solved());
        assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-3, "x1 = {}", sol.x[0]);
        assert!((sol.x[1] - 10.0 / 11.0).abs() < 1e-3, "x2 = {}", sol.x[1]);
    }

    #[test]
    fn pure_lp_via_zero_p() {
        // min −x₁ − 2x₂ s.t. x₁ + x₂ ≤ 1, x ≥ 0 → x = (0, 1).
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let p = QpProblem::new(
            Matrix::zeros(2, 2),
            vec![-1.0, -2.0],
            a,
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![1.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let sol = solve(p);
        assert!(
            sol.is_solved(),
            "residuals {} {}",
            sol.primal_residual,
            sol.dual_residual
        );
        assert!(sol.x[0].abs() < 1e-3, "x1 = {}", sol.x[0]);
        assert!((sol.x[1] - 1.0).abs() < 1e-3, "x2 = {}", sol.x[1]);
    }

    #[test]
    fn warm_start_converges_faster() {
        let make = || {
            QpProblem::new(
                Matrix::from_diag(&[2.0, 2.0]),
                vec![-2.0, -4.0],
                Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]),
                vec![f64::NEG_INFINITY, 0.0, 0.0],
                vec![1.5, f64::INFINITY, f64::INFINITY],
            )
            .unwrap()
        };
        let mut cold = AdmmSolver::new(make(), Settings::default()).unwrap();
        let cold_sol = cold.solve();
        assert!(cold_sol.is_solved());
        let mut warm = AdmmSolver::new(make(), Settings::default()).unwrap();
        let warm_sol = warm.solve_from(&cold_sol.x, &cold_sol.y);
        assert!(warm_sol.is_solved());
        assert!(
            warm_sol.iterations <= cold_sol.iterations,
            "warm {} vs cold {}",
            warm_sol.iterations,
            cold_sol.iterations
        );
    }

    #[test]
    fn scaling_off_still_solves() {
        let p = QpProblem::new(
            Matrix::from_diag(&[2.0]),
            vec![-1.0],
            Matrix::identity(1),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let mut s = AdmmSolver::new(
            p,
            Settings {
                scaling: false,
                ..Settings::default()
            },
        )
        .unwrap();
        let sol = s.solve();
        assert!(sol.is_solved());
        assert!((sol.x[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn badly_scaled_problem_converges_with_equilibration() {
        // Costs spanning 8 orders of magnitude.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let p = QpProblem::new(
            Matrix::from_diag(&[1e6, 1e-2]),
            vec![-1e6, -1e-2],
            a,
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![1.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let sol = solve(p.clone());
        assert!(sol.is_solved());
        assert!(p.max_violation(&sol.x) < 1e-3);
    }

    /// Build a 2-market × H-period portfolio-shaped QP with churn
    /// coupling (block-tridiagonal P, per-period constraints).
    fn multi_period_qp(h: usize) -> QpProblem {
        let n = 2 * h;
        let gamma = 0.1;
        let mut p = Matrix::zeros(n, n);
        for t in 0..h {
            for i in 0..2 {
                let d = t * 2 + i;
                p[(d, d)] += 0.2; // risk diag
                p[(d, d)] += 2.0 * gamma;
                if t + 1 < h {
                    p[(d, d)] += 2.0 * gamma;
                    let e = (t + 1) * 2 + i;
                    p[(d, e)] -= 2.0 * gamma;
                    p[(e, d)] -= 2.0 * gamma;
                }
            }
        }
        let q: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * (i % 2) as f64).collect();
        // Per-period: 2 boxes + 1 budget.
        let m = 3 * h;
        let mut a = Matrix::zeros(m, n);
        let mut l = vec![0.0; m];
        let mut u = vec![0.0; m];
        for t in 0..h {
            for i in 0..2 {
                a[(t * 3 + i, t * 2 + i)] = 1.0;
                u[t * 3 + i] = 1.0;
            }
            a[(t * 3 + 2, t * 2)] = 1.0;
            a[(t * 3 + 2, t * 2 + 1)] = 1.0;
            l[t * 3 + 2] = 1.0;
            u[t * 3 + 2] = 1.5;
        }
        QpProblem::new(p, q, a, l, u).unwrap()
    }

    #[test]
    fn block_structure_matches_dense_solution() {
        let qp = multi_period_qp(6);
        let mut dense = AdmmSolver::new(qp.clone(), Settings::default()).unwrap();
        let d = dense.solve();
        assert!(d.is_solved());
        let mut block =
            AdmmSolver::with_block_structure(qp.clone(), Settings::default(), 2).unwrap();
        let b = block.solve();
        assert!(b.is_solved());
        for (x1, x2) in d.x.iter().zip(&b.x) {
            assert!((x1 - x2).abs() < 1e-4, "{x1} vs {x2}");
        }
        assert!((d.objective - b.objective).abs() < 1e-6 * (1.0 + d.objective.abs()));
    }

    #[test]
    fn block_structure_rejects_coupled_rows() {
        // A budget row spanning two periods violates the structure.
        let mut qp = multi_period_qp(3);
        qp.a[(2, 2)] = 1.0; // period-0 budget now touches period 1
        assert!(matches!(
            AdmmSolver::with_block_structure(qp, Settings::default(), 2),
            Err(SolverError::Dimension(_))
        ));
    }

    #[test]
    fn block_structure_rejects_wide_p_band() {
        let mut qp = multi_period_qp(3);
        qp.p[(0, 5)] = 0.01; // period-0 ↔ period-2 coupling
        qp.p[(5, 0)] = 0.01;
        assert!(AdmmSolver::with_block_structure(qp, Settings::default(), 2).is_err());
    }

    #[test]
    fn block_structure_rejects_bad_block_size() {
        let qp = multi_period_qp(3);
        assert!(AdmmSolver::with_block_structure(qp, Settings::default(), 4).is_err());
    }

    #[test]
    fn workspace_reuse_does_not_leak_state_between_solves() {
        // Solving twice on one solver must agree bitwise with a fresh
        // solver: the reused workspace is fully reinitialized.
        let qp = multi_period_qp(4);
        let mut reused = AdmmSolver::new(qp.clone(), Settings::default()).unwrap();
        let _ = reused.solve();
        // Second solver: rho may have adapted on `reused`, so compare
        // against a fresh solve from the same warm iterate instead.
        let mut a = AdmmSolver::new(qp.clone(), Settings::default()).unwrap();
        let first = a.solve();
        let again = a.solve_from(&first.x, &first.y);
        let mut b = AdmmSolver::new(qp, Settings::default()).unwrap();
        let _ = b.solve();
        let fresh = b.solve_from(&first.x, &first.y);
        assert_eq!(again.iterations, fresh.iterations);
        for (u, v) in again.x.iter().zip(&fresh.x) {
            assert_eq!(u, v, "workspace reuse changed the iterate");
        }
    }

    #[test]
    fn update_linear_cost_matches_fresh_solver() {
        let qp = multi_period_qp(5);
        let mut q2 = qp.q.clone();
        for (i, v) in q2.iter_mut().enumerate() {
            *v *= 1.0 + 0.05 * (i % 3) as f64;
        }

        // Fast path: reuse the factorization, swap q only.
        let mut fast =
            AdmmSolver::with_block_structure(qp.clone(), Settings::default(), 2).unwrap();
        let _ = fast.solve();
        fast.update_linear_cost(&q2).unwrap();
        let fast_sol = fast.solve();
        assert!(fast_sol.is_solved());

        // Reference: build a brand-new solver on the updated problem.
        let mut full = qp.clone();
        full.q = q2.clone();
        let mut fresh =
            AdmmSolver::with_block_structure(full.clone(), Settings::default(), 2).unwrap();
        let fresh_sol = fresh.solve();
        assert!(fresh_sol.is_solved());

        for (a, b) in fast_sol.x.iter().zip(&fresh_sol.x) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert!(
            (fast_sol.objective - fresh_sol.objective).abs()
                < 1e-5 * (1.0 + fresh_sol.objective.abs())
        );
        // The reported objective uses the updated original q.
        assert!((fast_sol.objective - full.objective(&fast_sol.x)).abs() < 1e-12);
    }

    #[test]
    fn update_linear_cost_rejects_wrong_length() {
        let qp = multi_period_qp(2);
        let mut s = AdmmSolver::new(qp, Settings::default()).unwrap();
        assert!(matches!(
            s.update_linear_cost(&[1.0]),
            Err(SolverError::Dimension(_))
        ));
    }

    #[test]
    fn reports_max_iterations_when_budget_too_small() {
        let p = QpProblem::new(
            Matrix::zeros(3, 3),
            vec![-1.0, -2.0, -3.0],
            Matrix::from_rows(&[
                &[1.0, 1.0, 1.0],
                &[1.0, 0.0, 0.0],
                &[0.0, 1.0, 0.0],
                &[0.0, 0.0, 1.0],
            ]),
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let mut s = AdmmSolver::new(
            p,
            Settings {
                max_iter: 2,
                ..Settings::default()
            },
        )
        .unwrap();
        let sol = s.solve();
        assert_eq!(sol.status, QpStatus::MaxIterations);
    }
}
