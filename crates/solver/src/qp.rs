//! QP problem, settings and solution types.

use spotweb_linalg::Matrix;

use crate::{Result, SolverError};

/// A convex quadratic program in OSQP standard form:
///
/// ```text
/// minimize   ½ xᵀPx + qᵀx
/// subject to l ≤ Ax ≤ u
/// ```
///
/// `P` must be symmetric positive semidefinite (it is symmetrized on
/// construction; PSD-ness is enforced indirectly via the σ-regularized
/// KKT factorization). Equality constraints are encoded by `l[i] == u[i]`;
/// one-sided constraints use `f64::INFINITY` / `f64::NEG_INFINITY`.
///
/// ```
/// use spotweb_linalg::Matrix;
/// use spotweb_solver::{AdmmSolver, QpProblem, Settings};
///
/// // min (x − 2)²  subject to 0 ≤ x ≤ 1  →  x = 1.
/// let qp = QpProblem::new(
///     Matrix::from_diag(&[2.0]),
///     vec![-4.0],
///     Matrix::identity(1),
///     vec![0.0],
///     vec![1.0],
/// ).unwrap();
/// let sol = AdmmSolver::new(qp, Settings::default()).unwrap().solve();
/// assert!(sol.is_solved());
/// assert!((sol.x[0] - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct QpProblem {
    /// Quadratic cost matrix, `n × n`, symmetric PSD.
    pub p: Matrix,
    /// Linear cost vector, length `n`.
    pub q: Vec<f64>,
    /// Constraint matrix, `m × n`.
    pub a: Matrix,
    /// Lower bounds, length `m`.
    pub l: Vec<f64>,
    /// Upper bounds, length `m`.
    pub u: Vec<f64>,
}

impl QpProblem {
    /// Build and validate a problem.
    pub fn new(p: Matrix, q: Vec<f64>, a: Matrix, l: Vec<f64>, u: Vec<f64>) -> Result<Self> {
        let n = q.len();
        let m = l.len();
        if p.rows() != n || p.cols() != n {
            return Err(SolverError::Dimension("P must be n×n matching q"));
        }
        if a.cols() != n {
            return Err(SolverError::Dimension("A must have n columns"));
        }
        if a.rows() != m || u.len() != m {
            return Err(SolverError::Dimension("A, l, u must agree on m"));
        }
        for (i, (&lo, &hi)) in l.iter().zip(&u).enumerate() {
            if lo > hi {
                return Err(SolverError::InfeasibleBounds { row: i });
            }
            if lo.is_nan() || hi.is_nan() {
                return Err(SolverError::Dimension("bounds must not be NaN"));
            }
        }
        let mut p = p;
        p.symmetrize_mut();
        Ok(QpProblem { p, q, a, l, u })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.l.len()
    }

    /// Objective value `½ xᵀPx + qᵀx` at a point.
    pub fn objective(&self, x: &[f64]) -> f64 {
        0.5 * self.p.quadratic_form(x).expect("dimension checked")
            + spotweb_linalg::vector::dot(&self.q, x)
    }

    /// Worst constraint violation `max(l − Ax, Ax − u, 0)` at a point.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.matvec(x).expect("dimension checked");
        let mut v: f64 = 0.0;
        for ((axi, &lo), &hi) in ax.iter().zip(&self.l).zip(&self.u) {
            v = v.max(lo - axi).max(axi - hi);
        }
        v
    }
}

/// Solver tuning knobs. [`Settings::default`] matches OSQP's defaults
/// closely and works for all SpotWeb portfolio instances.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Initial ADMM penalty ρ.
    pub rho: f64,
    /// Cost regularization σ (keeps the KKT system positive definite).
    pub sigma: f64,
    /// Over-relaxation parameter (1.0 = none; 1.6 is a good default).
    pub alpha: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Absolute tolerance for the primal/dual residuals.
    pub eps_abs: f64,
    /// Relative tolerance for the primal/dual residuals.
    pub eps_rel: f64,
    /// Re-tune ρ from the residual ratio every this many iterations
    /// (0 disables adaptation).
    pub adaptive_rho_interval: usize,
    /// Refactor only when ρ changes by more than this multiplicative
    /// factor (avoids thrashing the Cholesky cache).
    pub adaptive_rho_tolerance: f64,
    /// Check termination every this many iterations.
    pub check_interval: usize,
    /// Apply Ruiz equilibration before solving.
    pub scaling: bool,
    /// Number of Ruiz iterations when `scaling` is on.
    pub scaling_iters: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iter: 4000,
            eps_abs: 1e-6,
            eps_rel: 1e-6,
            adaptive_rho_interval: 50,
            adaptive_rho_tolerance: 5.0,
            check_interval: 10,
            scaling: true,
            scaling_iters: 10,
        }
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpStatus {
    /// Residuals met the requested tolerances.
    Solved,
    /// Hit `max_iter` before converging (the iterate is still usable,
    /// check the reported residuals).
    MaxIterations,
}

/// The result of a solve.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Dual solution (Lagrange multipliers of `l ≤ Ax ≤ u`).
    pub y: Vec<f64>,
    /// Final slack `z ≈ Ax`, projected into `[l, u]`.
    pub z: Vec<f64>,
    /// Termination status.
    pub status: QpStatus,
    /// Iterations performed.
    pub iterations: usize,
    /// Objective value at `x`.
    pub objective: f64,
    /// Final primal residual `‖Ax − z‖∞`.
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_residual: f64,
}

impl QpSolution {
    /// `true` when the solver reports full convergence.
    pub fn is_solved(&self) -> bool {
        self.status == QpStatus::Solved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QpProblem {
        QpProblem::new(
            Matrix::identity(2),
            vec![0.0, 0.0],
            Matrix::identity(2),
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_validated() {
        let bad = QpProblem::new(
            Matrix::identity(2),
            vec![0.0; 3],
            Matrix::identity(2),
            vec![0.0; 2],
            vec![1.0; 2],
        );
        assert!(matches!(bad, Err(SolverError::Dimension(_))));
    }

    #[test]
    fn crossing_bounds_rejected() {
        let bad = QpProblem::new(
            Matrix::identity(1),
            vec![0.0],
            Matrix::identity(1),
            vec![2.0],
            vec![1.0],
        );
        assert!(matches!(bad, Err(SolverError::InfeasibleBounds { row: 0 })));
    }

    #[test]
    fn objective_and_violation() {
        let p = tiny();
        assert_eq!(p.objective(&[1.0, 1.0]), 1.0);
        assert_eq!(p.max_violation(&[0.5, 0.5]), 0.0);
        assert_eq!(p.max_violation(&[2.0, 0.5]), 1.0);
        assert_eq!(p.max_violation(&[-0.25, 0.5]), 0.25);
    }

    #[test]
    fn p_is_symmetrized() {
        let p = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let prob = QpProblem::new(
            p,
            vec![0.0; 2],
            Matrix::identity(2),
            vec![0.0; 2],
            vec![1.0; 2],
        )
        .unwrap();
        assert_eq!(prob.p[(0, 1)], 1.0);
        assert_eq!(prob.p[(1, 0)], 1.0);
    }

    #[test]
    fn nan_bounds_rejected() {
        let bad = QpProblem::new(
            Matrix::identity(1),
            vec![0.0],
            Matrix::identity(1),
            vec![f64::NAN],
            vec![1.0],
        );
        assert!(bad.is_err());
    }
}
