//! Projected gradient descent for box-constrained QPs.
//!
//! `min ½xᵀPx + qᵀx  s.t.  lo ≤ x ≤ hi` (bounds directly on the
//! variables, not on `Ax`). Much simpler than ADMM; used as an
//! independent cross-check in tests and for small sub-problems where
//! constructing an ADMM instance is overkill.

use spotweb_linalg::vector;
use spotweb_linalg::Matrix;

/// Result of a projected-gradient solve.
#[derive(Debug, Clone)]
pub struct PgdSolution {
    /// Primal iterate at termination.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final projected-gradient norm (convergence measure).
    pub grad_norm: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solve a box-constrained QP by projected gradient descent with a
/// fixed step size `1/L`, where `L` is a power-iteration estimate of
/// `λ_max(P)`.
///
/// # Panics
/// Panics if dimensions disagree or any `lo[i] > hi[i]`.
pub fn solve_box_qp(
    p: &Matrix,
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    max_iter: usize,
    tol: f64,
) -> PgdSolution {
    let n = q.len();
    assert!(p.rows() == n && p.cols() == n, "P must be n×n");
    assert!(lo.len() == n && hi.len() == n, "bounds must be length n");
    for i in 0..n {
        assert!(lo[i] <= hi[i], "crossing bounds at {i}");
    }

    let lipschitz = estimate_lambda_max(p).max(1e-12);
    let step = 1.0 / lipschitz;

    // Start from the projection of 0 into the box.
    let mut x: Vec<f64> = (0..n).map(|i| 0.0_f64.clamp(lo[i], hi[i])).collect();
    let mut grad = vec![0.0; n];
    let mut iterations = max_iter;
    let mut grad_norm = f64::INFINITY;
    let mut converged = false;

    for it in 1..=max_iter {
        p.matvec_into(&x, &mut grad).expect("pgd: P·x");
        vector::axpy(1.0, q, &mut grad);
        // Projected step.
        let mut max_move: f64 = 0.0;
        for i in 0..n {
            let xi_new = (x[i] - step * grad[i]).clamp(lo[i], hi[i]);
            max_move = max_move.max((xi_new - x[i]).abs());
            x[i] = xi_new;
        }
        // The projected gradient norm is `max_move / step` up to scaling;
        // use the step displacement directly as the criterion.
        grad_norm = max_move / step;
        if max_move <= tol * step.max(1e-12) {
            iterations = it;
            converged = true;
            break;
        }
    }

    PgdSolution {
        x,
        iterations,
        grad_norm,
        converged,
    }
}

/// Power iteration estimate of the largest eigenvalue of a symmetric
/// PSD matrix (30 iterations is plenty for a step-size bound).
fn estimate_lambda_max(p: &Matrix) -> f64 {
    let n = p.rows();
    if n == 0 {
        return 0.0;
    }
    // Deterministic start vector (1, 1/2, 1/3, …) avoids pathological
    // orthogonality with high probability and keeps the solver seedless.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let mut pv = vec![0.0; n];
    for _ in 0..30 {
        p.matvec_into(&v, &mut pv).expect("power iteration");
        let nrm = vector::norm2(&pv);
        if nrm < 1e-300 {
            return 0.0;
        }
        for (vi, pvi) in v.iter_mut().zip(&pv) {
            *vi = pvi / nrm;
        }
    }
    // Rayleigh quotient at the converged direction (v is unit norm).
    p.matvec_into(&v, &mut pv).expect("power iteration");
    let lambda = vector::dot(&v, &pv);
    lambda.abs().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_minimum() {
        // min (x-0.3)² on [0,1].
        let p = Matrix::from_diag(&[2.0]);
        let sol = solve_box_qp(&p, &[-0.6], &[0.0], &[1.0], 10_000, 1e-10);
        assert!(sol.converged);
        assert!((sol.x[0] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn clipped_minimum() {
        // min (x-5)² on [0,1] → x = 1.
        let p = Matrix::from_diag(&[2.0]);
        let sol = solve_box_qp(&p, &[-10.0], &[0.0], &[1.0], 10_000, 1e-10);
        assert!(sol.converged);
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn multivariate_matches_closed_form() {
        // min ½xᵀPx − bᵀx with P diag(1, 4), b = (1, 4) → x = (1, 1),
        // box [0, 2]² doesn't bind.
        let p = Matrix::from_diag(&[1.0, 4.0]);
        let sol = solve_box_qp(&p, &[-1.0, -4.0], &[0.0, 0.0], &[2.0, 2.0], 50_000, 1e-12);
        assert!(sol.converged);
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lambda_max_of_diagonal() {
        let p = Matrix::from_diag(&[1.0, 7.0, 3.0]);
        let l = estimate_lambda_max(&p);
        assert!((l - 7.0).abs() < 1e-6, "lambda = {l}");
    }

    #[test]
    fn degenerate_empty_box() {
        // lo == hi pins the solution.
        let p = Matrix::from_diag(&[2.0]);
        let sol = solve_box_qp(&p, &[0.0], &[0.7], &[0.7], 100, 1e-10);
        assert_eq!(sol.x[0], 0.7);
    }
}
