//! Convergence criteria for the ADMM iteration.

use spotweb_linalg::vector::norm_inf;
use spotweb_linalg::{CsrMatrix, Matrix};

/// Primal and dual residuals plus the scale factors used for the
/// relative part of the tolerance (OSQP §3.4).
#[derive(Debug, Clone, Copy)]
pub struct Residuals {
    /// `‖Ax − z‖∞`.
    pub primal: f64,
    /// `‖Px + q + Aᵀy‖∞`.
    pub dual: f64,
    /// `max(‖Ax‖∞, ‖z‖∞)` — scales the primal tolerance.
    pub primal_scale: f64,
    /// `max(‖Px‖∞, ‖Aᵀy‖∞, ‖q‖∞)` — scales the dual tolerance.
    pub dual_scale: f64,
}

impl Residuals {
    /// Compute both residuals at the current iterate.
    ///
    /// Scratch buffers (`ax`, `px`, `aty`) must be sized `m`, `n`, `n`;
    /// they are overwritten.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        p: &Matrix,
        q: &[f64],
        a: &Matrix,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        ax: &mut [f64],
        px: &mut [f64],
        aty: &mut [f64],
    ) -> Residuals {
        a.matvec_into(x, ax).expect("residual: A·x shape");
        p.matvec_into(x, px).expect("residual: P·x shape");
        a.matvec_transpose_into(y, aty)
            .expect("residual: Aᵀ·y shape");
        Self::reduce(q, z, ax, px, aty)
    }

    /// Sparse-operator variant used by the ADMM hot loop.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_sparse(
        p: &CsrMatrix,
        q: &[f64],
        a: &CsrMatrix,
        x: &[f64],
        z: &[f64],
        y: &[f64],
        ax: &mut [f64],
        px: &mut [f64],
        aty: &mut [f64],
    ) -> Residuals {
        a.matvec_into(x, ax).expect("residual: A·x shape");
        p.matvec_into(x, px).expect("residual: P·x shape");
        a.matvec_transpose_into(y, aty)
            .expect("residual: Aᵀ·y shape");
        Self::reduce(q, z, ax, px, aty)
    }

    fn reduce(q: &[f64], z: &[f64], ax: &[f64], px: &[f64], aty: &[f64]) -> Residuals {
        let mut primal: f64 = 0.0;
        for (axi, zi) in ax.iter().zip(z) {
            primal = primal.max((axi - zi).abs());
        }
        let mut dual: f64 = 0.0;
        for ((pxi, qi), atyi) in px.iter().zip(q).zip(aty.iter()) {
            dual = dual.max((pxi + qi + atyi).abs());
        }
        Residuals {
            primal,
            dual,
            primal_scale: norm_inf(ax).max(norm_inf(z)),
            dual_scale: norm_inf(px).max(norm_inf(aty)).max(norm_inf(q)),
        }
    }

    /// OSQP-style stopping test.
    pub fn converged(&self, eps_abs: f64, eps_rel: f64) -> bool {
        let eps_pri = eps_abs + eps_rel * self.primal_scale;
        let eps_dua = eps_abs + eps_rel * self.dual_scale;
        self.primal <= eps_pri && self.dual <= eps_dua
    }

    /// Ratio used by adaptive-ρ: relative primal over relative dual
    /// residual, guarded against division by zero.
    pub fn rho_ratio(&self) -> f64 {
        let rp = self.primal / self.primal_scale.max(1e-10);
        let rd = self.dual / self.dual_scale.max(1e-10);
        (rp / rd.max(1e-10)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iterate_converges_for_zero_problem() {
        let p = Matrix::zeros(2, 2);
        let a = Matrix::zeros(1, 2);
        let q = [0.0, 0.0];
        let (x, z, y) = ([0.0, 0.0], [0.0], [0.0]);
        let mut ax = [0.0];
        let mut px = [0.0; 2];
        let mut aty = [0.0; 2];
        let r = Residuals::compute(&p, &q, &a, &x, &z, &y, &mut ax, &mut px, &mut aty);
        assert!(r.converged(1e-9, 1e-9));
    }

    #[test]
    fn detects_primal_gap() {
        let p = Matrix::zeros(1, 1);
        let a = Matrix::identity(1);
        let q = [0.0];
        let x = [2.0];
        let z = [1.0]; // Ax = 2 but z = 1 → primal residual 1.
        let y = [0.0];
        let mut ax = [0.0];
        let mut px = [0.0];
        let mut aty = [0.0];
        let r = Residuals::compute(&p, &q, &a, &x, &z, &y, &mut ax, &mut px, &mut aty);
        assert_eq!(r.primal, 1.0);
        assert!(!r.converged(1e-3, 1e-3));
    }

    #[test]
    fn detects_dual_gap() {
        // P = I, q = -1 → stationarity requires x = 1; at x = 0 the dual
        // residual is |q| = 1.
        let p = Matrix::identity(1);
        let a = Matrix::identity(1);
        let q = [-1.0];
        let x = [0.0];
        let z = [0.0];
        let y = [0.0];
        let mut ax = [0.0];
        let mut px = [0.0];
        let mut aty = [0.0];
        let r = Residuals::compute(&p, &q, &a, &x, &z, &y, &mut ax, &mut px, &mut aty);
        assert_eq!(r.dual, 1.0);
        assert!(!r.converged(1e-3, 1e-3));
    }

    #[test]
    fn rho_ratio_is_finite() {
        let r = Residuals {
            primal: 1.0,
            dual: 0.0,
            primal_scale: 1.0,
            dual_scale: 1.0,
        };
        assert!(r.rho_ratio().is_finite());
    }
}
