//! Property tests on the market substrate: invariants of the price
//! process, revocation model and covariance estimators under random
//! seeds and catalog subsets.

use proptest::prelude::*;
use spotweb_linalg::Cholesky;
use spotweb_market::{estimate_correlation, estimate_covariance, Catalog, CloudSim, Provider};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spot prices stay within (0, on-demand] for any seed and length.
    #[test]
    fn prices_always_bounded(seed in 0u64..10_000, steps in 1usize..300, n in 1usize..36) {
        let catalog = Catalog::ec2_subset(n);
        let mut cloud = CloudSim::new(catalog.clone(), seed, 8);
        for _ in 0..steps {
            let tick = cloud.step();
            for (m, price) in catalog.markets().iter().zip(&tick.prices) {
                prop_assert!(*price > 0.0);
                prop_assert!(*price <= m.instance.on_demand_price + 1e-12);
            }
        }
    }

    /// Failure probabilities stay within [0, 0.9] and on-demand markets
    /// never report risk.
    #[test]
    fn failure_probs_bounded(seed in 0u64..10_000, steps in 1usize..200) {
        let catalog = Catalog::fig5_three_markets().with_on_demand();
        let mut cloud = CloudSim::new(catalog.clone(), seed, 8);
        for _ in 0..steps {
            let tick = cloud.step();
            for (m, f) in catalog.markets().iter().zip(&tick.failure_probs) {
                prop_assert!((0.0..=0.9).contains(f));
                if !m.is_transient() {
                    prop_assert_eq!(*f, 0.0);
                }
            }
        }
    }

    /// Both risk-matrix estimators always produce Cholesky-factorable
    /// (positive definite) matrices on any recorded history.
    #[test]
    fn risk_estimators_always_pd(seed in 0u64..10_000, steps in 2usize..120) {
        let catalog = Catalog::ec2_subset(6);
        let mut cloud = CloudSim::new(catalog, seed, 256);
        cloud.warm_up(steps);
        let series = cloud.history().failure_matrix();
        prop_assert!(Cholesky::factor(&estimate_covariance(&series, 0.1)).is_ok());
        let corr = estimate_correlation(&series, 0.1);
        prop_assert!(Cholesky::factor(&corr).is_ok());
        // Correlation diagonals are 1 (+ ridge).
        for i in 0..corr.rows() {
            prop_assert!((corr[(i, i)] - 1.0).abs() < 1e-6);
        }
    }

    /// Revocation sampling never revokes more servers than deployed,
    /// and only from transient markets.
    #[test]
    fn revocations_respect_fleet(seed in 0u64..10_000, fleet_size in 0u32..8) {
        let catalog = Catalog::fig5_three_markets().with_on_demand();
        let mut cloud = CloudSim::new(catalog.clone(), seed, 8);
        cloud.warm_up(12);
        let fleet = vec![fleet_size; catalog.len()];
        let events = cloud.sample_revocations(&fleet);
        let mut per_market = vec![0u32; catalog.len()];
        for e in &events {
            per_market[e.market] += 1;
            prop_assert!(catalog.market(e.market).is_transient());
        }
        for (&revoked, &deployed) in per_market.iter().zip(&fleet) {
            prop_assert!(revoked <= deployed);
        }
    }

    /// GCP profile: constant prices regardless of seed or duration.
    #[test]
    fn gcp_prices_constant(seed in 0u64..10_000, steps in 2usize..100) {
        let mut cloud = Provider::GcpPreemptible.cloud(Catalog::ec2_subset(4), seed, 8);
        cloud.step();
        let first = cloud.current().prices;
        for _ in 0..steps {
            cloud.step();
            prop_assert_eq!(&cloud.current().prices, &first);
        }
    }
}
