//! The "spot index": capacity-weighted market portfolio weights.
//!
//! Cloud Index Tracking (arXiv:1809.03110) proposes *tracking* the
//! aggregate spot market — holding every market in proportion to its
//! size — instead of optimizing against it. The tracked portfolio's
//! hourly cost then follows the market-average spot price, which is far
//! less volatile than any single market: cost becomes *predictable*
//! rather than minimal.
//!
//! This module computes the index weights a tracking policy rebalances
//! toward. Without public depth data, market "size" is proxied by
//! serving capacity (`capacity_rps`), the same notion of size every
//! other layer of this repo uses.

use crate::catalog::{Catalog, MarketKind};

/// Capacity-proportional index weights over the catalog's *spot*
/// markets.
///
/// `weights[i]` is market `i`'s share of total transient serving
/// capacity; on-demand markets get weight 0 (they are not part of the
/// spot index). When the catalog has no spot markets at all the index
/// degenerates to uniform weights over every market, so a tracking
/// policy still provisions *something* on an all-on-demand catalog.
/// Weights are non-negative and sum to 1.
pub fn spot_index_weights(catalog: &Catalog) -> Vec<f64> {
    let spot_capacity: f64 = catalog
        .markets()
        .iter()
        .filter(|m| m.kind == MarketKind::Spot)
        .map(|m| m.capacity_rps())
        .sum();
    if spot_capacity <= 0.0 {
        let n = catalog.len().max(1) as f64;
        return vec![1.0 / n; catalog.len()];
    }
    catalog
        .markets()
        .iter()
        .map(|m| {
            if m.kind == MarketKind::Spot {
                m.capacity_rps() / spot_capacity
            } else {
                0.0
            }
        })
        .collect()
}

/// Capacity-weighted average price of the index ($/hour per unit of
/// index weight): what one "share" of the spot index costs right now.
/// This is the series a tracking policy's spend follows.
///
/// # Panics
/// Panics if `prices.len() != catalog.len()`.
pub fn index_price(catalog: &Catalog, prices: &[f64]) -> f64 {
    assert_eq!(prices.len(), catalog.len(), "one price per market");
    spot_index_weights(catalog)
        .iter()
        .zip(prices)
        .map(|(w, p)| w * p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn weights_are_a_capacity_share_distribution() {
        let c = Catalog::fig4_testbed();
        let w = spot_index_weights(&c);
        assert_eq!(w.len(), c.len());
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (i, m) in c.markets().iter().enumerate() {
            if m.kind == MarketKind::OnDemand {
                assert_eq!(w[i], 0.0, "on-demand markets are not in the index");
            } else {
                assert!(w[i] > 0.0, "every spot market is in the index");
            }
        }
    }

    #[test]
    fn bigger_spot_markets_get_bigger_weights() {
        let c = Catalog::ec2_subset(6);
        let w = spot_index_weights(&c);
        for i in 0..c.len() {
            for j in 0..c.len() {
                let (ci, cj) = (c.market(i).capacity_rps(), c.market(j).capacity_rps());
                if ci > cj {
                    assert!(w[i] > w[j], "capacity order must carry to weight order");
                }
            }
        }
    }

    #[test]
    fn on_demand_only_catalog_falls_back_to_uniform() {
        let c = Catalog::fig5_three_markets().with_on_demand();
        // Keep only the on-demand entries.
        let od: Vec<_> = c
            .markets()
            .iter()
            .filter(|m| m.kind == MarketKind::OnDemand)
            .cloned()
            .collect();
        let n = od.len();
        assert!(n > 0);
        let c = Catalog::from_markets(od);
        let w = spot_index_weights(&c);
        assert!(w.iter().all(|&x| (x - 1.0 / n as f64).abs() < 1e-12));
    }

    #[test]
    fn index_price_is_the_weighted_average() {
        let c = Catalog::fig5_three_markets();
        let prices = vec![2.0; c.len()];
        // All prices equal → index price equals that price exactly.
        assert!((index_price(&c, &prices) - 2.0).abs() < 1e-12);
    }
}
