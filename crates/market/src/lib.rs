//! Transient-cloud market substrate.
//!
//! SpotWeb's optimizer consumes, for every *market* (an instance
//! configuration offered either on-demand or as a revocable transient
//! server), three time series: the price, the revocation probability,
//! and — derived from the latter — a covariance matrix of revocation
//! dynamics. The paper measured these on Amazon EC2 (36 us-east-1 spot
//! markets, November 2018). That data is not redistributable, so this
//! crate *simulates* the cloud side:
//!
//! * [`catalog`] — an instance-type catalog modeled on EC2 (m4/c5/r4/r5/
//!   x1e families with their real vCPU/memory/on-demand-price ratios and
//!   the paper's request-capacity scaling of ≈20 req/s per vCPU).
//! * [`price`] — a mean-reverting stochastic spot-price process with
//!   demand-surge regimes; surges are what make the *cheapest market
//!   change over time*, the effect Fig. 5(a) of the paper depends on.
//! * [`revocation`] — per-market revocation probabilities driven by a
//!   shared demand factor (correlated within an instance family, like
//!   real spot pools) plus idiosyncratic noise, and sampling of
//!   revocation events with an advance warning period.
//! * [`covariance`] — estimation of the paper's matrix `M` from
//!   revocation-probability histories, with shrinkage so it is always
//!   usable as a quadratic risk term, plus correlation-threshold
//!   grouping of markets into failure domains.
//! * [`index`] — the capacity-weighted "spot index" that Cloud Index
//!   Tracking style policies rebalance toward.
//! * [`history`] — rolling per-market records the predictors read.
//! * [`cloud`] — a stepped façade combining all of the above, which the
//!   discrete-event simulator and the benchmark harness drive.
//! * [`billing`] — cost accounting (per-second billing, as on EC2).
//!
//! Everything is seeded ([`rand_chacha`]) so every experiment in
//! EXPERIMENTS.md is exactly reproducible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod billing;
pub mod catalog;
pub mod cloud;
pub mod covariance;
pub mod history;
pub mod index;
pub mod io;
pub mod price;
pub mod providers;
pub mod revocation;

pub use billing::{BillingLedger, BillingModel, CostMeter};
pub use catalog::{Catalog, InstanceType, Market, MarketId, MarketKind};
pub use cloud::CloudSim;
pub use covariance::{correlation_groups, estimate_correlation, estimate_covariance};
pub use history::MarketHistory;
pub use index::{index_price, spot_index_weights};
pub use price::SpotPriceProcess;
pub use providers::Provider;
pub use revocation::RevocationModel;
