//! Instance-type catalog modeled on Amazon EC2.
//!
//! The catalog provides the static side of a market: hardware shape,
//! on-demand price, and serving capacity `r_i` (requests/second with no
//! SLO violations, §4.2 of the paper). Capacities follow the paper's
//! own numbers — r5d.24xlarge serves 1920 req/s and r5.4xlarge serves
//! 320 req/s, i.e. 20 req/s per vCPU — so we use that scaling for the
//! whole catalog.

/// Identifier of a market: an index into the catalog's market list.
pub type MarketId = usize;

/// Requests/second one vCPU sustains for the MediaWiki-style read-heavy
/// workload the paper benchmarks (derived from the paper's capacities:
/// 1920 req/s on 96 vCPUs).
pub const RPS_PER_VCPU: f64 = 20.0;

/// A hardware configuration offered by the cloud provider.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceType {
    /// EC2-style name, e.g. `"m4.xlarge"`.
    pub name: String,
    /// Instance family (`"m4"`, `"r5"`, …) — revocation dynamics are
    /// correlated within a family because spot pools share capacity.
    pub family: String,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// On-demand price in $/hour.
    pub on_demand_price: f64,
    /// Serving capacity `r_i` in requests/second.
    pub capacity_rps: f64,
}

impl InstanceType {
    /// Build an instance type with capacity derived from vCPUs.
    pub fn new(name: &str, vcpus: u32, memory_gb: f64, on_demand_price: f64) -> Self {
        let family = name.split('.').next().unwrap_or(name).to_string();
        InstanceType {
            name: name.to_string(),
            family,
            vcpus,
            memory_gb,
            on_demand_price,
            capacity_rps: vcpus as f64 * RPS_PER_VCPU,
        }
    }

    /// On-demand price per request-second (`price / r_i`), the
    /// normalized cost the optimizer compares across configurations.
    pub fn on_demand_cost_per_request(&self) -> f64 {
        self.on_demand_price / self.capacity_rps
    }
}

/// How a market is purchased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarketKind {
    /// Non-revocable, fixed price.
    OnDemand,
    /// Revocable transient server (EC2 Spot / GCP preemptible style).
    Spot,
}

/// A market: one instance configuration under one purchasing model.
/// A catalog of `S` instance types yields `N = 2S` markets (paper §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Market {
    /// Stable identifier (index into [`Catalog::markets`]).
    pub id: MarketId,
    /// The hardware configuration.
    pub instance: InstanceType,
    /// Purchasing model.
    pub kind: MarketKind,
    /// Baseline revocation probability per decision interval (0 for
    /// on-demand). Synthetic stand-in for AWS's Spot Instance Advisor
    /// buckets (<5%, 5–10%, 10–15%, 15–20%).
    pub base_revocation_prob: f64,
}

impl Market {
    /// `true` for revocable markets.
    pub fn is_transient(&self) -> bool {
        self.kind == MarketKind::Spot
    }

    /// Serving capacity of one server in this market (req/s).
    pub fn capacity_rps(&self) -> f64 {
        self.instance.capacity_rps
    }
}

/// A set of markets the optimizer selects from.
#[derive(Debug, Clone)]
pub struct Catalog {
    markets: Vec<Market>,
}

/// Spot discount relative to on-demand used as the long-run mean of the
/// price process (paper §1: transient servers are 70–90% cheaper; we
/// center at 70% off).
pub const SPOT_BASE_DISCOUNT: f64 = 0.30;

impl Catalog {
    /// Build a catalog from instance types. Each type yields a spot
    /// market; when `include_on_demand` is set, an on-demand market too.
    ///
    /// `revocation_probs` gives the per-type baseline revocation
    /// probability (used for the spot market); it must match
    /// `types.len()`.
    pub fn new(
        types: Vec<InstanceType>,
        revocation_probs: Vec<f64>,
        include_on_demand: bool,
    ) -> Self {
        assert_eq!(
            types.len(),
            revocation_probs.len(),
            "one revocation probability per instance type"
        );
        let mut markets = Vec::new();
        for (ty, &f) in types.iter().zip(&revocation_probs) {
            assert!((0.0..=1.0).contains(&f), "revocation prob in [0,1]");
            markets.push(Market {
                id: markets.len(),
                instance: ty.clone(),
                kind: MarketKind::Spot,
                base_revocation_prob: f,
            });
        }
        if include_on_demand {
            for ty in &types {
                markets.push(Market {
                    id: markets.len(),
                    instance: ty.clone(),
                    kind: MarketKind::OnDemand,
                    base_revocation_prob: 0.0,
                });
            }
        }
        Catalog { markets }
    }

    /// Build directly from a market list (ids are re-stamped to match
    /// positions). Used by provider profiles that post-process a
    /// standard catalog.
    pub fn from_markets(markets: Vec<Market>) -> Catalog {
        let markets = markets
            .into_iter()
            .enumerate()
            .map(|(id, mut m)| {
                m.id = id;
                m
            })
            .collect();
        Catalog { markets }
    }

    /// All markets, ordered by id.
    pub fn markets(&self) -> &[Market] {
        &self.markets
    }

    /// Number of markets (`N`).
    pub fn len(&self) -> usize {
        self.markets.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.markets.is_empty()
    }

    /// Look up a market by id.
    pub fn market(&self, id: MarketId) -> &Market {
        &self.markets[id]
    }

    /// Find a market by instance name and kind.
    pub fn find(&self, name: &str, kind: MarketKind) -> Option<&Market> {
        self.markets
            .iter()
            .find(|m| m.instance.name == name && m.kind == kind)
    }

    /// The three-market catalog of the paper's Fig. 5 experiment:
    /// r5d.24xlarge (1920 req/s), r5.4xlarge (320 req/s),
    /// r4.4xlarge (320 req/s); spot only, equal sub-5% revocation
    /// probabilities (as the paper assumes there).
    pub fn fig5_three_markets() -> Catalog {
        let types = vec![
            InstanceType::new("r5d.24xlarge", 96, 768.0, 6.912),
            InstanceType::new("r5.4xlarge", 16, 128.0, 1.008),
            InstanceType::new("r4.4xlarge", 16, 122.0, 1.064),
        ];
        Catalog::new(types, vec![0.04, 0.04, 0.04], false)
    }

    /// The six-server testbed mix of the paper's Fig. 4(a) experiment:
    /// m4.xlarge, m4.2xlarge, m4.4xlarge (spot).
    pub fn fig4_testbed() -> Catalog {
        let types = vec![
            InstanceType::new("m4.xlarge", 4, 16.0, 0.20),
            InstanceType::new("m4.2xlarge", 8, 32.0, 0.40),
            InstanceType::new("m4.4xlarge", 16, 64.0, 0.80),
        ];
        Catalog::new(types, vec![0.05, 0.05, 0.05], false)
    }

    /// A 36-market catalog modeled on the conventional-x86 EC2
    /// us-east-1 types the paper's Fig. 6(b) experiment sweeps
    /// (m4/m5/c4/c5/r4/r5/x1e families, no GPUs). vCPU, memory and
    /// on-demand prices follow the 2018 us-east-1 price sheet.
    pub fn ec2_us_east_36() -> Catalog {
        #[rustfmt::skip]
        let spec: [(&str, u32, f64, f64); 36] = [
            ("m4.large",      2,   8.0, 0.10),
            ("m4.xlarge",     4,  16.0, 0.20),
            ("m4.2xlarge",    8,  32.0, 0.40),
            ("m4.4xlarge",   16,  64.0, 0.80),
            ("m4.10xlarge",  40, 160.0, 2.00),
            ("m4.16xlarge",  64, 256.0, 3.20),
            ("m5.large",      2,   8.0, 0.096),
            ("m5.xlarge",     4,  16.0, 0.192),
            ("m5.2xlarge",    8,  32.0, 0.384),
            ("m5.4xlarge",   16,  64.0, 0.768),
            ("m5.12xlarge",  48, 192.0, 2.304),
            ("m5.24xlarge",  96, 384.0, 4.608),
            ("c4.large",      2,   3.75, 0.10),
            ("c4.xlarge",     4,   7.5, 0.199),
            ("c4.2xlarge",    8,  15.0, 0.398),
            ("c4.4xlarge",   16,  30.0, 0.796),
            ("c4.8xlarge",   36,  60.0, 1.591),
            ("c5.large",      2,   4.0, 0.085),
            ("c5.xlarge",     4,   8.0, 0.17),
            ("c5.2xlarge",    8,  16.0, 0.34),
            ("c5.4xlarge",   16,  32.0, 0.68),
            ("c5.9xlarge",   36,  72.0, 1.53),
            ("c5.18xlarge",  72, 144.0, 3.06),
            ("r4.large",      2,  15.25, 0.133),
            ("r4.xlarge",     4,  30.5, 0.266),
            ("r4.2xlarge",    8,  61.0, 0.532),
            ("r4.4xlarge",   16, 122.0, 1.064),
            ("r4.8xlarge",   32, 244.0, 2.128),
            ("r4.16xlarge",  64, 488.0, 4.256),
            ("r5.large",      2,  16.0, 0.126),
            ("r5.xlarge",     4,  32.0, 0.252),
            ("r5.2xlarge",    8,  64.0, 0.504),
            ("r5.4xlarge",   16, 128.0, 1.008),
            ("r5.12xlarge",  48, 384.0, 3.024),
            ("r5.24xlarge",  96, 768.0, 6.048),
            ("x1e.16xlarge", 64, 1952.0, 13.344),
        ];
        let types: Vec<InstanceType> = spec
            .iter()
            .map(|&(n, v, m, p)| InstanceType::new(n, v, m, p))
            .collect();
        // Spot-advisor-style buckets, deterministic per index: larger
        // instances in a family tend to be reclaimed more often.
        let probs: Vec<f64> = (0..types.len())
            .map(|i| match i % 4 {
                0 => 0.03,
                1 => 0.05,
                2 => 0.08,
                _ => 0.12,
            })
            .collect();
        Catalog::new(types, probs, false)
    }

    /// First `n` markets of [`Catalog::ec2_us_east_36`] — used by the
    /// market-count sweeps of Fig. 6(b) and Fig. 7(b).
    pub fn ec2_subset(n: usize) -> Catalog {
        let full = Self::ec2_us_east_36();
        assert!(n >= 1 && n <= full.len(), "subset size out of range");
        let markets = full.markets[..n]
            .iter()
            .cloned()
            .enumerate()
            .map(|(id, mut m)| {
                m.id = id;
                m
            })
            .collect();
        Catalog { markets }
    }

    /// Extend the catalog with on-demand twins of every spot market
    /// (for experiments that let the optimizer fall back to on-demand).
    pub fn with_on_demand(&self) -> Catalog {
        let mut markets = self.markets.clone();
        let spot_count = markets.len();
        for i in 0..spot_count {
            if markets[i].kind == MarketKind::Spot {
                let mut od = markets[i].clone();
                od.id = markets.len();
                od.kind = MarketKind::OnDemand;
                od.base_revocation_prob = 0.0;
                markets.push(od);
            }
        }
        Catalog { markets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scaling_matches_paper() {
        let c = Catalog::fig5_three_markets();
        assert_eq!(c.market(0).capacity_rps(), 1920.0);
        assert_eq!(c.market(1).capacity_rps(), 320.0);
        assert_eq!(c.market(2).capacity_rps(), 320.0);
    }

    #[test]
    fn family_parsed_from_name() {
        let ty = InstanceType::new("r5d.24xlarge", 96, 768.0, 6.912);
        assert_eq!(ty.family, "r5d");
    }

    #[test]
    fn cost_per_request_ordering() {
        // Larger instances in the same family have similar normalized
        // cost; x1e (memory-heavy) is the most expensive per request.
        let c = Catalog::ec2_us_east_36();
        let x1e = c.find("x1e.16xlarge", MarketKind::Spot).unwrap();
        let m5 = c.find("m5.large", MarketKind::Spot).unwrap();
        assert!(
            x1e.instance.on_demand_cost_per_request() > m5.instance.on_demand_cost_per_request()
        );
    }

    #[test]
    fn thirty_six_markets() {
        assert_eq!(Catalog::ec2_us_east_36().len(), 36);
    }

    #[test]
    fn subset_reindexes() {
        let c = Catalog::ec2_subset(9);
        assert_eq!(c.len(), 9);
        for (i, m) in c.markets().iter().enumerate() {
            assert_eq!(m.id, i);
        }
    }

    #[test]
    fn with_on_demand_doubles() {
        let c = Catalog::fig5_three_markets().with_on_demand();
        assert_eq!(c.len(), 6);
        assert_eq!(c.market(3).kind, MarketKind::OnDemand);
        assert_eq!(c.market(3).base_revocation_prob, 0.0);
        assert_eq!(c.market(3).instance.name, c.market(0).instance.name);
    }

    #[test]
    fn find_by_name_and_kind() {
        let c = Catalog::fig4_testbed();
        assert!(c.find("m4.2xlarge", MarketKind::Spot).is_some());
        assert!(c.find("m4.2xlarge", MarketKind::OnDemand).is_none());
    }

    #[test]
    #[should_panic(expected = "one revocation probability")]
    fn mismatched_probs_panic() {
        Catalog::new(
            vec![InstanceType::new("m4.large", 2, 8.0, 0.1)],
            vec![],
            false,
        );
    }
}
