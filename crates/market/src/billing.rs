//! Cost accounting.
//!
//! Most clouds bill per second today (§5.1 of the paper notes Azure is
//! the holdout with hourly billing). The meter supports both
//! granularities so the billing-model ablation can quantify the
//! difference.

/// Billing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BillingModel {
    /// Pay exactly for the seconds used (EC2, GCP).
    PerSecond,
    /// Every started hour is charged in full (classic Azure).
    Hourly,
}

/// Accumulates spend for a fleet over simulated time.
#[derive(Debug, Clone)]
pub struct CostMeter {
    model: BillingModel,
    total: f64,
    /// Per-market cumulative spend.
    per_market: Vec<f64>,
}

impl CostMeter {
    /// New meter for `markets` markets.
    pub fn new(markets: usize, model: BillingModel) -> Self {
        CostMeter {
            model,
            total: 0.0,
            per_market: vec![0.0; markets],
        }
    }

    /// Charge for running `count` servers of market `id` at `price`
    /// ($/hour) for `duration_secs` seconds.
    pub fn charge(&mut self, id: usize, count: u32, price_per_hour: f64, duration_secs: f64) {
        assert!(duration_secs >= 0.0 && price_per_hour >= 0.0);
        let hours = match self.model {
            BillingModel::PerSecond => duration_secs / 3600.0,
            BillingModel::Hourly => (duration_secs / 3600.0).ceil(),
        };
        let cost = count as f64 * price_per_hour * hours;
        self.total += cost;
        self.per_market[id] += cost;
    }

    /// Total spend so far ($).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Spend attributed to market `id` ($).
    pub fn market_total(&self, id: usize) -> f64 {
        self.per_market[id]
    }

    /// Per-market spends ($), indexed by market id.
    pub fn per_market(&self) -> &[f64] {
        &self.per_market
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_is_proportional() {
        let mut m = CostMeter::new(1, BillingModel::PerSecond);
        m.charge(0, 2, 1.0, 1800.0); // 2 servers × $1/h × 0.5 h
        assert!((m.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hourly_rounds_up() {
        let mut m = CostMeter::new(1, BillingModel::Hourly);
        m.charge(0, 1, 1.0, 61.0); // just over a minute → a full hour
        assert_eq!(m.total(), 1.0);
        m.charge(0, 1, 1.0, 3600.0);
        assert_eq!(m.total(), 2.0);
    }

    #[test]
    fn per_market_attribution() {
        let mut m = CostMeter::new(2, BillingModel::PerSecond);
        m.charge(0, 1, 2.0, 3600.0);
        m.charge(1, 1, 3.0, 3600.0);
        assert_eq!(m.market_total(0), 2.0);
        assert_eq!(m.market_total(1), 3.0);
        assert_eq!(m.total(), 5.0);
    }

    #[test]
    fn zero_duration_is_free() {
        let mut m = CostMeter::new(1, BillingModel::PerSecond);
        m.charge(0, 10, 5.0, 0.0);
        assert_eq!(m.total(), 0.0);
    }
}
