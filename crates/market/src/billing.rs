//! Cost accounting.
//!
//! Most clouds bill per second today (§5.1 of the paper notes Azure is
//! the holdout with hourly billing). The meter supports both
//! granularities so the billing-model ablation can quantify the
//! difference.

/// Billing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BillingModel {
    /// Pay exactly for the seconds used (EC2, GCP).
    PerSecond,
    /// Every started hour is charged in full (classic Azure).
    Hourly,
}

/// Accumulates spend for a fleet over simulated time.
#[derive(Debug, Clone)]
pub struct CostMeter {
    model: BillingModel,
    total: f64,
    /// Per-market cumulative spend.
    per_market: Vec<f64>,
}

impl CostMeter {
    /// New meter for `markets` markets.
    pub fn new(markets: usize, model: BillingModel) -> Self {
        CostMeter {
            model,
            total: 0.0,
            per_market: vec![0.0; markets],
        }
    }

    /// Charge for running `count` servers of market `id` at `price`
    /// ($/hour) for `duration_secs` seconds.
    pub fn charge(&mut self, id: usize, count: u32, price_per_hour: f64, duration_secs: f64) {
        assert!(duration_secs >= 0.0 && price_per_hour >= 0.0);
        let hours = match self.model {
            BillingModel::PerSecond => duration_secs / 3600.0,
            BillingModel::Hourly => (duration_secs / 3600.0).ceil(),
        };
        let cost = count as f64 * price_per_hour * hours;
        self.total += cost;
        self.per_market[id] += cost;
    }

    /// Total spend so far ($).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Spend attributed to market `id` ($).
    pub fn market_total(&self, id: usize) -> f64 {
        self.per_market[id]
    }

    /// Per-market spends ($), indexed by market id.
    pub fn per_market(&self) -> &[f64] {
        &self.per_market
    }
}

/// Event-driven per-interval billing over a fleet of transient servers.
///
/// The naive way to bill an interval is to scan every backend ever
/// provisioned and ask "were you alive during any part of it?" — O(ever)
/// per interval, which is exactly the kind of accumulated-state control
/// work that collapses week-scale runs. The ledger instead tracks state
/// *transitions*: a backend is [`add`](Self::add)ed once when bought,
/// moved to a died list by [`mark_died`](Self::mark_died) when its
/// death fires, optionally [`restore`](Self::restore)d after a flap,
/// and [`settle`](Self::settle) walks only the live entries plus this
/// interval's deaths.
///
/// # Invariants (the "same dollars" argument)
///
/// Both internal lists are kept ascending by backend id, and settle
/// merge-walks them, so the [`CostMeter::charge`] call sequence —
/// and therefore the order-sensitive floating-point accumulation — is
/// identical to the old ascending-id scan:
///
/// * a live entry charges the full interval;
/// * a death at `d` with `t0 < d` charges `(d − t0).min(interval)` in
///   the interval where it *fires* (deaths fire lazily at control
///   timepoints, so a deadline crossing an interval boundary bills the
///   full earlier interval and nothing later — the scan's exact
///   behaviour, quirk included);
/// * a death at `d ≤ t0` charges nothing, and the died list is cleared
///   at settle, so a corpse is never walked again.
///
/// ```
/// use spotweb_market::billing::{BillingLedger, BillingModel, CostMeter};
///
/// let prices = [1.2, 0.8];
/// let mut ledger = BillingLedger::new();
/// let mut meter = CostMeter::new(2, BillingModel::PerSecond);
/// ledger.add(0, 0); // backend 0 in market 0
/// ledger.add(1, 1); // backend 1 in market 1
/// ledger.mark_died(1, 300.0); // dies halfway through [0, 600)
/// ledger.settle(0.0, 600.0, &prices, &mut meter);
/// // Backend 0: full 600 s; backend 1: 300 s at $0.8/h.
/// assert!((meter.total() - (1.2 * 600.0 / 3600.0 + 0.8 * 300.0 / 3600.0)).abs() < 1e-12);
/// // The corpse is gone: the next interval bills only backend 0.
/// ledger.settle(600.0, 600.0, &prices, &mut meter);
/// assert_eq!(ledger.live_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BillingLedger {
    /// Live billable backends as `(backend id, market)`, ascending id.
    entries: Vec<(usize, usize)>,
    /// Deaths fired since the last settle as `(backend id, market,
    /// death time)`, ascending id.
    died: Vec<(usize, usize, f64)>,
}

impl BillingLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (full-interval-billable) backends.
    pub fn live_count(&self) -> usize {
        self.entries.len()
    }

    /// Start billing `backend` (in `market`) from the next settle on.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is already live.
    pub fn add(&mut self, backend: usize, market: usize) {
        match self.entries.binary_search_by_key(&backend, |e| e.0) {
            Ok(_) => panic!("backend {backend} already in the billing ledger"),
            Err(pos) => self.entries.insert(pos, (backend, market)),
        }
    }

    /// Record that `backend`'s death *fired* at `at` (sim seconds).
    /// The backend leaves the live list; the next settle charges its
    /// partial interval (or nothing, if `at` precedes the interval).
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not live (never added, or already died).
    pub fn mark_died(&mut self, backend: usize, at: f64) {
        let pos = self
            .entries
            .binary_search_by_key(&backend, |e| e.0)
            .unwrap_or_else(|_| panic!("backend {backend} died without a live billing entry"));
        let (id, market) = self.entries.remove(pos);
        let at_pos = self
            .died
            .binary_search_by_key(&backend, |d| d.0)
            .unwrap_err();
        self.died.insert(at_pos, (id, market, at));
    }

    /// A flapped backend came back: resume full-interval billing. If
    /// the death fired earlier in the *same* interval the partial
    /// charge is cancelled (the old scan billed a restored backend for
    /// the whole interval); across intervals the death was already
    /// settled and only the live entry returns.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is already live.
    pub fn restore(&mut self, backend: usize, market: usize) {
        if let Ok(pos) = self.died.binary_search_by_key(&backend, |d| d.0) {
            self.died.remove(pos);
        }
        self.add(backend, market);
    }

    /// Charge `meter` for the interval `[t0, t0 + interval_secs)` at
    /// `prices` ($/h per market): live entries bill the full interval,
    /// this interval's deaths bill up to their death time, and the died
    /// list is cleared. Charges run in ascending backend-id order
    /// across both lists (see the type-level invariants).
    pub fn settle(&mut self, t0: f64, interval_secs: f64, prices: &[f64], meter: &mut CostMeter) {
        let mut live = self.entries.iter().peekable();
        let mut dead = self.died.iter().peekable();
        loop {
            // Merge-walk: lowest backend id first, exactly like the
            // old scan over the combined vector.
            let take_live = match (live.peek(), dead.peek()) {
                (Some(&&(lid, _)), Some(&&(did, _, _))) => lid < did,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_live {
                let &(_, market) = live.next().expect("peeked live entry");
                meter.charge(market, 1, prices[market], interval_secs);
            } else {
                let &(_, market, at) = dead.next().expect("peeked died entry");
                if at > t0 {
                    let billed_secs = (at - t0).min(interval_secs);
                    meter.charge(market, 1, prices[market], billed_secs);
                }
            }
        }
        self.died.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_is_proportional() {
        let mut m = CostMeter::new(1, BillingModel::PerSecond);
        m.charge(0, 2, 1.0, 1800.0); // 2 servers × $1/h × 0.5 h
        assert!((m.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hourly_rounds_up() {
        let mut m = CostMeter::new(1, BillingModel::Hourly);
        m.charge(0, 1, 1.0, 61.0); // just over a minute → a full hour
        assert_eq!(m.total(), 1.0);
        m.charge(0, 1, 1.0, 3600.0);
        assert_eq!(m.total(), 2.0);
    }

    #[test]
    fn per_market_attribution() {
        let mut m = CostMeter::new(2, BillingModel::PerSecond);
        m.charge(0, 1, 2.0, 3600.0);
        m.charge(1, 1, 3.0, 3600.0);
        assert_eq!(m.market_total(0), 2.0);
        assert_eq!(m.market_total(1), 3.0);
        assert_eq!(m.total(), 5.0);
    }

    #[test]
    fn zero_duration_is_free() {
        let mut m = CostMeter::new(1, BillingModel::PerSecond);
        m.charge(0, 10, 5.0, 0.0);
        assert_eq!(m.total(), 0.0);
    }

    #[test]
    fn ledger_bills_partial_interval_at_death() {
        let mut ledger = BillingLedger::new();
        let mut meter = CostMeter::new(1, BillingModel::PerSecond);
        ledger.add(0, 0);
        ledger.mark_died(0, 450.0);
        ledger.settle(0.0, 600.0, &[3600.0], &mut meter);
        assert!((meter.total() - 450.0).abs() < 1e-9);
        // Nothing left to bill.
        ledger.settle(600.0, 600.0, &[3600.0], &mut meter);
        assert!((meter.total() - 450.0).abs() < 1e-9);
        assert_eq!(ledger.live_count(), 0);
    }

    #[test]
    fn ledger_deferred_death_bills_full_then_zero() {
        // A death whose deadline lands after the last arrival of an
        // interval fires at the top of the next one: the old scan
        // billed the full earlier interval and nothing later. The
        // ledger replicates the quirk because `mark_died` happens at
        // fire time.
        let mut ledger = BillingLedger::new();
        let mut meter = CostMeter::new(1, BillingModel::PerSecond);
        ledger.add(0, 0);
        ledger.settle(0.0, 600.0, &[3600.0], &mut meter); // deadline 599.9 not fired yet
        assert!((meter.total() - 600.0).abs() < 1e-9);
        ledger.mark_died(0, 599.9); // fires during [600, 1200)
        ledger.settle(600.0, 600.0, &[3600.0], &mut meter);
        assert!(
            (meter.total() - 600.0).abs() < 1e-9,
            "death before t0 bills 0"
        );
    }

    #[test]
    fn ledger_same_interval_flap_restore_bills_full() {
        let mut ledger = BillingLedger::new();
        let mut meter = CostMeter::new(1, BillingModel::PerSecond);
        ledger.add(0, 0);
        ledger.mark_died(0, 100.0);
        ledger.restore(0, 0); // back before the settle
        ledger.settle(0.0, 600.0, &[3600.0], &mut meter);
        assert!(
            (meter.total() - 600.0).abs() < 1e-9,
            "restored backend bills whole interval"
        );
    }

    #[test]
    fn ledger_cross_interval_flap_bills_partial_then_full() {
        let mut ledger = BillingLedger::new();
        let mut meter = CostMeter::new(1, BillingModel::PerSecond);
        ledger.add(0, 0);
        ledger.mark_died(0, 500.0);
        ledger.settle(0.0, 600.0, &[3600.0], &mut meter);
        assert!((meter.total() - 500.0).abs() < 1e-9);
        ledger.restore(0, 0); // restores during the next interval
        ledger.settle(600.0, 600.0, &[3600.0], &mut meter);
        assert!((meter.total() - 1100.0).abs() < 1e-9);
    }

    /// Reference implementation: the old all-backends scan over
    /// parallel `(market, death_time)` vectors.
    fn scan_settle(
        markets: &[usize],
        death_time: &[Option<f64>],
        t0: f64,
        interval_secs: f64,
        prices: &[f64],
        meter: &mut CostMeter,
    ) {
        for (id, &m) in markets.iter().enumerate() {
            let billed_secs = match death_time[id] {
                Some(d) if d <= t0 => 0.0,
                Some(d) => (d - t0).min(interval_secs),
                None => interval_secs,
            };
            if billed_secs > 0.0 {
                meter.charge(m, 1, prices[m], billed_secs);
            }
        }
    }

    #[test]
    fn ledger_matches_scan_bit_for_bit_across_seeds() {
        // Random add/death/flap-restore schedules at the issue's three
        // seeds: the event-driven ledger and the O(ever) scan must
        // produce bit-identical totals (same charges, same order).
        for seed in [1234u64, 7, 99] {
            // Tiny deterministic LCG so this test needs no RNG dep.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let n_markets = 3;
            let prices = [1.3, 0.7, 2.1];
            let interval = 600.0;
            let mut ledger = BillingLedger::new();
            let mut ledger_meter = CostMeter::new(n_markets, BillingModel::PerSecond);
            let mut scan_meter = CostMeter::new(n_markets, BillingModel::PerSecond);
            let mut markets: Vec<usize> = Vec::new();
            let mut death_time: Vec<Option<f64>> = Vec::new();
            for k in 0..40usize {
                let t0 = k as f64 * interval;
                // Buy 0-2 servers.
                for _ in 0..(next() % 3) {
                    let m = (next() % n_markets as u64) as usize;
                    ledger.add(markets.len(), m);
                    markets.push(m);
                    death_time.push(None);
                }
                // Kill one live server ~half the time, at a random
                // offset that can precede t0 (a deferred death firing
                // late) or land inside the interval.
                if next() % 2 == 0 {
                    let live: Vec<usize> = (0..markets.len())
                        .filter(|&i| death_time[i].is_none())
                        .collect();
                    if !live.is_empty() {
                        let id = live[(next() % live.len() as u64) as usize];
                        // In [t0 - 50, t0 + 599]: a fired death never
                        // postdates the interval it fires in.
                        let d = t0 - 50.0 + (next() % 650) as f64;
                        death_time[id] = Some(d);
                        ledger.mark_died(id, d);
                        // ~a third of deaths are flaps that restore
                        // within the same interval.
                        if next() % 3 == 0 {
                            death_time[id] = None;
                            ledger.restore(id, markets[id]);
                        }
                    }
                }
                ledger.settle(t0, interval, &prices, &mut ledger_meter);
                scan_settle(
                    &markets,
                    &death_time,
                    t0,
                    interval,
                    &prices,
                    &mut scan_meter,
                );
                // The scan keeps re-billing 0.0 for corpses; normalize
                // them out the way the runner's fired-death semantics
                // do (a fired death is in the past by the next scan).
                assert_eq!(
                    ledger_meter.total().to_bits(),
                    scan_meter.total().to_bits(),
                    "seed {seed} interval {k}"
                );
                for m in 0..n_markets {
                    assert_eq!(
                        ledger_meter.market_total(m).to_bits(),
                        scan_meter.market_total(m).to_bits(),
                        "seed {seed} interval {k} market {m}"
                    );
                }
            }
        }
    }
}
