//! Spot price processes.
//!
//! EC2 spot prices are set by an internal supply/demand mechanism; from
//! the user's perspective they look like a mean-reverting process with
//! occasional sharp demand surges that can approach (or touch) the
//! on-demand ceiling. We model the *discount factor* `d(t) ∈ (0, 1]`
//! (spot price = `d(t) · on_demand_price`) as:
//!
//! * an Ornstein–Uhlenbeck core in log space, mean-reverting to the
//!   market's base discount (default 30% of on-demand, i.e. 70% off),
//! * a two-state surge regime (calm / surge) driven by a per-market
//!   Markov chain; in surge the mean shifts up to near on-demand,
//! * a floor/ceiling clamp: `d(t) ∈ [0.1 · base, 1.0]` — spot never
//!   exceeds on-demand.
//!
//! Different markets get independent noise streams plus a per-family
//! common component, so families co-move — the property that makes
//! diversification across families (not just sizes) worthwhile.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::catalog::{Catalog, MarketKind, SPOT_BASE_DISCOUNT};

/// Parameters for one market's price process.
#[derive(Debug, Clone)]
pub struct PriceParams {
    /// Long-run mean discount (fraction of on-demand).
    pub base_discount: f64,
    /// Mean-reversion speed per step (0..1, larger = snappier).
    pub reversion: f64,
    /// Per-step volatility of the log-discount.
    pub volatility: f64,
    /// Probability of entering a surge in a calm step.
    pub surge_enter: f64,
    /// Probability of leaving a surge in a surging step.
    pub surge_exit: f64,
    /// Mean discount while surging (close to 1.0 = on-demand parity).
    pub surge_discount: f64,
}

impl Default for PriceParams {
    fn default() -> Self {
        PriceParams {
            base_discount: SPOT_BASE_DISCOUNT,
            reversion: 0.15,
            volatility: 0.08,
            surge_enter: 0.01,
            surge_exit: 0.12,
            surge_discount: 0.85,
        }
    }
}

/// State of one market's price chain.
#[derive(Debug, Clone)]
struct MarketPriceState {
    /// Current log-discount.
    log_d: f64,
    surging: bool,
    params: PriceParams,
    on_demand_price: f64,
    is_spot: bool,
}

/// A stepped spot-price process over all markets of a catalog.
///
/// Call [`SpotPriceProcess::step`] once per decision interval; read
/// current prices with [`SpotPriceProcess::prices`] or
/// [`SpotPriceProcess::price`]. On-demand markets always return their
/// fixed price.
#[derive(Debug, Clone)]
pub struct SpotPriceProcess {
    states: Vec<MarketPriceState>,
    /// Per-family shared shock weight (family co-movement).
    family_of: Vec<usize>,
    family_count: usize,
    rng: ChaCha8Rng,
    /// Weight of the family-common shock vs idiosyncratic noise.
    family_weight: f64,
    /// Replay mode: recorded per-step prices override the stochastic
    /// model (clamped at the last row once the recording runs out).
    replay: Option<ReplayState>,
    /// Fault-injection: while `surge_hold[i] > 0`, market `i`'s surge
    /// regime is pinned (no stochastic transition) and the counter
    /// decays one per step. See [`SpotPriceProcess::inject_shock`].
    surge_hold: Vec<u32>,
}

/// Cursor over a recorded price matrix.
#[derive(Debug, Clone)]
struct ReplayState {
    /// `rows[t][i]` = $/hour of market `i` at step `t`.
    rows: Vec<Vec<f64>>,
    cursor: usize,
}

impl SpotPriceProcess {
    /// Build a process for `catalog` with default parameters and the
    /// given RNG seed.
    pub fn new(catalog: &Catalog, seed: u64) -> Self {
        Self::with_params(catalog, seed, |_| PriceParams::default())
    }

    /// Build with per-market parameters supplied by `params_for`
    /// (argument is the market id).
    pub fn with_params(
        catalog: &Catalog,
        seed: u64,
        params_for: impl Fn(usize) -> PriceParams,
    ) -> Self {
        // Map family names to dense indices.
        let mut fam_names: Vec<&str> = Vec::new();
        let mut family_of = Vec::with_capacity(catalog.len());
        for m in catalog.markets() {
            let fam = m.instance.family.as_str();
            let idx = match fam_names.iter().position(|f| *f == fam) {
                Some(i) => i,
                None => {
                    fam_names.push(fam);
                    fam_names.len() - 1
                }
            };
            family_of.push(idx);
        }
        let states = catalog
            .markets()
            .iter()
            .map(|m| {
                let params = params_for(m.id);
                MarketPriceState {
                    log_d: params.base_discount.ln(),
                    surging: false,
                    params,
                    on_demand_price: m.instance.on_demand_price,
                    is_spot: m.kind == MarketKind::Spot,
                }
            })
            .collect();
        let n = catalog.len();
        SpotPriceProcess {
            states,
            family_of,
            family_count: fam_names.len(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            family_weight: 0.4,
            replay: None,
            surge_hold: vec![0; n],
        }
    }

    /// Build a *replay* process that walks recorded prices instead of
    /// simulating them — the hook for feeding real provider data (e.g.
    /// the paper's published EC2 November-2018 traces) into any
    /// experiment. `rows[t][i]` is market `i`'s $/hour at step `t`;
    /// every row must cover all markets, spot prices must be positive,
    /// and after the last row the final prices hold.
    pub fn replay(catalog: &Catalog, rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "replay needs at least one price row");
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), catalog.len(), "row {t}: one price per market");
            assert!(
                row.iter().all(|p| p.is_finite() && *p > 0.0),
                "row {t}: prices must be positive"
            );
        }
        let mut process = Self::new(catalog, 0);
        process.apply_row_zero_to_log(&rows[0]);
        process.replay = Some(ReplayState { rows, cursor: 0 });
        process
    }

    fn apply_row_zero_to_log(&mut self, row: &[f64]) {
        for (st, &p) in self.states.iter_mut().zip(row) {
            if st.is_spot {
                st.log_d = (p / st.on_demand_price).max(1e-9).ln();
            }
        }
    }

    /// Number of markets tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when no markets are tracked.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Fault-injection hook: an exogenous demand spike (or crash) in
    /// `market` — all spot markets when `None`. The current discount is
    /// multiplied by `multiplier` (clamped to the usual
    /// `[0.1·base, 1.0]` band, so spot still never exceeds on-demand)
    /// and the regime set at injection time (surge when
    /// `multiplier > 1`) is *pinned* for the next `hold_steps` advances
    /// before the stochastic transitions resume. A pinned surge also
    /// feeds the revocation model's pressure term through the normal
    /// [`SpotPriceProcess::is_surging`] coupling. No-op on markets in
    /// replay mode (recorded rows are authoritative there).
    pub fn inject_shock(&mut self, market: Option<usize>, multiplier: f64, hold_steps: u32) {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "shock multiplier must be positive"
        );
        if self.replay.is_some() {
            return;
        }
        let ids: Vec<usize> = match market {
            Some(i) => vec![i],
            None => (0..self.len()).collect(),
        };
        for i in ids {
            let st = &mut self.states[i];
            if !st.is_spot {
                continue;
            }
            let lo = (0.1 * st.params.base_discount).ln();
            st.log_d = (st.log_d + multiplier.ln()).clamp(lo, 0.0);
            if multiplier > 1.0 {
                st.surging = true;
            }
            self.surge_hold[i] = hold_steps;
        }
    }

    /// Advance one decision interval.
    pub fn step(&mut self) {
        if let Some(replay) = &mut self.replay {
            if replay.cursor + 1 < replay.rows.len() {
                replay.cursor += 1;
            }
            let row = replay.rows[replay.cursor].clone();
            self.apply_row_zero_to_log(&row);
            return;
        }
        // One common shock per family this step.
        let fam_shock: Vec<f64> = (0..self.family_count)
            .map(|_| standard_normal(&mut self.rng))
            .collect();
        for (i, st) in self.states.iter_mut().enumerate() {
            if !st.is_spot {
                continue;
            }
            let p = &st.params;
            // Regime transition — pinned while a fault injection holds.
            if self.surge_hold[i] > 0 {
                self.surge_hold[i] -= 1;
            } else if st.surging {
                if self.rng.gen::<f64>() < p.surge_exit {
                    st.surging = false;
                }
            } else if self.rng.gen::<f64>() < p.surge_enter {
                st.surging = true;
            }
            let target = if st.surging {
                p.surge_discount.ln()
            } else {
                p.base_discount.ln()
            };
            let eps = self.family_weight * fam_shock[self.family_of[i]]
                + (1.0 - self.family_weight) * standard_normal(&mut self.rng);
            st.log_d += p.reversion * (target - st.log_d) + p.volatility * eps;
            // Clamp: never above on-demand, never below 10% of base.
            let lo = (0.1 * p.base_discount).ln();
            st.log_d = st.log_d.clamp(lo, 0.0);
        }
    }

    /// Current price of market `id` in $/hour.
    pub fn price(&self, id: usize) -> f64 {
        if let Some(replay) = &self.replay {
            return replay.rows[replay.cursor][id];
        }
        let st = &self.states[id];
        if st.is_spot {
            st.on_demand_price * st.log_d.exp()
        } else {
            st.on_demand_price
        }
    }

    /// Current prices of all markets in $/hour.
    pub fn prices(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.price(i)).collect()
    }

    /// `true` if market `id` is currently in a demand surge.
    pub fn is_surging(&self, id: usize) -> bool {
        self.states[id].surging
    }

    /// Generate a full price trace: `steps` rows, one column per market.
    pub fn generate(&mut self, steps: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            self.step();
            out.push(self.prices());
        }
        out
    }
}

/// Box–Muller standard normal (avoids pulling in `rand_distr`).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn deterministic_for_same_seed() {
        let c = Catalog::fig5_three_markets();
        let mut a = SpotPriceProcess::new(&c, 7);
        let mut b = SpotPriceProcess::new(&c, 7);
        assert_eq!(a.generate(50), b.generate(50));
    }

    #[test]
    fn different_seeds_differ() {
        let c = Catalog::fig5_three_markets();
        let mut a = SpotPriceProcess::new(&c, 1);
        let mut b = SpotPriceProcess::new(&c, 2);
        assert_ne!(a.generate(50), b.generate(50));
    }

    #[test]
    fn spot_never_exceeds_on_demand() {
        let c = Catalog::ec2_us_east_36();
        let mut p = SpotPriceProcess::new(&c, 42);
        for _ in 0..500 {
            p.step();
            for m in c.markets() {
                assert!(p.price(m.id) <= m.instance.on_demand_price + 1e-12);
                assert!(p.price(m.id) > 0.0);
            }
        }
    }

    #[test]
    fn on_demand_price_constant() {
        let c = Catalog::fig5_three_markets().with_on_demand();
        let mut p = SpotPriceProcess::new(&c, 3);
        let od_id = 3; // first on-demand twin
        let before = p.price(od_id);
        p.generate(100);
        assert_eq!(p.price(od_id), before);
    }

    #[test]
    fn mean_discount_near_base() {
        // Over a long window the average discount should sit near the
        // base discount (surges pull it up slightly).
        let c = Catalog::fig5_three_markets();
        let mut p = SpotPriceProcess::new(&c, 11);
        let trace = p.generate(5000);
        let od = c.market(0).instance.on_demand_price;
        let mean: f64 = trace.iter().map(|row| row[0]).sum::<f64>() / trace.len() as f64;
        let mean_discount = mean / od;
        assert!(
            mean_discount > 0.2 && mean_discount < 0.55,
            "mean discount {mean_discount}"
        );
    }

    #[test]
    fn cheapest_market_changes_over_time() {
        // The Fig. 5(a) property: with per-market dynamics the argmin of
        // per-request price is not constant.
        let c = Catalog::fig5_three_markets();
        let mut p = SpotPriceProcess::new(&c, 5);
        let caps: Vec<f64> = c.markets().iter().map(|m| m.capacity_rps()).collect();
        let mut argmins = std::collections::HashSet::new();
        for _ in 0..2000 {
            p.step();
            let per_req: Vec<f64> = (0..c.len()).map(|i| p.price(i) / caps[i]).collect();
            let argmin = per_req
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            argmins.insert(argmin);
        }
        assert!(argmins.len() >= 2, "cheapest market never changed");
    }

    #[test]
    fn injected_shock_spikes_then_reverts() {
        let c = Catalog::fig5_three_markets();
        let mut p = SpotPriceProcess::new(&c, 21);
        let before = p.price(0);
        p.inject_shock(Some(0), 3.0, 4);
        let shocked = p.price(0);
        assert!(
            shocked > before * 1.5,
            "shock should spike the price: {before} -> {shocked}"
        );
        assert!(p.is_surging(0), "shock pins the surge regime");
        let od = c.market(0).instance.on_demand_price;
        assert!(shocked <= od + 1e-12, "shock still capped at on-demand");
        // Other markets untouched at injection time.
        let other_before = p.price(1);
        assert!((p.price(1) - other_before).abs() < 1e-12);
        // After the hold expires the regime unpins and mean reversion
        // pulls the discount back toward base.
        let mut post = Vec::new();
        for _ in 0..120 {
            p.step();
            post.push(p.price(0));
        }
        let tail_mean: f64 = post[60..].iter().sum::<f64>() / 60.0;
        assert!(
            tail_mean < shocked,
            "price must revert after the hold: tail {tail_mean} vs shocked {shocked}"
        );
    }

    #[test]
    fn shock_is_deterministic() {
        let c = Catalog::fig5_three_markets();
        let mut a = SpotPriceProcess::new(&c, 13);
        let mut b = SpotPriceProcess::new(&c, 13);
        a.inject_shock(None, 2.5, 6);
        b.inject_shock(None, 2.5, 6);
        assert_eq!(a.generate(50), b.generate(50));
    }

    #[test]
    fn shock_noop_in_replay_mode() {
        let c = Catalog::fig5_three_markets();
        let rows = vec![vec![0.1; c.len()]; 3];
        let mut p = SpotPriceProcess::replay(&c, rows);
        p.inject_shock(None, 5.0, 3);
        assert_eq!(p.price(0), 0.1, "replay rows stay authoritative");
    }

    #[test]
    fn surges_occur_and_end() {
        let c = Catalog::ec2_us_east_36();
        let mut p = SpotPriceProcess::new(&c, 9);
        let mut surge_steps = 0;
        let mut calm_steps = 0;
        for _ in 0..2000 {
            p.step();
            if p.is_surging(0) {
                surge_steps += 1;
            } else {
                calm_steps += 1;
            }
        }
        assert!(surge_steps > 0, "no surge in 2000 steps");
        assert!(calm_steps > surge_steps, "surge should be the rare regime");
    }
}
