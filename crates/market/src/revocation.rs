//! Revocation dynamics of transient markets.
//!
//! Each spot market has a *revocation probability per decision
//! interval* `f_i(t)`. The paper found these near-static per market
//! (§5.1: "for almost all markets, there is no, to very little
//! dynamics, in the revocation probability"), so our model is a slowly
//! varying probability: the market's Spot-Advisor-style baseline
//! modulated by a shared, per-family *demand pressure* factor plus a
//! small idiosyncratic wiggle. During price surges the revocation
//! probability rises sharply — surges *are* demand spikes, which is
//! also when the provider reclaims capacity.
//!
//! The model yields: (a) near-static `f_i(t)` most of the time, (b)
//! positive correlation within a family, (c) correlated *events* when a
//! family surges — exactly the structure the covariance matrix `M` and
//! the diversification argument need.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::catalog::{Catalog, MarketKind};

/// Advance warning (seconds) given before a revocation — EC2 gives
/// 120 s, Azure 30 s; the paper quotes 30–120 s. Default: 120 s.
pub const DEFAULT_WARNING_SECS: f64 = 120.0;

/// A revocation event for one running server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevocationEvent {
    /// Market the server belongs to.
    pub market: usize,
    /// Index of the server within its market's fleet.
    pub server_index: usize,
}

/// Stepped per-market revocation model.
#[derive(Debug, Clone)]
pub struct RevocationModel {
    /// Baseline probability per interval, from the catalog.
    base: Vec<f64>,
    /// Current probability per interval.
    current: Vec<f64>,
    family_of: Vec<usize>,
    family_count: usize,
    /// Per-family demand pressure in [0, 1] (0 = calm).
    pressure: Vec<f64>,
    rng: ChaCha8Rng,
    /// Warning period (seconds) attached to every event.
    pub warning_secs: f64,
}

impl RevocationModel {
    /// Build a model for `catalog` seeded with `seed`.
    pub fn new(catalog: &Catalog, seed: u64) -> Self {
        let mut fam_names: Vec<&str> = Vec::new();
        let mut family_of = Vec::with_capacity(catalog.len());
        for m in catalog.markets() {
            let fam = m.instance.family.as_str();
            let idx = match fam_names.iter().position(|f| *f == fam) {
                Some(i) => i,
                None => {
                    fam_names.push(fam);
                    fam_names.len() - 1
                }
            };
            family_of.push(idx);
        }
        let base: Vec<f64> = catalog
            .markets()
            .iter()
            .map(|m| {
                if m.kind == MarketKind::Spot {
                    m.base_revocation_prob
                } else {
                    0.0
                }
            })
            .collect();
        RevocationModel {
            current: base.clone(),
            base,
            family_count: fam_names.len(),
            family_of,
            pressure: vec![0.0; fam_names.len()],
            rng: ChaCha8Rng::seed_from_u64(seed),
            warning_secs: DEFAULT_WARNING_SECS,
        }
    }

    /// Number of markets.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when no markets are tracked.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Advance one interval. `surging[i]` should say whether market `i`
    /// is in a price surge (from
    /// [`SpotPriceProcess::is_surging`](crate::price::SpotPriceProcess::is_surging));
    /// pass all-false when running the model standalone.
    pub fn step(&mut self, surging: &[bool]) {
        assert_eq!(surging.len(), self.len(), "surge flags per market");
        // Family pressure follows the max surge state of its members,
        // with exponential decay when calm.
        let mut fam_surge = vec![false; self.family_count];
        for (i, &s) in surging.iter().enumerate() {
            if s {
                fam_surge[self.family_of[i]] = true;
            }
        }
        for (p, &s) in self.pressure.iter_mut().zip(&fam_surge) {
            if s {
                *p = (*p + 0.5).min(1.0);
            } else {
                *p *= 0.6;
            }
        }
        for i in 0..self.len() {
            if self.base[i] == 0.0 {
                self.current[i] = 0.0;
                continue;
            }
            let pressure = self.pressure[self.family_of[i]];
            // Idiosyncratic wiggle of ±10% of baseline.
            let wiggle = 1.0 + 0.1 * (self.rng.gen::<f64>() * 2.0 - 1.0);
            // Pressure multiplies risk up to 6× baseline, capped at 0.9.
            self.current[i] = (self.base[i] * wiggle * (1.0 + 5.0 * pressure)).min(0.9);
        }
    }

    /// Current revocation probability of market `id` for this interval.
    pub fn probability(&self, id: usize) -> f64 {
        self.current[id]
    }

    /// All current probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.current
    }

    /// Sample revocation events for a fleet: `fleet[i]` is the number
    /// of running servers in market `i`. Each server is revoked
    /// independently with its market's probability — but when a market
    /// is revoked under surge pressure, the provider typically reclaims
    /// *the whole pool*; we model that by drawing one market-level coin
    /// first and, on revocation, taking all servers with probability
    /// `pool_fraction` each (default 1.0 → whole-pool reclaim).
    pub fn sample_events(&mut self, fleet: &[u32], pool_fraction: f64) -> Vec<RevocationEvent> {
        assert_eq!(fleet.len(), self.len(), "fleet sizes per market");
        let mut events = Vec::new();
        for (i, &n) in fleet.iter().enumerate() {
            if n == 0 || self.current[i] == 0.0 {
                continue;
            }
            if self.rng.gen::<f64>() < self.current[i] {
                for s in 0..n {
                    if pool_fraction >= 1.0 || self.rng.gen::<f64>() < pool_fraction {
                        events.push(RevocationEvent {
                            market: i,
                            server_index: s as usize,
                        });
                    }
                }
            }
        }
        events
    }

    /// Force a revocation of every server in `market` (used by the
    /// Fig. 4(a) experiment, which *induces* correlated failures).
    pub fn induce(&self, market: usize, fleet: &[u32]) -> Vec<RevocationEvent> {
        (0..fleet[market])
            .map(|s| RevocationEvent {
                market,
                server_index: s as usize,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn calm(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    #[test]
    fn on_demand_never_revokes() {
        let c = Catalog::fig5_three_markets().with_on_demand();
        let mut m = RevocationModel::new(&c, 1);
        for _ in 0..100 {
            m.step(&calm(c.len()));
        }
        for mk in c.markets() {
            if mk.kind == MarketKind::OnDemand {
                assert_eq!(m.probability(mk.id), 0.0);
            }
        }
        let fleet = vec![5u32; c.len()];
        let events = m.sample_events(&fleet, 1.0);
        assert!(events.iter().all(|e| c.market(e.market).is_transient()));
    }

    #[test]
    fn probabilities_near_static_when_calm() {
        let c = Catalog::ec2_us_east_36();
        let mut m = RevocationModel::new(&c, 2);
        let mut min_p = f64::INFINITY;
        let mut max_p: f64 = 0.0;
        for _ in 0..200 {
            m.step(&calm(c.len()));
            min_p = min_p.min(m.probability(0));
            max_p = max_p.max(m.probability(0));
        }
        let base = c.market(0).base_revocation_prob;
        assert!(
            min_p >= base * 0.85 && max_p <= base * 1.15,
            "wiggle too large"
        );
    }

    #[test]
    fn surge_raises_probability() {
        let c = Catalog::ec2_us_east_36();
        let mut m = RevocationModel::new(&c, 3);
        m.step(&calm(c.len()));
        let calm_p = m.probability(0);
        let mut surging = calm(c.len());
        surging[0] = true;
        for _ in 0..5 {
            m.step(&surging);
        }
        assert!(m.probability(0) > 2.0 * calm_p, "surge should raise risk");
    }

    #[test]
    fn family_correlation() {
        // Market 0 surging raises probabilities for its whole family.
        let c = Catalog::ec2_us_east_36();
        let mut m = RevocationModel::new(&c, 4);
        let fam0 = c.market(0).instance.family.clone();
        let sibling = c
            .markets()
            .iter()
            .position(|mk| mk.instance.family == fam0 && mk.id != 0)
            .unwrap();
        m.step(&calm(c.len()));
        let before = m.probability(sibling);
        let mut surging = calm(c.len());
        surging[0] = true;
        for _ in 0..5 {
            m.step(&surging);
        }
        assert!(m.probability(sibling) > before, "family members co-move");
    }

    #[test]
    fn induced_revocation_takes_whole_market() {
        let c = Catalog::fig4_testbed();
        let m = RevocationModel::new(&c, 5);
        let fleet = vec![2u32, 2, 2];
        let events = m.induce(1, &fleet);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.market == 1));
    }

    #[test]
    fn deterministic_sampling() {
        let c = Catalog::ec2_us_east_36();
        let fleet = vec![3u32; c.len()];
        let run = |seed| {
            let mut m = RevocationModel::new(&c, seed);
            let mut all = Vec::new();
            for _ in 0..50 {
                m.step(&calm(c.len()));
                all.extend(m.sample_events(&fleet, 1.0));
            }
            all
        };
        assert_eq!(run(7), run(7));
    }
}
