//! Stepped façade over the whole market substrate.
//!
//! `CloudSim` advances price and revocation dynamics together, records
//! them into a [`MarketHistory`], and samples revocation events for a
//! fleet. It is the single object the discrete-event simulator and the
//! figure harness drive per decision interval.

use crate::catalog::Catalog;
use crate::history::MarketHistory;
use crate::price::SpotPriceProcess;
use crate::revocation::{RevocationEvent, RevocationModel};
use spotweb_telemetry::{names, TelemetrySink, TraceEvent};

/// One decision interval's market observations.
#[derive(Debug, Clone)]
pub struct MarketTick {
    /// Current $/hour prices, indexed by market id.
    pub prices: Vec<f64>,
    /// Current per-interval revocation probabilities.
    pub failure_probs: Vec<f64>,
}

/// The combined transient-cloud simulator.
#[derive(Debug, Clone)]
pub struct CloudSim {
    catalog: Catalog,
    prices: SpotPriceProcess,
    revocations: RevocationModel,
    history: MarketHistory,
    telemetry: TelemetrySink,
    steps: u64,
}

impl CloudSim {
    /// Build a cloud simulation over `catalog`, keeping `history_len`
    /// intervals of history. The seed derives independent sub-streams
    /// for prices and revocations.
    pub fn new(catalog: Catalog, seed: u64, history_len: usize) -> Self {
        let prices = SpotPriceProcess::new(&catalog, seed.wrapping_mul(2).wrapping_add(1));
        let revocations = RevocationModel::new(&catalog, seed.wrapping_mul(2).wrapping_add(2));
        let history = MarketHistory::new(catalog.len(), history_len);
        CloudSim {
            catalog,
            prices,
            revocations,
            history,
            telemetry: TelemetrySink::disabled(),
            steps: 0,
        }
    }

    /// Assemble from already-built components (used by
    /// [`crate::providers::Provider`] profiles that customize the price
    /// process or revocation model).
    pub fn from_parts(
        catalog: Catalog,
        prices: SpotPriceProcess,
        revocations: RevocationModel,
        history_len: usize,
    ) -> Self {
        let history = MarketHistory::new(catalog.len(), history_len);
        CloudSim {
            catalog,
            prices,
            revocations,
            history,
            telemetry: TelemetrySink::disabled(),
            steps: 0,
        }
    }

    /// Attach a telemetry sink; each [`CloudSim::step`] emits a
    /// `market_tick` trace event and fault hooks are traced.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// The market catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Rolling observation history (read by predictors / covariance).
    pub fn history(&self) -> &MarketHistory {
        &self.history
    }

    /// Revocation warning period in seconds.
    pub fn warning_secs(&self) -> f64 {
        self.revocations.warning_secs
    }

    /// Advance one decision interval and record the new observations.
    pub fn step(&mut self) -> MarketTick {
        self.prices.step();
        let surging: Vec<bool> = (0..self.catalog.len())
            .map(|i| self.prices.is_surging(i))
            .collect();
        self.revocations.step(&surging);
        let tick = MarketTick {
            prices: self.prices.prices(),
            failure_probs: self.revocations.probabilities().to_vec(),
        };
        self.history.record(&tick.prices, &tick.failure_probs);
        self.steps += 1;
        self.telemetry.count(names::MARKET_STEPS_TOTAL, 1);
        self.telemetry.emit(TraceEvent::MarketTick {
            step: self.steps,
            prices: tick.prices.clone(),
            failure_probs: tick.failure_probs.clone(),
        });
        tick
    }

    /// Warm up the simulation (and history) by `steps` intervals —
    /// predictors need a filled window before the experiment proper.
    pub fn warm_up(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Latest observations without advancing.
    pub fn current(&self) -> MarketTick {
        MarketTick {
            prices: self.prices.prices(),
            failure_probs: self.revocations.probabilities().to_vec(),
        }
    }

    /// Sample revocation events for this interval given a fleet
    /// (`fleet[i]` = running servers in market `i`).
    pub fn sample_revocations(&mut self, fleet: &[u32]) -> Vec<RevocationEvent> {
        let events = self.revocations.sample_events(fleet, 1.0);
        if !events.is_empty() {
            self.telemetry
                .count(names::MARKET_REVOCATIONS_TOTAL, events.len() as u64);
        }
        events
    }

    /// Per-request price of market `id` right now (`price / r_i`) —
    /// the series Fig. 5(a) plots.
    pub fn per_request_price(&self, id: usize) -> f64 {
        self.prices.price(id) / self.catalog.market(id).capacity_rps()
    }

    /// Fault-injection hook: spike (or crash) spot prices in `market`
    /// (all spot markets when `None`) by `multiplier`, pinning the
    /// injected regime for `hold_steps` intervals. Delegates to
    /// [`SpotPriceProcess::inject_shock`]; a pinned surge also raises
    /// revocation pressure through the normal coupling in
    /// [`CloudSim::step`].
    pub fn inject_price_shock(&mut self, market: Option<usize>, multiplier: f64, hold_steps: u32) {
        self.prices.inject_shock(market, multiplier, hold_steps);
        self.telemetry.emit(TraceEvent::FaultInjected {
            fault: "price_shock".to_string(),
            detail: match market {
                Some(m) => format!("market {m} x{multiplier} for {hold_steps} steps"),
                None => format!("all spot markets x{multiplier} for {hold_steps} steps"),
            },
        });
    }

    /// Fault-injection hook: override the provider's revocation warning
    /// window (e.g. zero for no-warning chaos scenarios). Applies to
    /// every revocation issued from now on.
    pub fn set_warning_secs(&mut self, secs: f64) {
        assert!(secs.is_finite() && secs >= 0.0, "warning must be >= 0");
        self.revocations.warning_secs = secs;
    }

    /// Fault-injection hook: force-revoke every server the fleet holds
    /// in each of `markets` (a correlated capacity-loss event),
    /// bypassing the stochastic sampler. Returns one event per doomed
    /// server, exactly like [`CloudSim::sample_revocations`].
    pub fn force_revocations(&mut self, markets: &[usize], fleet: &[u32]) -> Vec<RevocationEvent> {
        let mut events = Vec::new();
        for &m in markets {
            events.extend(self.revocations.induce(m, fleet));
        }
        if !events.is_empty() {
            self.telemetry
                .count(names::MARKET_REVOCATIONS_TOTAL, events.len() as u64);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn step_records_history() {
        let mut c = CloudSim::new(Catalog::fig5_three_markets(), 1, 100);
        assert!(c.history().is_empty());
        c.step();
        c.step();
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn deterministic_by_seed() {
        let run = |seed| {
            let mut c = CloudSim::new(Catalog::fig5_three_markets(), seed, 10);
            c.warm_up(20);
            c.current().prices
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn per_request_price_scales_by_capacity() {
        let mut c = CloudSim::new(Catalog::fig5_three_markets(), 2, 10);
        c.step();
        let tick = c.current();
        let expected = tick.prices[0] / 1920.0;
        assert!((c.per_request_price(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn sample_revocations_respects_fleet() {
        let mut c = CloudSim::new(Catalog::ec2_us_east_36(), 3, 10);
        c.warm_up(5);
        let fleet = vec![0u32; 36];
        assert!(c.sample_revocations(&fleet).is_empty());
    }

    #[test]
    fn forced_revocations_hit_every_server_in_the_markets() {
        let mut c = CloudSim::new(Catalog::fig5_three_markets(), 4, 10);
        c.warm_up(5);
        let fleet = vec![2u32, 3, 1];
        let events = c.force_revocations(&[0, 2], &fleet);
        assert_eq!(events.len(), 3, "2 servers in market 0 + 1 in market 2");
        assert!(events.iter().all(|e| e.market == 0 || e.market == 2));
    }

    #[test]
    fn warning_override_applies() {
        let mut c = CloudSim::new(Catalog::fig5_three_markets(), 4, 10);
        assert!(c.warning_secs() > 0.0);
        c.set_warning_secs(0.0);
        assert_eq!(c.warning_secs(), 0.0);
    }

    #[test]
    fn price_shock_raises_failure_pressure() {
        // A held surge must feed the revocation model: failure
        // probabilities in the shocked market rise above the unshocked
        // twin run.
        let run = |shock: bool| {
            let mut c = CloudSim::new(Catalog::fig5_three_markets(), 8, 50);
            c.warm_up(10);
            if shock {
                c.inject_price_shock(Some(0), 3.0, 8);
            }
            let mut worst: f64 = 0.0;
            for _ in 0..8 {
                let tick = c.step();
                worst = worst.max(tick.failure_probs[0]);
            }
            worst
        };
        assert!(
            run(true) > run(false),
            "surge pressure must raise revocation probability"
        );
    }
}
