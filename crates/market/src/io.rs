//! CSV import/export of market price histories.
//!
//! The paper open-sources its EC2 price and revocation data; this
//! module provides the interchange surface so users can replay *real*
//! provider data through any experiment (via
//! [`SpotPriceProcess::replay`](crate::price::SpotPriceProcess::replay)
//! and [`CloudSim::from_parts`](crate::cloud::CloudSim::from_parts)).
//!
//! Format: a header row `step,<market-0-name>,<market-1-name>,…`
//! followed by one row per decision interval with $/hour prices.

use std::io::{BufRead, Write};

use crate::catalog::Catalog;

/// Error type for price-matrix IO.
#[derive(Debug)]
pub enum PriceIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A row failed to parse or had the wrong arity.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// No data rows.
    Empty,
}

impl core::fmt::Display for PriceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PriceIoError::Io(e) => write!(f, "io error: {e}"),
            PriceIoError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            PriceIoError::Empty => write!(f, "price file has no data rows"),
        }
    }
}

impl std::error::Error for PriceIoError {}

impl From<std::io::Error> for PriceIoError {
    fn from(e: std::io::Error) -> Self {
        PriceIoError::Io(e)
    }
}

/// Write a price matrix (`rows[t][i]`, market-major columns) as CSV.
pub fn write_price_csv<W: Write>(
    catalog: &Catalog,
    rows: &[Vec<f64>],
    mut w: W,
) -> Result<(), PriceIoError> {
    let names: Vec<&str> = catalog
        .markets()
        .iter()
        .map(|m| m.instance.name.as_str())
        .collect();
    writeln!(w, "step,{}", names.join(","))?;
    for (t, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), catalog.len(), "row {t}: one price per market");
        let cells: Vec<String> = row.iter().map(|p| format!("{p}")).collect();
        writeln!(w, "{t},{}", cells.join(","))?;
    }
    Ok(())
}

/// Read a price matrix produced by [`write_price_csv`] (or assembled
/// from real provider data in the same shape). The market count is
/// taken from the header; data rows must match it.
pub fn read_price_csv<R: BufRead>(r: R) -> Result<Vec<Vec<f64>>, PriceIoError> {
    let mut rows = Vec::new();
    let mut expected_cols: Option<usize> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if lineno == 0 {
            expected_cols = Some(line.split(',').count().saturating_sub(1));
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        let expected = expected_cols.unwrap_or(0);
        if cells.len() != expected + 1 {
            return Err(PriceIoError::Parse {
                line: lineno + 1,
                reason: format!("expected {} columns, got {}", expected + 1, cells.len()),
            });
        }
        let mut row = Vec::with_capacity(expected);
        for c in &cells[1..] {
            let p: f64 = c.trim().parse().map_err(|e| PriceIoError::Parse {
                line: lineno + 1,
                reason: format!("bad price: {e}"),
            })?;
            if !p.is_finite() || p <= 0.0 {
                return Err(PriceIoError::Parse {
                    line: lineno + 1,
                    reason: "prices must be positive".into(),
                });
            }
            row.push(p);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(PriceIoError::Empty);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudSim;
    use crate::price::SpotPriceProcess;
    use crate::revocation::RevocationModel;

    #[test]
    fn round_trip_and_replay() {
        let catalog = Catalog::fig5_three_markets();
        // Record a simulated history…
        let mut recorder = SpotPriceProcess::new(&catalog, 7);
        let rows = recorder.generate(24);
        let mut buf = Vec::new();
        write_price_csv(&catalog, &rows, &mut buf).unwrap();
        // …read it back and replay it through a fresh CloudSim.
        let back = read_price_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 24);
        let replay = SpotPriceProcess::replay(&catalog, back.clone());
        let revocations = RevocationModel::new(&catalog, 9);
        let mut cloud = CloudSim::from_parts(catalog, replay, revocations, 64);
        for want in &back[1..] {
            let tick = cloud.step();
            for (got, expect) in tick.prices.iter().zip(want) {
                assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
            }
        }
        // Past the recording the last row holds.
        let last = cloud.step().prices;
        for (got, expect) in last.iter().zip(back.last().unwrap()) {
            assert!((got - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        let data = "step,a,b\n0,1.0,2.0\n1,1.0\n";
        assert!(matches!(
            read_price_csv(data.as_bytes()),
            Err(PriceIoError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_non_positive() {
        let data = "step,a\n0,0.0\n";
        assert!(read_price_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_empty() {
        let data = "step,a\n";
        assert!(matches!(
            read_price_csv(data.as_bytes()),
            Err(PriceIoError::Empty)
        ));
    }

    #[test]
    fn per_request_price_uses_replayed_values() {
        let catalog = Catalog::fig5_three_markets();
        let rows = vec![vec![1.92, 0.32, 0.32]];
        let replay = SpotPriceProcess::replay(&catalog, rows);
        let revocations = RevocationModel::new(&catalog, 1);
        let mut cloud = CloudSim::from_parts(catalog, replay, revocations, 8);
        cloud.step();
        assert!((cloud.per_request_price(0) - 1.92 / 1920.0).abs() < 1e-12);
        assert!((cloud.per_request_price(1) - 0.32 / 320.0).abs() < 1e-12);
    }
}
