//! Cloud-provider profiles (§7 "Other Cloud providers").
//!
//! The paper's measurements are EC2-based but §7 argues the approach
//! transfers: on Google Cloud "prices are constant, \[but\] both the
//! workload variations, and the probability of preemption — which
//! varies between 0.05 and 0.15 — will lead to cost savings", and
//! "since all instances are terminated after running for 24 hours …
//! SpotWeb can utilize its transiency-aware load-balancer to relinquish
//! the resources". Azure's low-priority VMs add hourly billing and a
//! 30 s warning. A [`Provider`] bundles those differences so any
//! experiment can swap clouds with one argument.

use crate::billing::BillingModel;
use crate::catalog::Catalog;
use crate::cloud::CloudSim;
use crate::price::{PriceParams, SpotPriceProcess};
use crate::revocation::RevocationModel;

/// A transient-capacity provider model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provider {
    /// Amazon EC2 Spot: market-driven prices, 120 s warning,
    /// per-second billing, no lifetime cap.
    Ec2Spot,
    /// Google Cloud preemptible VMs: fixed ~70%-off prices, 30 s
    /// warning, per-second billing, hard 24 h lifetime.
    GcpPreemptible,
    /// Azure low-priority VMs: fixed ~60%-off prices, 30 s warning,
    /// hourly billing, no lifetime cap.
    AzureLowPriority,
}

impl Provider {
    /// Advance revocation warning in seconds.
    pub fn warning_secs(self) -> f64 {
        match self {
            Provider::Ec2Spot => 120.0,
            Provider::GcpPreemptible | Provider::AzureLowPriority => 30.0,
        }
    }

    /// Billing granularity.
    pub fn billing(self) -> BillingModel {
        match self {
            Provider::AzureLowPriority => BillingModel::Hourly,
            _ => BillingModel::PerSecond,
        }
    }

    /// Maximum instance lifetime, when the provider imposes one.
    pub fn max_lifetime_secs(self) -> Option<f64> {
        match self {
            Provider::GcpPreemptible => Some(24.0 * 3600.0),
            _ => None,
        }
    }

    /// Price-process parameters for one market. Fixed-price providers
    /// get zero volatility and no surge regime — the discount simply
    /// holds.
    pub fn price_params(self) -> PriceParams {
        match self {
            Provider::Ec2Spot => PriceParams::default(),
            Provider::GcpPreemptible => PriceParams {
                base_discount: 0.30,
                volatility: 0.0,
                surge_enter: 0.0,
                reversion: 1.0,
                ..PriceParams::default()
            },
            Provider::AzureLowPriority => PriceParams {
                base_discount: 0.40,
                volatility: 0.0,
                surge_enter: 0.0,
                reversion: 1.0,
                ..PriceParams::default()
            },
        }
    }

    /// Baseline per-interval preemption probability override.
    /// GCP's published preemption rates span 0.05–0.15; EC2/Azure use
    /// the catalog's per-market values.
    pub fn revocation_override(self, market_index: usize) -> Option<f64> {
        match self {
            Provider::GcpPreemptible => Some(0.05 + 0.10 * ((market_index % 5) as f64 / 4.0)),
            _ => None,
        }
    }

    /// Build a [`CloudSim`] whose dynamics follow this provider.
    pub fn cloud(self, catalog: Catalog, seed: u64, history_len: usize) -> CloudSim {
        let mut catalog = catalog;
        if let Provider::GcpPreemptible = self {
            // Re-stamp the catalog's baseline revocation probabilities.
            let markets: Vec<_> = catalog
                .markets()
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, mut m)| {
                    if let Some(f) = self.revocation_override(i) {
                        if m.is_transient() {
                            m.base_revocation_prob = f;
                        }
                    }
                    m
                })
                .collect();
            catalog = Catalog::from_markets(markets);
        }
        let params = self.price_params();
        let prices = SpotPriceProcess::with_params(
            &catalog,
            seed.wrapping_mul(2).wrapping_add(1),
            move |_| params.clone(),
        );
        let mut revocations = RevocationModel::new(&catalog, seed.wrapping_mul(2).wrapping_add(2));
        revocations.warning_secs = self.warning_secs();
        CloudSim::from_parts(catalog, prices, revocations, history_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn gcp_prices_are_constant() {
        let mut cloud = Provider::GcpPreemptible.cloud(Catalog::fig5_three_markets(), 1, 16);
        cloud.step();
        let first = cloud.current().prices;
        cloud.warm_up(50);
        assert_eq!(cloud.current().prices, first);
        // And discounted ~70% off on-demand.
        let od = cloud.catalog().market(0).instance.on_demand_price;
        assert!((first[0] / od - 0.30).abs() < 1e-9);
    }

    #[test]
    fn ec2_prices_move() {
        let mut cloud = Provider::Ec2Spot.cloud(Catalog::fig5_three_markets(), 1, 16);
        cloud.step();
        let first = cloud.current().prices;
        cloud.warm_up(50);
        assert_ne!(cloud.current().prices, first);
    }

    #[test]
    fn gcp_preemption_rates_in_published_range() {
        let mut cloud = Provider::GcpPreemptible.cloud(Catalog::ec2_subset(9), 2, 16);
        cloud.warm_up(10);
        for f in cloud.current().failure_probs {
            assert!(
                (0.04..=0.17).contains(&f),
                "gcp preemption {f} outside 0.05–0.15 (±wiggle)"
            );
        }
    }

    #[test]
    fn provider_metadata() {
        assert_eq!(Provider::Ec2Spot.warning_secs(), 120.0);
        assert_eq!(Provider::GcpPreemptible.warning_secs(), 30.0);
        assert_eq!(Provider::GcpPreemptible.max_lifetime_secs(), Some(86_400.0));
        assert_eq!(Provider::Ec2Spot.max_lifetime_secs(), None);
        assert_eq!(Provider::AzureLowPriority.billing(), BillingModel::Hourly);
    }
}
