//! Rolling per-market history of prices and revocation probabilities.
//!
//! The monitoring component of SpotWeb (§5.2) keeps time series of
//! market prices and failure probabilities and exposes them to the
//! predictors and the covariance estimator. `MarketHistory` is that
//! record: a bounded window per market, O(1) append, slice access for
//! estimation.

use std::collections::VecDeque;

/// Bounded time-series history for `n` markets.
#[derive(Debug, Clone)]
pub struct MarketHistory {
    prices: Vec<VecDeque<f64>>,
    failure_probs: Vec<VecDeque<f64>>,
    capacity: usize,
}

impl MarketHistory {
    /// Create a history for `markets` markets keeping at most
    /// `capacity` intervals each.
    pub fn new(markets: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        MarketHistory {
            prices: (0..markets)
                .map(|_| VecDeque::with_capacity(capacity))
                .collect(),
            failure_probs: (0..markets)
                .map(|_| VecDeque::with_capacity(capacity))
                .collect(),
            capacity,
        }
    }

    /// Number of markets tracked.
    pub fn markets(&self) -> usize {
        self.prices.len()
    }

    /// Number of recorded intervals (same for all markets).
    pub fn len(&self) -> usize {
        self.prices.first().map_or(0, |q| q.len())
    }

    /// `true` before the first record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record one interval of observations.
    ///
    /// # Panics
    /// Panics if slice lengths don't match the market count.
    pub fn record(&mut self, prices: &[f64], failure_probs: &[f64]) {
        assert_eq!(prices.len(), self.markets(), "price per market");
        assert_eq!(
            failure_probs.len(),
            self.markets(),
            "failure prob per market"
        );
        for (q, &v) in self.prices.iter_mut().zip(prices) {
            if q.len() == self.capacity {
                q.pop_front();
            }
            q.push_back(v);
        }
        for (q, &v) in self.failure_probs.iter_mut().zip(failure_probs) {
            if q.len() == self.capacity {
                q.pop_front();
            }
            q.push_back(v);
        }
    }

    /// Price series of market `id`, oldest first.
    pub fn price_series(&self, id: usize) -> Vec<f64> {
        self.prices[id].iter().copied().collect()
    }

    /// Failure-probability series of market `id`, oldest first.
    pub fn failure_series(&self, id: usize) -> Vec<f64> {
        self.failure_probs[id].iter().copied().collect()
    }

    /// Latest price of market `id`, if any interval was recorded.
    pub fn latest_price(&self, id: usize) -> Option<f64> {
        self.prices[id].back().copied()
    }

    /// Latest failure probability of market `id`.
    pub fn latest_failure(&self, id: usize) -> Option<f64> {
        self.failure_probs[id].back().copied()
    }

    /// All failure series as rows (market-major) — the covariance
    /// estimator's input layout.
    pub fn failure_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.markets())
            .map(|i| self.failure_series(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let mut h = MarketHistory::new(2, 10);
        h.record(&[1.0, 2.0], &[0.1, 0.2]);
        h.record(&[1.5, 2.5], &[0.15, 0.25]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.price_series(0), vec![1.0, 1.5]);
        assert_eq!(h.failure_series(1), vec![0.2, 0.25]);
        assert_eq!(h.latest_price(1), Some(2.5));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut h = MarketHistory::new(1, 3);
        for i in 0..5 {
            h.record(&[i as f64], &[0.0]);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.price_series(0), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_latest_is_none() {
        let h = MarketHistory::new(1, 3);
        assert!(h.is_empty());
        assert_eq!(h.latest_price(0), None);
        assert_eq!(h.latest_failure(0), None);
    }

    #[test]
    #[should_panic(expected = "price per market")]
    fn mismatched_record_panics() {
        let mut h = MarketHistory::new(2, 3);
        h.record(&[1.0], &[0.1, 0.2]);
    }

    #[test]
    fn failure_matrix_layout() {
        let mut h = MarketHistory::new(2, 4);
        h.record(&[1.0, 1.0], &[0.1, 0.3]);
        h.record(&[1.0, 1.0], &[0.2, 0.4]);
        let m = h.failure_matrix();
        assert_eq!(m, vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
    }
}
