//! Estimation of the revocation covariance matrix `M`.
//!
//! The paper's quadratic risk term (Eq. 5) is `α·AᵀMA` with `M` "the
//! covariance matrix of pairwise market revocation events which can be
//! inferred from the changes in the failure probability over time".
//! We estimate `M` as the sample covariance of the failure-probability
//! series and apply diagonal shrinkage so it is strictly positive
//! definite (required both by the risk interpretation and by the QP
//! solver's KKT factorization).

use spotweb_linalg::{vector, Matrix};

/// Shrinkage intensity used when the caller does not specify one.
pub const DEFAULT_SHRINKAGE: f64 = 0.1;

/// Estimate a shrunk covariance matrix from per-market series.
///
/// `series[i]` is market `i`'s failure-probability history (all series
/// must share one length ≥ 2). The estimator is
/// `M = (1−δ)·S + δ·diag(S)` + a tiny ridge, where `S` is the sample
/// covariance — classic shrinkage towards the diagonal, which both
/// conditions the matrix and tempers spurious off-diagonal noise from
/// short windows.
///
/// # Panics
/// Panics if fewer than one series is supplied, lengths differ, or the
/// shared length is < 2.
pub fn estimate_covariance(series: &[Vec<f64>], shrinkage: f64) -> Matrix {
    assert!(!series.is_empty(), "need at least one market series");
    let t = series[0].len();
    assert!(t >= 2, "need at least two observations");
    assert!(
        series.iter().all(|s| s.len() == t),
        "all series must share one length"
    );
    assert!((0.0..=1.0).contains(&shrinkage), "shrinkage in [0,1]");

    let n = series.len();
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let c = vector::covariance(&series[i], &series[j]);
            m[(i, j)] = c;
            m[(j, i)] = c;
        }
    }
    // Shrink off-diagonals toward zero.
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m[(i, j)] *= 1.0 - shrinkage;
            }
        }
    }
    // Ridge keeps M usable even when a series is constant (zero
    // variance) — common for on-demand markets whose f ≡ 0.
    m.add_diag_mut(1e-8);
    m
}

/// Convenience wrapper with [`DEFAULT_SHRINKAGE`].
pub fn estimate_covariance_default(series: &[Vec<f64>]) -> Matrix {
    estimate_covariance(series, DEFAULT_SHRINKAGE)
}

/// Estimate a shrunk **correlation** matrix from per-market series.
///
/// §6 of the paper: "M is chosen based on correlation between the
/// failure probabilities matrix" — correlations are scale-free (O(1)
/// entries), which is what makes the paper's risk-aversion value
/// `α = 5` meaningful against O(1) cost terms. Markets with constant
/// histories (on-demand, or perfectly calm spot pools) get a unit
/// diagonal and zero off-diagonals.
pub fn estimate_correlation(series: &[Vec<f64>], shrinkage: f64) -> Matrix {
    assert!(!series.is_empty(), "need at least one market series");
    let t = series[0].len();
    assert!(t >= 2, "need at least two observations");
    assert!(
        series.iter().all(|s| s.len() == t),
        "all series must share one length"
    );
    assert!((0.0..=1.0).contains(&shrinkage), "shrinkage in [0,1]");
    let n = series.len();
    let mut m = Matrix::identity(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let c = vector::correlation(&series[i], &series[j]) * (1.0 - shrinkage);
            m[(i, j)] = c;
            m[(j, i)] = c;
        }
    }
    // Shrinkage toward the identity keeps the matrix positive definite
    // even when short windows produce spurious ±1 correlations.
    m.add_diag_mut(1e-8);
    m
}

/// Partition markets into failure-correlation groups.
///
/// Two markets land in the same group when the absolute value of their
/// pairwise correlation (entry of `corr`, e.g. from
/// [`estimate_correlation`]) is at least `threshold` — extended
/// transitively (single linkage), because a chain of strongly
/// correlated markets fails together in the scenarios that matter
/// (correlated price spikes, mass revocations). Fault-tolerance-aware
/// heterogeneous grouping (Qu et al., arXiv:1509.05197) provisions at
/// most one market per group so that one correlated failure domain
/// takes out at most one slice of the fleet.
///
/// Returns one group id per market. Ids are dense, start at 0, and are
/// assigned in market order (market 0 is always in group 0), so the
/// output is a pure function of the matrix — no hashing, no RNG.
///
/// # Panics
/// Panics if `corr` is not square or `threshold` is not in `[0, 1]`.
pub fn correlation_groups(corr: &Matrix, threshold: f64) -> Vec<usize> {
    let n = corr.rows();
    assert_eq!(n, corr.cols(), "correlation matrix must be square");
    assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
    // Union-find over the ≥-threshold pairs.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if corr[(i, j)].abs() >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    // Attach the larger root under the smaller so the
                    // representative is always the lowest market id.
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    // Renumber roots densely in first-appearance (market) order.
    let mut ids = vec![usize::MAX; n];
    let mut next = 0;
    (0..n)
        .map(|i| {
            let root = find(&mut parent, i);
            if ids[root] == usize::MAX {
                ids[root] = next;
                next += 1;
            }
            ids[root]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Cholesky;

    #[test]
    fn diagonal_is_variance() {
        let s = vec![vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0, 1.0, 1.0]];
        let m = estimate_covariance(&s, 0.0);
        assert!((m[(0, 0)] - vector::variance(&s[0]) - 1e-8).abs() < 1e-12);
        assert!((m[(1, 1)] - 1e-8).abs() < 1e-12);
    }

    #[test]
    fn correlated_series_have_positive_cov() {
        let a: Vec<f64> = (0..50)
            .map(|i| 0.05 + 0.01 * (i as f64 * 0.3).sin())
            .collect();
        let b: Vec<f64> = a.iter().map(|v| v * 1.5 + 0.01).collect();
        let m = estimate_covariance(&[a, b], 0.1);
        assert!(m[(0, 1)] > 0.0);
    }

    #[test]
    fn result_is_positive_definite() {
        // Even with perfectly collinear series, shrinkage + ridge give PD.
        let a = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let b = a.clone();
        let m = estimate_covariance(&[a, b], 0.1);
        assert!(Cholesky::factor(&m).is_ok());
    }

    #[test]
    fn constant_series_pd_via_ridge() {
        let m = estimate_covariance(&[vec![0.0; 10], vec![0.0; 10]], 0.1);
        assert!(Cholesky::factor(&m).is_ok());
    }

    #[test]
    fn shrinkage_reduces_off_diagonal() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin() + 0.01).collect();
        let none = estimate_covariance(&[a.clone(), b.clone()], 0.0);
        let heavy = estimate_covariance(&[a, b], 0.9);
        assert!(heavy[(0, 1)].abs() < none[(0, 1)].abs());
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn ragged_series_panic() {
        estimate_covariance(&[vec![1.0, 2.0], vec![1.0]], 0.1);
    }

    #[test]
    fn groups_split_uncorrelated_and_join_correlated() {
        let mut m = Matrix::identity(4);
        // Markets 0↔2 strongly correlated; 1 and 3 independent.
        m[(0, 2)] = 0.9;
        m[(2, 0)] = 0.9;
        let g = correlation_groups(&m, 0.5);
        assert_eq!(g, vec![0, 1, 0, 2], "dense ids in market order");
    }

    #[test]
    fn groups_are_transitive_single_linkage() {
        let mut m = Matrix::identity(3);
        // 0↔1 and 1↔2 correlated, 0↔2 not: still one failure domain.
        m[(0, 1)] = 0.8;
        m[(1, 0)] = 0.8;
        m[(1, 2)] = 0.8;
        m[(2, 1)] = 0.8;
        let g = correlation_groups(&m, 0.5);
        assert_eq!(g, vec![0, 0, 0]);
    }

    #[test]
    fn identity_matrix_puts_every_market_alone() {
        let g = correlation_groups(&Matrix::identity(5), 0.3);
        assert_eq!(g, vec![0, 1, 2, 3, 4]);
    }
}
