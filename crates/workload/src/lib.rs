//! Web-workload traces for SpotWeb experiments.
//!
//! The paper evaluates on two three-week request-rate traces (Fig. 3):
//! the English Wikipedia (June 2008) and TV4's premium VoD service
//! (January 2013). Neither is redistributable here, so this crate
//! generates *synthetic equivalents* that preserve the features the
//! paper's experiments exercise:
//!
//! * [`wikipedia`] — strong diurnal + weekly seasonality, smooth, very
//!   few spikes (the trace the spline predictor handles almost
//!   perfectly).
//! * [`vod`] — diurnal with evening prime-time concentration plus
//!   frequent, large, hard-to-predict flash spikes (the trace that
//!   stresses the over-provisioning logic; the paper reports ~25%
//!   savings there vs ~50% on Wikipedia).
//!
//! Support modules: [`trace`] (the time-series container), [`spikes`]
//! (flash-crowd injection), [`stats`] (summary statistics used by
//! EXPERIMENTS.md), [`io`] (CSV round-tripping so traces can be
//! exported for external plotting), and [`rng`] (the counter-based,
//! draw-order-free generator behind every randomized draw in this
//! crate and the simulator's sharded arrival loop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod rng;
pub mod spikes;
pub mod stats;
pub mod trace;
pub mod vod;
pub mod wikipedia;

pub use trace::Trace;
pub use vod::vod_like;
pub use wikipedia::wikipedia_like;
