//! Summary statistics over traces (used for the Fig. 3 table rows and
//! sanity checks in EXPERIMENTS.md).

use spotweb_linalg::vector;

use crate::trace::Trace;

/// Descriptive statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Sample count.
    pub len: usize,
    /// Mean rate (req/s).
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum (peak).
    pub max: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Peak-to-mean ratio (burstiness indicator).
    pub peak_to_mean: f64,
    /// Count of hour-over-hour jumps > 50% (spike count).
    pub large_jumps: usize,
}

impl TraceStats {
    /// Compute stats for a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let v = &trace.values;
        let mean = vector::mean(v);
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in traces"));
        let min = sorted.first().copied().unwrap_or(0.0);
        let max = sorted.last().copied().unwrap_or(0.0);
        let large_jumps = v.windows(2).filter(|w| w[1] > 1.5 * w[0].max(1.0)).count();
        TraceStats {
            len: v.len(),
            mean,
            std_dev: vector::std_dev(v),
            min,
            max,
            p50: vector::percentile_sorted(&sorted, 50.0),
            p95: vector::percentile_sorted(&sorted, 95.0),
            p99: vector::percentile_sorted(&sorted, 99.0),
            peak_to_mean: if mean > 0.0 { max / mean } else { 0.0 },
            large_jumps,
        }
    }
}

/// Autocorrelation of a series at a given lag (diurnality shows up as a
/// strong peak at lag 24 for hourly traces).
pub fn autocorrelation(values: &[f64], lag: usize) -> f64 {
    if lag >= values.len() || values.len() < 2 {
        return 0.0;
    }
    vector::correlation(&values[..values.len() - lag], &values[lag..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_series() {
        let t = Trace::new(1.0, vec![1.0, 2.0, 3.0, 4.0]);
        let s = TraceStats::of(&t);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.5);
        assert!((s.peak_to_mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn large_jumps_counted() {
        let t = Trace::new(1.0, vec![10.0, 30.0, 31.0, 100.0]);
        let s = TraceStats::of(&t);
        assert_eq!(s.large_jumps, 2); // 10→30 and 31→100
    }

    #[test]
    fn empty_trace_safe() {
        let s = TraceStats::of(&Trace::new(1.0, vec![]));
        assert_eq!(s.len, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.peak_to_mean, 0.0);
    }

    #[test]
    fn diurnal_autocorrelation() {
        let t = crate::wikipedia::wikipedia_like(21 * 24, 1);
        let ac24 = autocorrelation(&t.values, 24);
        let ac7 = autocorrelation(&t.values, 7);
        assert!(ac24 > 0.7, "lag-24 autocorrelation {ac24}");
        assert!(ac24 > ac7, "diurnal lag must dominate odd lags");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(autocorrelation(&[], 0), 0.0);
    }
}
