//! Flash-crowd spike machinery shared by the VoD generator and the
//! failure-injection tests.

use crate::rng::{
    stream_id, CounterStream, DOMAIN_SPIKE_HALF, DOMAIN_SPIKE_MAG, DOMAIN_SPIKE_OCCUR,
    DOMAIN_SPIKE_RAMP,
};
use crate::trace::Trace;

/// Description of one injected spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Sample index at which the spike starts.
    pub start: usize,
    /// Peak magnitude as a multiple of the pre-spike level (1.0 = +100%).
    pub magnitude: f64,
    /// Ramp-up length in samples.
    pub ramp: usize,
    /// Decay half-life in samples.
    pub half_life: f64,
}

/// Add `spikes` to a copy of `trace`. Each spike ramps up linearly over
/// `ramp` samples then decays exponentially with `half_life`.
pub fn inject_spikes(trace: &Trace, spikes: &[Spike]) -> Trace {
    let mut values = trace.values.clone();
    for s in spikes {
        assert!(s.start < values.len(), "spike start inside trace");
        // Magnitude is relative to the *original* level so superposed
        // spikes don't compound multiplicatively.
        let base = trace.values[s.start];
        let extra = base * s.magnitude;
        // Ramp.
        for k in 0..s.ramp {
            let i = s.start + k;
            if i >= values.len() {
                break;
            }
            values[i] += extra * (k + 1) as f64 / s.ramp.max(1) as f64;
        }
        // Decay, starting one half-life step below the peak.
        let decay = (0.5_f64).powf(1.0 / s.half_life.max(1e-9));
        let mut i = s.start + s.ramp;
        let mut level = extra * decay;
        while i < values.len() && level > 0.01 * extra {
            values[i] += level;
            level *= decay;
            i += 1;
        }
    }
    Trace::new(trace.interval_secs, values)
}

/// Sample a random set of spikes: Poisson-ish arrivals with rate
/// `rate_per_sample`, magnitudes uniform in `[min_mag, max_mag]`.
pub fn random_spikes(
    len: usize,
    rate_per_sample: f64,
    min_mag: f64,
    max_mag: f64,
    seed: u64,
) -> Vec<Spike> {
    assert!(min_mag <= max_mag);
    // One counter stream per field, all keyed by the sample index, so
    // any sample's spike (or absence) is a pure function of the seed
    // — see `crate::rng`.
    let occur = CounterStream::new(seed, stream_id(DOMAIN_SPIKE_OCCUR, 0));
    let mag = CounterStream::new(seed, stream_id(DOMAIN_SPIKE_MAG, 0));
    let ramp = CounterStream::new(seed, stream_id(DOMAIN_SPIKE_RAMP, 0));
    let half = CounterStream::new(seed, stream_id(DOMAIN_SPIKE_HALF, 0));
    let mut out = Vec::new();
    for start in 0..len {
        let c = start as u64;
        if occur.unit_f64_at(c) < rate_per_sample {
            out.push(Spike {
                start,
                magnitude: min_mag + mag.unit_f64_at(c) * (max_mag - min_mag),
                ramp: 1 + ramp.range_at(c, 2) as usize,
                half_life: 1.0 + half.unit_f64_at(c) * 3.0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(len: usize) -> Trace {
        Trace::new(3600.0, vec![100.0; len])
    }

    #[test]
    fn spike_raises_level_then_decays() {
        let t = inject_spikes(
            &flat(20),
            &[Spike {
                start: 5,
                magnitude: 1.0,
                ramp: 1,
                half_life: 1.0,
            }],
        );
        assert_eq!(t.values[4], 100.0);
        assert_eq!(t.values[5], 200.0); // +100%
        assert!(t.values[6] > 100.0 && t.values[6] < 200.0);
        assert!(t.values[10] < t.values[6]);
    }

    #[test]
    fn multiple_spikes_superpose() {
        let spikes = [
            Spike {
                start: 2,
                magnitude: 0.5,
                ramp: 1,
                half_life: 1.0,
            },
            Spike {
                start: 2,
                magnitude: 0.5,
                ramp: 1,
                half_life: 1.0,
            },
        ];
        let t = inject_spikes(&flat(10), &spikes);
        assert_eq!(t.values[2], 200.0);
    }

    #[test]
    fn spike_near_end_is_truncated() {
        let t = inject_spikes(
            &flat(5),
            &[Spike {
                start: 4,
                magnitude: 2.0,
                ramp: 3,
                half_life: 2.0,
            }],
        );
        assert_eq!(t.len(), 5);
        assert!(t.values[4] > 100.0);
    }

    #[test]
    fn random_spikes_deterministic_and_in_range() {
        let a = random_spikes(1000, 0.01, 0.5, 3.0, 9);
        let b = random_spikes(1000, 0.01, 0.5, 3.0, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|s| s.magnitude >= 0.5 && s.magnitude <= 3.0));
        assert!(a.iter().all(|s| s.start < 1000));
    }

    #[test]
    fn zero_rate_no_spikes() {
        assert!(random_spikes(1000, 0.0, 1.0, 2.0, 1).is_empty());
    }
}
