//! Wikipedia-like workload generator.
//!
//! The English-Wikipedia trace of Fig. 3(a)/4(b) is hourly over three
//! weeks and is dominated by smooth diurnal and weekly seasonality with
//! very few spikes. The generator composes:
//!
//! * a diurnal sinusoid (trough at ~04:00 UTC, peak at ~15:00 UTC, the
//!   shape of global English readership),
//! * a weekly modulation (weekends ~10% quieter),
//! * a slow linear growth trend across the window,
//! * small multiplicative AR(1) noise,
//! * (rarely) a mild news-event bump.

use crate::rng::{stream_id, CounterStream, DOMAIN_BUMP, DOMAIN_NOISE};
use crate::trace::Trace;

/// Parameters of the Wikipedia-like generator.
#[derive(Debug, Clone)]
pub struct WikipediaParams {
    /// Mean request rate (req/s) the trace is centered on.
    pub mean_rate: f64,
    /// Diurnal swing as a fraction of the mean (peak-to-mean).
    pub diurnal_amplitude: f64,
    /// Weekend damping (0.1 = weekends 10% quieter).
    pub weekend_dip: f64,
    /// Total growth across the trace as a fraction (0.05 = +5%).
    pub growth: f64,
    /// AR(1) noise standard deviation (fraction of level).
    pub noise_sd: f64,
    /// AR(1) noise persistence in [0, 1).
    pub noise_phi: f64,
    /// Probability per hour of a mild news bump.
    pub bump_prob: f64,
}

impl Default for WikipediaParams {
    fn default() -> Self {
        WikipediaParams {
            mean_rate: 3000.0,
            diurnal_amplitude: 0.35,
            weekend_dip: 0.10,
            growth: 0.05,
            noise_sd: 0.02,
            noise_phi: 0.6,
            bump_prob: 0.002,
        }
    }
}

/// Generate an hourly Wikipedia-like trace of `hours` samples.
pub fn wikipedia_like(hours: usize, seed: u64) -> Trace {
    wikipedia_with(hours, seed, &WikipediaParams::default())
}

/// Generate with explicit parameters.
pub fn wikipedia_with(hours: usize, seed: u64, p: &WikipediaParams) -> Trace {
    // Counter-based draws keyed by hour: the AR(1) recursion is still
    // sequential, but the underlying draws are order-free (`crate::rng`).
    let noise_draws = CounterStream::new(seed, stream_id(DOMAIN_NOISE, 0));
    let bump_draws = CounterStream::new(seed, stream_id(DOMAIN_BUMP, 0));
    let mut noise = 0.0_f64;
    let mut bump = 0.0_f64; // decaying news-event bump
    let mut values = Vec::with_capacity(hours);
    for h in 0..hours {
        let hour_of_day = (h % 24) as f64;
        let day = h / 24;
        // Diurnal: trough 04:00, peak 15:00 → phase shift.
        let diurnal =
            1.0 + p.diurnal_amplitude * ((hour_of_day - 15.0) / 24.0 * std::f64::consts::TAU).cos();
        // Weekly: days 5, 6 of each week are weekend.
        let weekly = if day % 7 >= 5 {
            1.0 - p.weekend_dip
        } else {
            1.0
        };
        // Growth across the window.
        let trend = if hours > 1 {
            1.0 + p.growth * h as f64 / (hours - 1) as f64
        } else {
            1.0
        };
        // AR(1) multiplicative noise.
        let eps: f64 = noise_draws.unit_f64_at(h as u64) * 2.0 - 1.0;
        noise = p.noise_phi * noise + p.noise_sd * eps;
        // Rare mild bump (news event), +20%, decaying over ~6 h.
        if bump_draws.unit_f64_at(h as u64) < p.bump_prob {
            bump = 0.2;
        }
        bump *= 0.85;
        let rate = p.mean_rate * diurnal * weekly * trend * (1.0 + noise + bump);
        values.push(rate.max(0.0));
    }
    Trace::new(3600.0, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    const THREE_WEEKS: usize = 21 * 24;

    #[test]
    fn deterministic() {
        assert_eq!(
            wikipedia_like(THREE_WEEKS, 1).values,
            wikipedia_like(THREE_WEEKS, 1).values
        );
        assert_ne!(
            wikipedia_like(THREE_WEEKS, 1).values,
            wikipedia_like(THREE_WEEKS, 2).values
        );
    }

    #[test]
    fn mean_near_target() {
        let t = wikipedia_like(THREE_WEEKS, 3);
        let m = t.mean();
        assert!((m - 3000.0).abs() / 3000.0 < 0.1, "mean {m}");
    }

    #[test]
    fn diurnal_pattern_present() {
        // Average of 15:00 samples must exceed average of 04:00 samples
        // by roughly the diurnal amplitude.
        let t = wikipedia_like(THREE_WEEKS, 4);
        let avg_at = |hod: usize| {
            let vals: Vec<f64> = t
                .values
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 24 == hod)
                .map(|(_, v)| *v)
                .collect();
            spotweb_linalg::vector::mean(&vals)
        };
        let peak = avg_at(15);
        let trough = avg_at(4);
        assert!(peak > 1.3 * trough, "peak {peak} trough {trough}");
    }

    #[test]
    fn weekends_quieter() {
        let t = wikipedia_like(THREE_WEEKS, 5);
        let (mut wk, mut we) = (Vec::new(), Vec::new());
        for (i, v) in t.values.iter().enumerate() {
            if (i / 24) % 7 >= 5 {
                we.push(*v);
            } else {
                wk.push(*v);
            }
        }
        assert!(
            spotweb_linalg::vector::mean(&we) < spotweb_linalg::vector::mean(&wk),
            "weekends should be quieter"
        );
    }

    #[test]
    fn smooth_few_spikes() {
        // "Very few spikes": hour-over-hour relative jumps above 25%
        // should be rare (< 1% of transitions).
        let t = wikipedia_like(THREE_WEEKS, 6);
        let jumps = t
            .values
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() / w[0].max(1.0) > 0.25)
            .count();
        assert!(
            (jumps as f64) < 0.01 * t.len() as f64,
            "{jumps} large jumps in {} transitions",
            t.len() - 1
        );
    }

    #[test]
    fn growth_trend_present() {
        let t = wikipedia_like(THREE_WEEKS, 7);
        let first_week = t.slice(0, 7 * 24).mean();
        let last_week = t.slice(14 * 24, 21 * 24).mean();
        assert!(last_week > first_week, "growth should raise later weeks");
    }
}
