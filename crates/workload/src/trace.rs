//! The workload-trace container.

/// A request-rate time series with a fixed sampling interval.
///
/// Values are arrival rates in requests/second, sampled every
/// `interval_secs`. The paper's traces are hourly over three weeks
/// (504 points); generators in this crate follow that convention by
/// default but any interval works.
///
/// ```
/// use spotweb_workload::Trace;
///
/// let t = Trace::new(3600.0, vec![100.0, 200.0, 150.0]);
/// assert_eq!(t.peak(), 200.0);
/// assert_eq!(t.rate_at(1800.0), 150.0); // linear interpolation
/// assert_eq!(t.with_mean(300.0).mean(), 300.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Sampling interval in seconds.
    pub interval_secs: f64,
    /// Arrival rate (req/s) per interval.
    pub values: Vec<f64>,
}

impl Trace {
    /// Build a trace, validating non-negativity.
    ///
    /// # Panics
    /// Panics if `interval_secs <= 0` or any value is negative/NaN.
    pub fn new(interval_secs: f64, values: Vec<f64>) -> Self {
        assert!(interval_secs > 0.0, "interval must be positive");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "rates must be finite and non-negative"
        );
        Trace {
            interval_secs,
            values,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.interval_secs * self.len() as f64
    }

    /// Value at sample `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Rate at an arbitrary time offset (piecewise-linear interpolation,
    /// clamped at the ends) — what the discrete-event simulator samples.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let pos = (t_secs / self.interval_secs).max(0.0);
        let i = pos.floor() as usize;
        if i + 1 >= self.len() {
            return *self.values.last().expect("non-empty checked above");
        }
        let w = pos - i as f64;
        self.values[i] * (1.0 - w) + self.values[i + 1] * w
    }

    /// Sub-trace `[start, end)` by sample index.
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        Trace {
            interval_secs: self.interval_secs,
            values: self.values[start..end].to_vec(),
        }
    }

    /// Peak rate.
    pub fn peak(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(*v))
    }

    /// Mean rate.
    pub fn mean(&self) -> f64 {
        spotweb_linalg::vector::mean(&self.values)
    }

    /// Scale all rates by a factor (e.g. to re-base a trace to a target
    /// mean load).
    pub fn scaled(&self, factor: f64) -> Trace {
        assert!(factor >= 0.0);
        Trace {
            interval_secs: self.interval_secs,
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Rescale so the trace's mean equals `target_mean`.
    pub fn with_mean(&self, target_mean: f64) -> Trace {
        let m = self.mean();
        if m == 0.0 {
            return self.clone();
        }
        self.scaled(target_mean / m)
    }

    /// Downsample by integer factor `k` (mean of each bucket).
    pub fn downsample(&self, k: usize) -> Trace {
        assert!(k >= 1);
        let values = self
            .values
            .chunks(k)
            .map(spotweb_linalg::vector::mean)
            .collect();
        Trace {
            interval_secs: self.interval_secs * k as f64,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let t = Trace::new(3600.0, vec![1.0, 2.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.duration_secs(), 7200.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        Trace::new(1.0, vec![-1.0]);
    }

    #[test]
    fn rate_at_interpolates() {
        let t = Trace::new(10.0, vec![0.0, 10.0, 20.0]);
        assert_eq!(t.rate_at(0.0), 0.0);
        assert_eq!(t.rate_at(5.0), 5.0);
        assert_eq!(t.rate_at(10.0), 10.0);
        assert_eq!(t.rate_at(1000.0), 20.0); // clamped
    }

    #[test]
    fn slice_and_peak() {
        let t = Trace::new(1.0, vec![1.0, 5.0, 3.0, 2.0]);
        let s = t.slice(1, 3);
        assert_eq!(s.values, vec![5.0, 3.0]);
        assert_eq!(t.peak(), 5.0);
        assert_eq!(t.mean(), 2.75);
    }

    #[test]
    fn with_mean_rescales() {
        let t = Trace::new(1.0, vec![1.0, 3.0]).with_mean(10.0);
        assert!((t.mean() - 10.0).abs() < 1e-12);
        assert!((t.values[1] / t.values[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_means_buckets() {
        let t = Trace::new(1.0, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = t.downsample(2);
        assert_eq!(d.values, vec![2.0, 6.0, 9.0]);
        assert_eq!(d.interval_secs, 2.0);
    }

    #[test]
    fn empty_trace_rate_is_zero() {
        let t = Trace::new(1.0, vec![]);
        assert_eq!(t.rate_at(5.0), 0.0);
        assert!(t.is_empty());
    }
}
