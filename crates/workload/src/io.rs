//! CSV round-tripping of traces.
//!
//! The paper open-sources its workload data as CSV; this module gives
//! the same interchange surface so users can import real traces (e.g.
//! the public Wikimedia pageview dumps) or export generated ones for
//! external plotting. The format is two columns with a header:
//! `time_secs,rate_rps`.

use std::io::{BufRead, Write};

use crate::trace::Trace;

/// Error type for trace IO.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A data row failed to parse.
    Parse {
        /// 1-based line number of the bad row.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The file has fewer than 2 data rows (interval is undefined).
    TooShort,
    /// Rows are not evenly spaced in time.
    IrregularInterval {
        /// 1-based line number where the spacing broke.
        line: usize,
    },
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "io error: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            TraceIoError::TooShort => write!(f, "trace needs at least two rows"),
            TraceIoError::IrregularInterval { line } => {
                write!(f, "irregular sampling interval at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Write a trace as CSV.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "time_secs,rate_rps")?;
    for (i, v) in trace.values.iter().enumerate() {
        writeln!(w, "{},{}", i as f64 * trace.interval_secs, v)?;
    }
    Ok(())
}

/// Read a trace from CSV (format produced by [`write_csv`]).
pub fn read_csv<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut times = Vec::new();
    let mut values = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if lineno == 0 || line.is_empty() {
            continue; // header / trailing newline
        }
        let mut parts = line.split(',');
        let t: f64 = parts
            .next()
            .ok_or_else(|| TraceIoError::Parse {
                line: lineno + 1,
                reason: "missing time column".into(),
            })?
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse {
                line: lineno + 1,
                reason: format!("bad time: {e}"),
            })?;
        let v: f64 = parts
            .next()
            .ok_or_else(|| TraceIoError::Parse {
                line: lineno + 1,
                reason: "missing rate column".into(),
            })?
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse {
                line: lineno + 1,
                reason: format!("bad rate: {e}"),
            })?;
        if !v.is_finite() || v < 0.0 {
            return Err(TraceIoError::Parse {
                line: lineno + 1,
                reason: "rate must be finite and non-negative".into(),
            });
        }
        times.push(t);
        values.push(v);
    }
    if times.len() < 2 {
        return Err(TraceIoError::TooShort);
    }
    let interval = times[1] - times[0];
    if interval <= 0.0 {
        return Err(TraceIoError::IrregularInterval { line: 3 });
    }
    for (i, w) in times.windows(2).enumerate() {
        if ((w[1] - w[0]) - interval).abs() > 1e-6 * interval.max(1.0) {
            return Err(TraceIoError::IrregularInterval { line: i + 3 });
        }
    }
    Ok(Trace::new(interval, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = crate::wikipedia::wikipedia_like(48, 1);
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.interval_secs, t.interval_secs);
        assert_eq!(back.len(), t.len());
        for (a, b) in back.values.iter().zip(&t.values) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_garbage() {
        let data = "time_secs,rate_rps\n0,100\n3600,not_a_number\n";
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(TraceIoError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_short() {
        let data = "time_secs,rate_rps\n0,100\n";
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(TraceIoError::TooShort)
        ));
    }

    #[test]
    fn rejects_irregular() {
        let data = "time_secs,rate_rps\n0,1\n10,2\n25,3\n";
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(TraceIoError::IrregularInterval { .. })
        ));
    }

    #[test]
    fn rejects_negative_rate() {
        let data = "time_secs,rate_rps\n0,1\n10,-2\n";
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(TraceIoError::Parse { .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let data = "time_secs,rate_rps\n0,1\n10,2\n\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }
}
