//! Counter-based, draw-order-free random number generation.
//!
//! The sharded simulator (ISSUE 10) needs any time window's arrivals
//! to be generatable without simulating the windows before it. A
//! stateful sequential generator (`ChaCha8Rng`) cannot do that: draw
//! `n` depends on having made draws `0..n`. This module provides the
//! replacement — a *pure function* of `(seed, stream, counter)`:
//!
//! ```text
//! sample(seed, stream, counter) -> u64
//! ```
//!
//! There is no draw order. Querying `(s, c)` pairs in any permutation
//! yields the same values, so per-window shards generate their slices
//! of the arrival process independently and the merged run is
//! byte-identical to the serial one (`tests/shard.rs` locks this in).
//!
//! # Construction
//!
//! splitmix64-style: the `(seed, stream)` pair is compressed into a
//! per-stream key by one finalizer round, and each counter draw is a
//! second finalizer round over `key + counter * GAMMA` — the same
//! shape as splitmix64's `mix(state + n * GAMMA)` sequence, which
//! passes BigCrush. Two multiplies and three xor-shifts per draw; no
//! buffer, no state, `Copy` everywhere.
//!
//! # Stream registry
//!
//! Streams are keyed as `stream_id(domain, index)`. Domains partition
//! the keyspace per use site so independent draws can never collide;
//! the registry below is the single source of truth:
//!
//! | domain | consumer | index | counter |
//! |---|---|---|---|
//! | [`DOMAIN_ARRIVAL_GAP`] | `sim::runner` inter-arrival gaps | decision interval | arrival ordinal in window |
//! | [`DOMAIN_ARRIVAL_SESSION`] | `sim::runner` session ids | decision interval | arrival ordinal in window |
//! | [`DOMAIN_FAULT_COIN`] | `sim::faults` `FaultPlan::compile` | random-fault ordinal | firing-window ordinal |
//! | [`DOMAIN_SCENARIO_GAP`] | `sim::{faults,scenario}` cluster scenarios | 0 | request ordinal |
//! | [`DOMAIN_NOISE`] | `workload` AR(1) noise | 0 | hour |
//! | [`DOMAIN_BUMP`] | `workload::wikipedia` news bumps | 0 | hour |
//! | [`DOMAIN_SPIKE_OCCUR`] | `workload::spikes` occurrence coins | 0 | sample |
//! | [`DOMAIN_SPIKE_MAG`] | `workload::spikes` magnitudes | 0 | sample |
//! | [`DOMAIN_SPIKE_RAMP`] | `workload::spikes` ramp lengths | 0 | sample |
//! | [`DOMAIN_SPIKE_HALF`] | `workload::spikes` decay half-lives | 0 | sample |
//!
//! # Reference values
//!
//! The generator is part of the golden-fixture contract (arrival
//! processes derive from it), so its outputs are pinned:
//!
//! ```
//! use spotweb_workload::rng::sample;
//! assert_eq!(sample(0, 0, 0), 0xc742_1349_0448_6fe2);
//! assert_eq!(sample(0, 0, 1), 0x668a_e934_cfa5_edc8);
//! assert_eq!(sample(0, 1, 0), 0x3e21_3028_a1d0_978f);
//! assert_eq!(sample(1, 0, 0), 0xcf52_bc59_cd06_25b4);
//! assert_eq!(sample(1234, 42, 7), 0x609b_7908_07b8_f8cf);
//! ```

/// splitmix64 finalizer: invertible 64-bit mix with full avalanche.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Golden-ratio increment (splitmix64's GAMMA): consecutive counters
/// land `GAMMA` apart in state space before the finalizer scrambles
/// them.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain tag baked into every stream key so a `(seed, stream)` pair
/// here can never alias a raw splitmix64 sequence of the same seed.
const STREAM_TAG: u64 = 0x5354_5245_414D_3634; // "STREAM64"

/// `sim::runner` inter-arrival gaps; index = decision interval.
pub const DOMAIN_ARRIVAL_GAP: u64 = 0;
/// `sim::runner` session-id draws; index = decision interval.
pub const DOMAIN_ARRIVAL_SESSION: u64 = 1;
/// `sim::faults::FaultPlan::compile` coin tosses; index = random-fault
/// ordinal, counter = firing-window ordinal.
pub const DOMAIN_FAULT_COIN: u64 = 2;
/// Cluster-scenario arrival gaps (`ChaosScenario`,
/// `FailoverScenario`); counter = request ordinal.
pub const DOMAIN_SCENARIO_GAP: u64 = 3;
/// Workload-generator AR(1) noise; counter = hour.
pub const DOMAIN_NOISE: u64 = 4;
/// Wikipedia news-bump coins; counter = hour.
pub const DOMAIN_BUMP: u64 = 5;
/// Spike occurrence coins; counter = sample index.
pub const DOMAIN_SPIKE_OCCUR: u64 = 6;
/// Spike magnitudes; counter = sample index.
pub const DOMAIN_SPIKE_MAG: u64 = 7;
/// Spike ramp lengths; counter = sample index.
pub const DOMAIN_SPIKE_RAMP: u64 = 8;
/// Spike decay half-lives; counter = sample index.
pub const DOMAIN_SPIKE_HALF: u64 = 9;

/// Build a stream id from a domain tag (one of the `DOMAIN_*`
/// constants, `< 16`) and a per-domain index (interval number, fault
/// ordinal, …).
#[inline]
pub fn stream_id(domain: u64, index: u64) -> u64 {
    debug_assert!(domain < 16, "domain tags are 4 bits");
    (index << 4) | (domain & 0xF)
}

/// The counter-based generator: a pure function of its three inputs.
/// Equal inputs give equal outputs on every platform, in any query
/// order, from any thread.
#[inline]
pub fn sample(seed: u64, stream: u64, counter: u64) -> u64 {
    CounterStream::new(seed, stream).u64_at(counter)
}

/// One `(seed, stream)` slice of the generator with the stream key
/// pre-mixed, so per-draw cost is a single finalizer round. `Copy` and
/// stateless — `u64_at` takes `&self`, and any permutation of counters
/// yields the same values.
#[derive(Debug, Clone, Copy)]
pub struct CounterStream {
    key: u64,
}

impl CounterStream {
    /// Derive the stream key for `(seed, stream)`.
    #[inline]
    pub fn new(seed: u64, stream: u64) -> Self {
        CounterStream {
            key: mix(seed ^ mix(stream.wrapping_mul(GAMMA) ^ STREAM_TAG)),
        }
    }

    /// Draw `counter`'s 64 uniform bits.
    #[inline]
    pub fn u64_at(&self, counter: u64) -> u64 {
        mix(self.key.wrapping_add(counter.wrapping_mul(GAMMA)))
    }

    /// Draw `counter`'s uniform `f64` in `[0, 1)` (53 mantissa bits,
    /// the same conversion the vendored `rand` shim uses).
    #[inline]
    pub fn unit_f64_at(&self, counter: u64) -> f64 {
        (self.u64_at(counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draw `counter`'s exponential inter-arrival gap at `rate` (the
    /// same `-ln(u)/rate` transform the sequential generator applied,
    /// with the identical `f64::MIN_POSITIVE` floor).
    #[inline]
    pub fn exp_at(&self, counter: u64, rate: f64) -> f64 {
        let u = self.unit_f64_at(counter).max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    /// Draw `counter`'s integer in `[0, n)`. Plain modulo: the bias is
    /// `O(n / 2^64)` — unobservable for session counts — and the
    /// mapping stays a pure function of the inputs, which is the
    /// property the sharded loop needs.
    #[inline]
    pub fn range_at(&self, counter: u64, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        self.u64_at(counter) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_are_pinned() {
        // Documented in the module docs; a change here is a change to
        // every golden fixture and must go through `figures bless`.
        assert_eq!(sample(0, 0, 0), 0xc742_1349_0448_6fe2);
        assert_eq!(sample(0, 0, 1), 0x668a_e934_cfa5_edc8);
        assert_eq!(sample(0, 1, 0), 0x3e21_3028_a1d0_978f);
        assert_eq!(sample(1, 0, 0), 0xcf52_bc59_cd06_25b4);
        assert_eq!(sample(1234, 42, 7), 0x609b_7908_07b8_f8cf);
    }

    #[test]
    fn draw_order_free() {
        let queries: Vec<(u64, u64)> = (0..8).flat_map(|s| (0..8).map(move |c| (s, c))).collect();
        let forward: Vec<u64> = queries.iter().map(|&(s, c)| sample(9, s, c)).collect();
        let backward: Vec<u64> = queries
            .iter()
            .rev()
            .map(|&(s, c)| sample(9, s, c))
            .collect();
        let mut backward_rev = backward;
        backward_rev.reverse();
        assert_eq!(forward, backward_rev);
    }

    #[test]
    fn streams_and_seeds_decorrelate() {
        let a: Vec<u64> = (0..64).map(|c| sample(1, 0, c)).collect();
        let b: Vec<u64> = (0..64).map(|c| sample(1, 1, c)).collect();
        let c: Vec<u64> = (0..64).map(|c| sample(2, 0, c)).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        let collisions = a.iter().filter(|v| b.contains(v)).count();
        assert_eq!(collisions, 0, "64-draw prefixes must not collide");
    }

    #[test]
    fn unit_f64_in_range_and_exp_positive() {
        let s = CounterStream::new(7, stream_id(DOMAIN_ARRIVAL_GAP, 3));
        for c in 0..1000 {
            let u = s.unit_f64_at(c);
            assert!((0.0..1.0).contains(&u), "u {u}");
            assert!(s.exp_at(c, 100.0) > 0.0);
        }
    }

    #[test]
    fn range_at_covers_and_bounds() {
        let s = CounterStream::new(3, stream_id(DOMAIN_ARRIVAL_SESSION, 0));
        let mut seen = [false; 8];
        for c in 0..256 {
            let v = s.range_at(c, 8) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues reachable");
    }

    #[test]
    fn stream_id_separates_domains_and_indices() {
        assert_ne!(
            stream_id(DOMAIN_ARRIVAL_GAP, 1),
            stream_id(DOMAIN_ARRIVAL_SESSION, 1)
        );
        assert_ne!(
            stream_id(DOMAIN_ARRIVAL_GAP, 1),
            stream_id(DOMAIN_ARRIVAL_GAP, 2)
        );
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let s = CounterStream::new(11, stream_id(DOMAIN_NOISE, 0));
        let n = 4096;
        let mean: f64 = (0..n).map(|c| s.unit_f64_at(c)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
