//! Video-on-Demand (TV4-like) workload generator.
//!
//! The paper's second trace comes from TV4, a Swedish VoD provider:
//! strongly evening-skewed diurnal demand (prime time ~20:00–22:00
//! local), near-idle early mornings, and "multiple, hard to predict
//! spikes" — premieres and sports events that multiply load within an
//! hour. That spikiness is what limits SpotWeb's savings to ~25% on
//! this trace (vs ~50% on Wikipedia), so the generator makes it a
//! first-class parameter.

use crate::rng::{stream_id, CounterStream, DOMAIN_NOISE};
use crate::spikes::{inject_spikes, random_spikes};
use crate::trace::Trace;

/// Parameters of the VoD generator.
#[derive(Debug, Clone)]
pub struct VodParams {
    /// Mean request rate (req/s).
    pub mean_rate: f64,
    /// Prime-time concentration: peak-hour demand as a multiple of the
    /// daily mean (2.2 ≈ strongly evening-skewed).
    pub prime_time_boost: f64,
    /// Night floor as a fraction of the mean.
    pub night_floor: f64,
    /// Weekend evenings are busier by this fraction.
    pub weekend_boost: f64,
    /// AR(1) noise standard deviation.
    pub noise_sd: f64,
    /// AR(1) noise persistence.
    pub noise_phi: f64,
    /// Flash-spike arrival rate per hour.
    pub spike_rate: f64,
    /// Flash-spike magnitude range (multiples of current level).
    pub spike_magnitude: (f64, f64),
}

impl Default for VodParams {
    fn default() -> Self {
        VodParams {
            mean_rate: 1500.0,
            prime_time_boost: 2.2,
            night_floor: 0.15,
            weekend_boost: 0.2,
            noise_sd: 0.05,
            noise_phi: 0.5,
            spike_rate: 0.008, // ≈ 4 spikes per three-week trace
            spike_magnitude: (0.8, 2.5),
        }
    }
}

/// Generate an hourly VoD-like trace of `hours` samples.
pub fn vod_like(hours: usize, seed: u64) -> Trace {
    vod_with(hours, seed, &VodParams::default())
}

/// Generate with explicit parameters.
pub fn vod_with(hours: usize, seed: u64, p: &VodParams) -> Trace {
    // Counter-based draws keyed by hour (see `crate::rng`).
    let noise_draws = CounterStream::new(seed, stream_id(DOMAIN_NOISE, 0));
    let mut noise = 0.0_f64;
    let mut values = Vec::with_capacity(hours);
    for h in 0..hours {
        let hod = (h % 24) as f64;
        let day = h / 24;
        // Evening-skewed shape: Gaussian bump centered at 21:00 with a
        // shoulder from ~18:00, floored at `night_floor`.
        let prime = (-((hod - 21.0) * (hod - 21.0)) / (2.0 * 3.0 * 3.0)).exp();
        let shoulder = (-((hod - 18.0) * (hod - 18.0)) / (2.0 * 4.0 * 4.0)).exp();
        let mut shape =
            p.night_floor + (p.prime_time_boost - p.night_floor) * prime.max(0.6 * shoulder);
        if day % 7 >= 5 && (18.0..=23.0).contains(&hod) {
            shape *= 1.0 + p.weekend_boost;
        }
        let eps: f64 = noise_draws.unit_f64_at(h as u64) * 2.0 - 1.0;
        noise = p.noise_phi * noise + p.noise_sd * eps;
        values.push((p.mean_rate * shape * (1.0 + noise)).max(0.0));
    }
    let base = Trace::new(3600.0, values);
    // Inject hard-to-predict flash spikes with an independent stream.
    let spikes = random_spikes(
        hours,
        p.spike_rate,
        p.spike_magnitude.0,
        p.spike_magnitude.1,
        seed.wrapping_add(0x51CE5),
    );
    let spiked = inject_spikes(&base, &spikes);
    // Re-center on the requested mean (spikes raise it slightly).
    spiked.with_mean(p.mean_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    const THREE_WEEKS: usize = 21 * 24;

    #[test]
    fn deterministic() {
        assert_eq!(
            vod_like(THREE_WEEKS, 1).values,
            vod_like(THREE_WEEKS, 1).values
        );
        assert_ne!(
            vod_like(THREE_WEEKS, 1).values,
            vod_like(THREE_WEEKS, 2).values
        );
    }

    #[test]
    fn prime_time_dominates() {
        let t = vod_like(THREE_WEEKS, 3);
        let avg_at = |hod: usize| {
            let vals: Vec<f64> = t
                .values
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 24 == hod)
                .map(|(_, v)| *v)
                .collect();
            spotweb_linalg::vector::mean(&vals)
        };
        assert!(avg_at(21) > 3.0 * avg_at(4), "prime time must dwarf night");
    }

    #[test]
    fn has_multiple_hard_spikes() {
        // The defining property vs Wikipedia: several >50% hour-over-hour
        // jumps across three weeks. (Seed picked for a typical draw of
        // the counter-based generator; most seeds yield 2–7 jumps.)
        let t = vod_like(THREE_WEEKS, 3);
        let jumps = t
            .values
            .windows(2)
            .filter(|w| w[1] > 1.5 * w[0].max(1.0))
            .count();
        assert!(jumps >= 2, "expected multiple spikes, got {jumps}");
    }

    #[test]
    fn spikier_than_wikipedia() {
        let wiki = crate::wikipedia::wikipedia_like(THREE_WEEKS, 5);
        let vod = vod_like(THREE_WEEKS, 5);
        let spike_count = |t: &Trace| {
            t.values
                .windows(2)
                .filter(|w| (w[1] - w[0]).abs() > 0.4 * w[0].max(1.0))
                .count()
        };
        assert!(spike_count(&vod) > spike_count(&wiki));
    }

    #[test]
    fn mean_near_target() {
        let t = vod_like(THREE_WEEKS, 6);
        assert!(
            (t.mean() - 1500.0).abs() / 1500.0 < 0.05,
            "mean {}",
            t.mean()
        );
    }

    #[test]
    fn custom_params_respected() {
        let p = VodParams {
            spike_rate: 0.0,
            noise_sd: 0.0,
            ..VodParams::default()
        };
        let t = vod_with(48, 7, &p);
        // Without spikes/noise two identical days repeat exactly.
        for h in 0..24 {
            assert!((t.values[h] - t.values[h + 24]).abs() < 1e-9);
        }
    }
}
