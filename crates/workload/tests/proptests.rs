//! Property tests on the workload generators and trace utilities.

use proptest::prelude::*;
use spotweb_workload::io::{read_csv, write_csv};
use spotweb_workload::spikes::{inject_spikes, random_spikes};
use spotweb_workload::{vod_like, wikipedia_like};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generators produce finite, non-negative traces of the requested
    /// length, deterministically per seed.
    #[test]
    fn generators_are_sane(hours in 24usize..600, seed in 0u64..10_000) {
        for t in [wikipedia_like(hours, seed), vod_like(hours, seed)] {
            prop_assert_eq!(t.len(), hours);
            prop_assert!(t.values.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        prop_assert_eq!(wikipedia_like(hours, seed).values, wikipedia_like(hours, seed).values);
        prop_assert_eq!(vod_like(hours, seed).values, vod_like(hours, seed).values);
    }

    /// Rescaling hits the target mean exactly and preserves shape.
    #[test]
    fn with_mean_is_exact(hours in 24usize..300, seed in 0u64..10_000, target in 1.0f64..1e6) {
        let t = wikipedia_like(hours, seed);
        let scaled = t.with_mean(target);
        prop_assert!((scaled.mean() - target).abs() < 1e-6 * target);
        // Shape preserved: ratios between samples unchanged.
        let r_orig = t.values[1] / t.values[0].max(1e-12);
        let r_scaled = scaled.values[1] / scaled.values[0].max(1e-12);
        prop_assert!((r_orig - r_scaled).abs() < 1e-9 * (1.0 + r_orig.abs()));
    }

    /// Spike injection only ever raises the trace.
    #[test]
    fn spikes_only_add(len in 10usize..200, seed in 0u64..10_000) {
        let base = wikipedia_like(len, seed);
        let spikes = random_spikes(len, 0.05, 0.5, 3.0, seed);
        let spiked = inject_spikes(&base, &spikes);
        for (s, b) in spiked.values.iter().zip(&base.values) {
            prop_assert!(s + 1e-9 >= *b);
        }
    }

    /// CSV round trip is lossless (to printed precision).
    #[test]
    fn csv_round_trip(hours in 2usize..200, seed in 0u64..10_000) {
        let t = vod_like(hours, seed);
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for (a, b) in back.values.iter().zip(&t.values) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Downsampling preserves the overall mean.
    #[test]
    fn downsample_preserves_mean(hours in 24usize..240, seed in 0u64..10_000, k in 1usize..6) {
        let t = wikipedia_like(hours - hours % k, seed);
        if t.is_empty() { return Ok(()); }
        let d = t.downsample(k);
        prop_assert!((d.mean() - t.mean()).abs() < 1e-6 * t.mean().max(1.0));
    }

    /// rate_at interpolation is bounded by neighbouring samples.
    #[test]
    fn rate_at_within_neighbours(seed in 0u64..10_000, frac in 0.0f64..1.0) {
        let t = wikipedia_like(48, seed);
        let i = 10;
        let time = (i as f64 + frac) * t.interval_secs;
        let r = t.rate_at(time);
        let lo = t.values[i].min(t.values[i + 1]);
        let hi = t.values[i].max(t.values[i + 1]);
        prop_assert!(r >= lo - 1e-9 && r <= hi + 1e-9);
    }
}
