//! Streaming metrics registry: counters, gauges, and histograms keyed
//! by name, with deterministic Prometheus-style text exposition.
//!
//! `BTreeMap` keys give a stable iteration order, so two runs with
//! the same seed render byte-identical dumps.

use std::collections::BTreeMap;

use crate::hist::StreamingHistogram;
use crate::json::json_f64;

/// Format a number for Prometheus exposition: canonical shortest
/// round-trip, `NaN` spelled out (Prometheus accepts it, JSON does not).
fn prom_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        json_f64(x)
    }
}

/// A registry of named counters, gauges, and streaming histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, StreamingHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (created at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Fold a sample into the named histogram (default latency layout).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Access a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&StreamingHistogram> {
        self.histograms.get(name)
    }

    /// Install `h` as the histogram for `name`, replacing any previous
    /// state. Used by the sink's interned fast path, whose dedicated
    /// slot is the authoritative accumulator for the name: reads clone
    /// the slot in wholesale rather than merging partial deltas, which
    /// keeps the floating-point `sum` identical to sequential
    /// recording.
    pub fn histogram_set(&mut self, name: &str, h: StreamingHistogram) {
        match self.histograms.get_mut(name) {
            Some(slot) => *slot = h,
            None => {
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Render every metric in Prometheus text exposition format.
    /// Histograms render as summaries with p50/p90/p99 quantiles.
    /// Output is deterministic: names sort lexicographically and all
    /// numbers use canonical shortest round-trip formatting.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", prom_f64(*v)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, p) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{q}\"}} {}\n",
                    prom_f64(h.percentile(p))
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", prom_f64(h.sum())));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.counter_add("spotweb_served_total", 3);
        m.counter_add("spotweb_served_total", 2);
        assert_eq!(m.counter("spotweb_served_total"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn exposition_is_sorted_and_canonical() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b_total", 1);
        m.counter_add("a_total", 2);
        m.gauge_set("fleet_size", 6.0);
        m.observe("latency_seconds", 0.25);
        let text = m.render_prometheus();
        let a = text.find("a_total 2").unwrap();
        let b = text.find("b_total 1").unwrap();
        assert!(a < b, "counters must sort by name");
        assert!(text.contains("fleet_size 6.0"));
        assert!(text.contains("latency_seconds_count 1"));
        assert!(text.contains("latency_seconds{quantile=\"0.5\"} 0.25"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, m.render_prometheus());
    }
}
