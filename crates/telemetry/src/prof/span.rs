//! Scoped span profiler: RAII guards, per-thread span trees, lock-wait
//! timers, and global session control.
//!
//! A profiling *session* is started with [`begin`] and ended with
//! [`Session::finish`], which returns the collected
//! [`crate::prof::report::Profile`]. While a session is
//! active, every [`scope!`](crate::prof_scope) guard records into a
//! tree local to its thread; a thread's tree is flushed into the
//! session when the thread exits, when it calls [`flush_thread`]
//! explicitly, or, for the session-owning thread, when `finish` is
//! called. Pool/scoped workers must call [`flush_thread`] at the end
//! of their closure: `std::thread::scope` only waits for closures to
//! return, so the thread-exit flush (a TLS destructor) can still be
//! pending when `finish` drains the session. Threads un-flushed at
//! `finish` time are not included.
//!
//! Sessions are serialized process-wide by an internal mutex, so
//! concurrent tests cannot bleed spans into each other's profiles.
//!
//! ```
//! use spotweb_telemetry::prof;
//!
//! let session = prof::begin();
//! {
//!     prof::scope!("demo.outer");
//!     {
//!         prof::scope!("demo.inner");
//!     }
//! }
//! let profile = session.finish();
//! let merged = profile.merged();
//! assert_eq!(merged.children.len(), 1);
//! assert_eq!(merged.children[0].name, "demo.outer");
//! assert_eq!(merged.children[0].children[0].name, "demo.inner");
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use super::alloc as prof_alloc;
use super::report::{Profile, SpanNode, SpanTree};

/// Fast path: is a session active? One relaxed load per guard.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Session generation counter; thread-local trees left over from an
/// earlier session are discarded when the epoch has moved on.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Trees flushed by exited threads, drained by [`Session::finish`].
static REGISTRY: Mutex<Vec<SpanTree>> = Mutex::new(Vec::new());
/// Serializes sessions process-wide (held for the session lifetime).
static SESSION: Mutex<()> = Mutex::new(());

/// Lock a static mutex, recovering from poisoning: the data these
/// mutexes guard (profile trees, the session token) stays structurally
/// valid even if a holder panicked.
fn lock_recover<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One open scope on a thread's span stack.
struct Frame {
    /// Index of the node this frame accumulates into.
    node: usize,
    /// Wall-clock entry time.
    started: Instant,
    /// Cumulative allocated-bytes counter at entry (0 without the
    /// `prof-alloc` feature).
    alloc_bytes0: u64,
    /// Cumulative allocation-call counter at entry.
    alloc_calls0: u64,
}

/// Per-thread profiling state: a node arena (index 0 is the synthetic
/// root) plus the stack of open frames.
struct Local {
    epoch: u64,
    label: String,
    nodes: Vec<SpanNode>,
    stack: Vec<Frame>,
}

impl Local {
    fn new(epoch: u64) -> Local {
        Local {
            epoch,
            label: "main".to_string(),
            nodes: vec![SpanNode::new("")],
            stack: Vec::new(),
        }
    }

    /// Find or create the child of `parent` with the given name.
    /// Children are kept in first-entry order here; deterministic
    /// ordering is imposed at merge time (sorted by name).
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        let found = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| std::ptr::eq(self.nodes[c].name, name) || self.nodes[c].name == name);
        match found {
            Some(c) => c,
            None => {
                let c = self.nodes.len();
                self.nodes.push(SpanNode::new(name));
                self.nodes[parent].children.push(c);
                c
            }
        }
    }

    /// True if anything was recorded (spans entered or lock waits
    /// attributed to the root).
    fn has_data(&self) -> bool {
        self.nodes.len() > 1 || self.nodes[0].lock_waits > 0
    }

    fn into_tree(self) -> SpanTree {
        SpanTree {
            label: self.label,
            nodes: self.nodes,
        }
    }
}

/// Wrapper whose `Drop` flushes the thread's tree into the global
/// registry when the thread exits mid-session (the normal path for
/// `thread::scope` workers).
struct LocalSlot(Option<Local>);

impl Drop for LocalSlot {
    fn drop(&mut self) {
        flush_slot(&mut self.0);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSlot> = const { RefCell::new(LocalSlot(None)) };
}

/// Push a thread's tree into the registry if it belongs to the live
/// session and recorded anything.
fn flush_slot(slot: &mut Option<Local>) {
    if let Some(local) = slot.take() {
        if local.epoch == EPOCH.load(Ordering::Acquire) && local.has_data() {
            lock_recover(&REGISTRY).push(local.into_tree());
        }
    }
}

/// Run `f` against this thread's `Local` for the current epoch,
/// creating or resetting it as needed. No-op outside a session.
fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    let epoch = EPOCH.load(Ordering::Acquire);
    LOCAL
        .try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let reset = match slot.0.as_ref() {
                Some(local) => local.epoch != epoch,
                None => true,
            };
            if reset {
                slot.0 = Some(Local::new(epoch));
            }
            f(slot.0.as_mut().expect("local installed above"))
        })
        .ok()
}

/// Label this thread's tree in the profile (e.g. `worker-0`). The
/// default label is `main`. No-op when no session is active.
pub fn set_thread_label(label: &str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    with_local(|local| local.label = label.to_string());
}

/// Flush this thread's recorded tree into the active session now
/// rather than at thread exit. Pool and scoped workers must call this
/// as the last statement of their closure (after every guard has
/// dropped): the parent `std::thread::scope` only waits for closures
/// to return, so the TLS-destructor flush that normally runs at thread
/// exit can race [`Session::finish`] and silently drop the tree. Spans
/// still open on this thread keep their counts but lose the pending
/// elapsed time. No-op outside a session.
pub fn flush_thread() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let _ = LOCAL.try_with(|slot| flush_slot(&mut slot.borrow_mut().0));
}

/// RAII guard for one profiled scope; created by
/// [`scope!`](crate::prof_scope) (or [`ScopeGuard::enter`] directly).
/// Exit time is recorded when the guard drops. Guards are not `Send`:
/// they must drop on the thread that created them.
pub struct ScopeGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl ScopeGuard {
    /// Enter a span named `name`. When no session is active this is a
    /// single relaxed atomic load and the guard is inert.
    ///
    /// `name` must be a `'static` string — in workspace crates it must
    /// be one of the `SPAN_*` constants in [`crate::names`] (enforced
    /// for `sim`/`lb`/`core` by `spotweb-lint`).
    pub fn enter(name: &'static str) -> ScopeGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ScopeGuard {
                active: false,
                _not_send: PhantomData,
            };
        }
        let entered = with_local(|local| {
            let parent = local.stack.last().map(|f| f.node).unwrap_or(0);
            let node = local.child(parent, name);
            local.nodes[node].count += 1;
            local.stack.push(Frame {
                node,
                started: Instant::now(),
                alloc_bytes0: prof_alloc::allocated_bytes(),
                alloc_calls0: prof_alloc::alloc_calls(),
            });
        })
        .is_some();
        ScopeGuard {
            active: entered,
            _not_send: PhantomData,
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        with_local(|local| {
            // The stack can be empty if the session was finished (and
            // the tree flushed) while this guard was still open; the
            // partial span is simply not recorded.
            if let Some(frame) = local.stack.pop() {
                let elapsed = frame.started.elapsed().as_secs_f64();
                let node = &mut local.nodes[frame.node];
                node.total_secs += elapsed;
                node.alloc_bytes +=
                    prof_alloc::allocated_bytes().saturating_sub(frame.alloc_bytes0);
                node.alloc_calls += prof_alloc::alloc_calls().saturating_sub(frame.alloc_calls0);
            }
        });
    }
}

/// Measures one mutex acquisition wait; created by [`lock_timer`]
/// immediately before a `lock()` call, completed with
/// [`LockTimer::done`] immediately after the lock is held. The wait is
/// attributed to the innermost open span on this thread (or the tree
/// root when no span is open).
#[must_use = "call .done() right after the lock() call returns"]
pub struct LockTimer {
    started: Option<Instant>,
    _not_send: PhantomData<*const ()>,
}

/// Start a lock-wait timer. When no session is active this is a single
/// relaxed atomic load and [`LockTimer::done`] is a no-op.
pub fn lock_timer() -> LockTimer {
    let started = if ENABLED.load(Ordering::Relaxed) {
        Some(Instant::now())
    } else {
        None
    };
    LockTimer {
        started,
        _not_send: PhantomData,
    }
}

impl LockTimer {
    /// Record the elapsed wait into the current span.
    pub fn done(self) {
        if let Some(started) = self.started {
            let secs = started.elapsed().as_secs_f64();
            with_local(|local| {
                let node = local.stack.last().map(|f| f.node).unwrap_or(0);
                local.nodes[node].lock_waits += 1;
                local.nodes[node].lock_wait_secs += secs;
            });
        }
    }
}

/// Disables profiling when the session object drops, even on an early
/// return or panic. Declared before the mutex guard in [`Session`] so
/// it runs while the session lock is still held.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// An active profiling session; returned by [`begin`], consumed by
/// [`Session::finish`]. Holds the process-wide session lock for its
/// lifetime. Dropping a session without calling `finish` disables
/// profiling and discards the collected trees.
pub struct Session {
    _disarm: Disarm,
    _lock: MutexGuard<'static, ()>,
}

/// Start a profiling session. Blocks until any other session (e.g. in
/// a concurrently running test) has finished. Clears previously
/// collected trees, bumps the epoch so stale thread-locals reset
/// themselves, and enables recording.
pub fn begin() -> Session {
    let lock = lock_recover(&SESSION);
    lock_recover(&REGISTRY).clear();
    EPOCH.fetch_add(1, Ordering::AcqRel);
    ENABLED.store(true, Ordering::SeqCst);
    Session {
        _disarm: Disarm,
        _lock: lock,
    }
}

impl Session {
    /// Stop recording and return the collected profile: the flushed
    /// trees of every exited thread plus the calling thread's tree,
    /// sorted by thread label for stable ordering.
    pub fn finish(self) -> Profile {
        ENABLED.store(false, Ordering::SeqCst);
        LOCAL.with(|slot| flush_slot(&mut slot.borrow_mut().0));
        let mut threads: Vec<SpanTree> = std::mem::take(&mut *lock_recover(&REGISTRY));
        threads.sort_by(|a, b| a.label.cmp(&b.label));
        Profile { threads }
        // `self` drops here: Disarm re-disables (idempotent), then the
        // session lock is released.
    }
}

/// Enter a profiled scope for the rest of the enclosing block.
///
/// Expands to a `let` binding of a [`ScopeGuard`], so the span closes
/// when the block exits (RAII). When no session is active the cost is
/// one relaxed atomic load.
///
/// ```
/// use spotweb_telemetry::{names, prof};
/// fn route_once() {
///     prof::scope!(names::SPAN_LB_ROUTE);
///     // ... work measured under "lb.route" ...
/// }
/// route_once();
/// ```
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        let _prof_span_guard = $crate::prof::span::ScopeGuard::enter($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_records_nothing() {
        // No session: guard must be inert and leave no thread state
        // that the next session could pick up.
        {
            crate::prof_scope!("t.disabled");
        }
        let session = begin();
        let profile = session.finish();
        assert!(profile.threads.is_empty(), "no spans were recorded");
    }

    #[test]
    fn nesting_and_counts() {
        let session = begin();
        for _ in 0..3 {
            crate::prof_scope!("t.outer");
            for _ in 0..2 {
                crate::prof_scope!("t.inner");
                // Sibling re-entry merges into one node per name.
            }
        }
        let profile = session.finish();
        let merged = profile.merged();
        assert_eq!(merged.children.len(), 1);
        let outer = &merged.children[0];
        assert_eq!((outer.name.as_str(), outer.count), ("t.outer", 3));
        // Note: `prof_scope!` guards within one block all live to the
        // block end, so the two inner iterations nest under outer.
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.count), ("t.inner", 6));
    }

    #[test]
    fn lock_waits_attribute_to_innermost_span() {
        let m = Mutex::new(0u32);
        let session = begin();
        {
            crate::prof_scope!("t.locked");
            let timer = lock_timer();
            let _g = m.lock().expect("fresh mutex is not poisoned");
            timer.done();
        }
        // Outside any span: attributed to the root.
        let timer = lock_timer();
        let _g2 = m.lock().expect("fresh mutex is not poisoned");
        timer.done();
        drop(_g2);
        let profile = session.finish();
        let merged = profile.merged();
        let locked = merged
            .children
            .iter()
            .find(|c| c.name == "t.locked")
            .expect("span recorded");
        assert_eq!(locked.lock_waits, 1);
        assert_eq!(merged.lock_waits, 1, "root-attributed wait");
    }

    #[test]
    fn worker_threads_flush_on_exit_and_sort_by_label() {
        let session = begin();
        std::thread::scope(|s| {
            for w in (0..3).rev() {
                s.spawn(move || {
                    set_thread_label(&format!("worker-{w}"));
                    {
                        crate::prof_scope!("t.work");
                    }
                    flush_thread();
                });
            }
        });
        {
            crate::prof_scope!("t.main");
        }
        let profile = session.finish();
        let labels: Vec<&str> = profile.threads.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, ["main", "worker-0", "worker-1", "worker-2"]);
        let merged = profile.merged();
        let work = merged
            .children
            .iter()
            .find(|c| c.name == "t.work")
            .expect("worker spans merged");
        assert_eq!(work.count, 3);
    }

    #[test]
    fn sessions_are_isolated() {
        let first = begin();
        {
            crate::prof_scope!("t.first");
        }
        let p1 = first.finish();
        let second = begin();
        {
            crate::prof_scope!("t.second");
        }
        let p2 = second.finish();
        assert!(p1.merged().children.iter().any(|c| c.name == "t.first"));
        let m2 = p2.merged();
        let names: Vec<&str> = m2.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["t.second"], "no bleed from the first session");
    }
}
