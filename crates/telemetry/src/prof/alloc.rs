//! Opt-in counting global allocator (feature `prof-alloc`).
//!
//! When the feature is enabled, a binary can register
//! `CountingAlloc` as its `#[global_allocator]`; every allocation
//! then ticks four process-global counters — live bytes, peak live
//! bytes, cumulative allocated bytes, and allocation calls — which the
//! span profiler samples at scope entry/exit to attribute heap traffic
//! per span, and which the `prof-alloc` smoke test uses to assert that
//! live bytes return to baseline after a run (the seed of the ROADMAP
//! item-3 "memory is O(active sessions)" gate).
//!
//! Without the feature every accessor returns zero, nothing is
//! compiled with `unsafe`, and the crate keeps its
//! `forbid(unsafe_code)` posture (see `lib.rs`). With the feature the
//! crate drops to `deny(unsafe_code)` and this module carries the one
//! scoped `allow`: the `GlobalAlloc` impl, which only forwards to
//! [`std::alloc::System`] and ticks atomics.
//!
//! All byte figures are wall-clock-quarantine-class data: they are
//! exported only into `BENCH_profile.json`, never into deterministic
//! goldens (allocation counts of `std` internals are not part of the
//! byte-stable contract).

/// Snapshot of the process-global allocation counters. All zeros when
/// the `prof-alloc` feature is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_bytes: u64,
    /// Cumulative bytes ever allocated (monotone).
    pub allocated_bytes: u64,
    /// Cumulative allocation calls (monotone; `realloc` growth counts
    /// as one call).
    pub alloc_calls: u64,
}

/// True when the crate was built with the `prof-alloc` feature, i.e.
/// when [`stats`] can return non-zero figures (provided the binary
/// registered `CountingAlloc`).
pub const fn is_enabled() -> bool {
    cfg!(feature = "prof-alloc")
}

#[cfg(feature = "prof-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);
    static ALLOCATED: AtomicU64 = AtomicU64::new(0);
    static CALLS: AtomicU64 = AtomicU64::new(0);

    pub fn live_bytes() -> u64 {
        LIVE.load(Ordering::Relaxed)
    }
    pub fn peak_bytes() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
    pub fn allocated_bytes() -> u64 {
        ALLOCATED.load(Ordering::Relaxed)
    }
    pub fn alloc_calls() -> u64 {
        CALLS.load(Ordering::Relaxed)
    }

    fn note_alloc(n: u64) {
        CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED.fetch_add(n, Ordering::Relaxed);
        let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn note_dealloc(n: u64) {
        LIVE.fetch_sub(n, Ordering::Relaxed);
    }

    /// Counting wrapper around the system allocator; see module docs.
    pub struct CountingAlloc;

    // The one permitted unsafe surface of the workspace: a pure
    // pass-through to `System` plus relaxed atomic bookkeeping. No
    // pointer arithmetic, no thread-locals (a TLS access here could
    // recurse into the allocator), no panics.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                note_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                note_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            note_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                let old = layout.size() as u64;
                let new = new_size as u64;
                if new >= old {
                    note_alloc(new - old);
                } else {
                    note_dealloc(old - new);
                }
            }
            p
        }
    }
}

/// The counting allocator type; register it in a binary with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
/// Only available with the `prof-alloc` feature.
#[cfg(feature = "prof-alloc")]
pub use imp::CountingAlloc;

/// Bytes currently allocated and not yet freed (0 without the
/// `prof-alloc` feature or an unregistered allocator).
pub fn live_bytes() -> u64 {
    #[cfg(feature = "prof-alloc")]
    {
        imp::live_bytes()
    }
    #[cfg(not(feature = "prof-alloc"))]
    {
        0
    }
}

/// High-water mark of live bytes since process start (0 without the
/// feature).
pub fn peak_bytes() -> u64 {
    #[cfg(feature = "prof-alloc")]
    {
        imp::peak_bytes()
    }
    #[cfg(not(feature = "prof-alloc"))]
    {
        0
    }
}

/// Cumulative bytes ever allocated (0 without the feature). Sampled by
/// span guards at entry/exit; per-span deltas land in
/// `BENCH_profile.json`.
pub fn allocated_bytes() -> u64 {
    #[cfg(feature = "prof-alloc")]
    {
        imp::allocated_bytes()
    }
    #[cfg(not(feature = "prof-alloc"))]
    {
        0
    }
}

/// Cumulative allocation calls (0 without the feature).
pub fn alloc_calls() -> u64 {
    #[cfg(feature = "prof-alloc")]
    {
        imp::alloc_calls()
    }
    #[cfg(not(feature = "prof-alloc"))]
    {
        0
    }
}

/// Snapshot all four counters at once.
pub fn stats() -> AllocStats {
    AllocStats {
        live_bytes: live_bytes(),
        peak_bytes: peak_bytes(),
        allocated_bytes: allocated_bytes(),
        alloc_calls: alloc_calls(),
    }
}
