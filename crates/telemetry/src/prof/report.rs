//! Profile reports: per-thread span trees, the deterministic merged
//! tree, and the quarantined timing/byte exports.
//!
//! Two render surfaces, one per side of the quarantine boundary:
//!
//! * [`MergedNode::structure_json`] — names, nesting, call counts and
//!   lock-wait counts only. Deterministic for a deterministic run
//!   (same seed ⇒ byte-identical), so it is golden-lockable and is
//!   what `figures profile` prints to stdout.
//! * [`SpanTree::timed_json`] / [`MergedNode::timed_json`] /
//!   [`Profile::folded`] — wall-clock seconds, lock-wait seconds, and
//!   allocation figures. These are quarantined: they appear only in
//!   `BENCH_profile.json` and `flamegraph.folded`.
//!
//! All JSON is rendered through [`crate::json`] (no float `Display`
//! shortcuts, no hash-ordered collections), keeping the telemetry
//! crate's renderer obligations under `spotweb-lint`.

use crate::json::{json_f64, json_string};

/// One node of a per-thread span tree. Nodes live in the arena of
/// their [`SpanTree`]; `children` holds arena indices. Index 0 of
/// every tree is a synthetic root with an empty name that only ever
/// accumulates lock waits recorded outside any open span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (a `names::SPAN_*` constant in workspace crates).
    pub name: &'static str,
    /// Times this span was entered.
    pub count: u64,
    /// Mutex acquisitions timed under this span.
    pub lock_waits: u64,
    /// Total wall seconds spent inside this span (quarantined).
    pub total_secs: f64,
    /// Wall seconds spent waiting on mutex acquisitions (quarantined).
    pub lock_wait_secs: f64,
    /// Bytes allocated while this span was innermost (quarantined;
    /// 0 without the `prof-alloc` feature).
    pub alloc_bytes: u64,
    /// Allocation calls while this span was innermost (quarantined).
    pub alloc_calls: u64,
    /// Arena indices of child spans, in first-entry order.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// A fresh zeroed node.
    pub fn new(name: &'static str) -> SpanNode {
        SpanNode {
            name,
            count: 0,
            lock_waits: 0,
            total_secs: 0.0,
            lock_wait_secs: 0.0,
            alloc_bytes: 0,
            alloc_calls: 0,
            children: Vec::new(),
        }
    }
}

/// The span tree recorded by one thread during a session.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// Thread label (`main`, or whatever the thread passed to
    /// [`crate::prof::span::set_thread_label`], e.g. `worker-2`).
    pub label: String,
    /// Node arena; index 0 is the synthetic root.
    pub nodes: Vec<SpanNode>,
}

impl SpanTree {
    /// Quarantined per-thread JSON: full figures (seconds, bytes),
    /// children sorted by name. For `BENCH_profile.json` only.
    pub fn timed_json(&self) -> String {
        let spans = merge_trees(std::slice::from_ref(self));
        format!(
            "{{\"label\":{},\"spans\":{}}}",
            json_string(&self.label),
            spans.timed_json()
        )
    }
}

/// A name-merged span node: the union of every thread's tree (or a
/// single thread's), children sorted by name, counts and times summed.
/// Produced by [`Profile::merged`].
#[derive(Debug, Clone, PartialEq)]
pub struct MergedNode {
    /// Span name; the root of a merged tree has the empty name.
    pub name: String,
    /// Summed entry count across merged trees.
    pub count: u64,
    /// Summed lock-wait count.
    pub lock_waits: u64,
    /// Summed wall seconds (quarantined).
    pub total_secs: f64,
    /// Summed lock-wait seconds (quarantined).
    pub lock_wait_secs: f64,
    /// Summed allocated bytes (quarantined).
    pub alloc_bytes: u64,
    /// Summed allocation calls (quarantined).
    pub alloc_calls: u64,
    /// Children sorted by name (recursively).
    pub children: Vec<MergedNode>,
}

impl MergedNode {
    fn new(name: &str) -> MergedNode {
        MergedNode {
            name: name.to_string(),
            count: 0,
            lock_waits: 0,
            total_secs: 0.0,
            lock_wait_secs: 0.0,
            alloc_bytes: 0,
            alloc_calls: 0,
            children: Vec::new(),
        }
    }

    fn absorb(&mut self, tree: &SpanTree, node: usize) {
        let n = &tree.nodes[node];
        self.count += n.count;
        self.lock_waits += n.lock_waits;
        self.total_secs += n.total_secs;
        self.lock_wait_secs += n.lock_wait_secs;
        self.alloc_bytes += n.alloc_bytes;
        self.alloc_calls += n.alloc_calls;
        for &c in &n.children {
            let name = tree.nodes[c].name;
            let child = match self.children.iter_mut().find(|m| m.name == name) {
                Some(existing) => existing,
                None => {
                    self.children.push(MergedNode::new(name));
                    self.children.last_mut().expect("pushed above")
                }
            };
            child.absorb(tree, c);
        }
    }

    fn sort_recursive(&mut self) {
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in &mut self.children {
            c.sort_recursive();
        }
    }

    /// Wall seconds spent in this span but not in any child span.
    /// Clamped at zero (children measured on other threads can sum
    /// past a parent measured on one).
    pub fn self_secs(&self) -> f64 {
        let child_total: f64 = self.children.iter().map(|c| c.total_secs).sum();
        (self.total_secs - child_total).max(0.0)
    }

    /// Deterministic structure-only JSON: name, count, lock-wait
    /// count, children — no seconds, no bytes. Byte-identical across
    /// runs of the same deterministic workload; golden-lockable.
    pub fn structure_json(&self) -> String {
        let children: Vec<String> = self.children.iter().map(|c| c.structure_json()).collect();
        format!(
            "{{\"name\":{},\"count\":{},\"lock_waits\":{},\"children\":[{}]}}",
            json_string(&self.name),
            self.count,
            self.lock_waits,
            children.join(",")
        )
    }

    /// Quarantined JSON with the full figures (total/self wall
    /// seconds, lock-wait seconds, allocation counters). For
    /// `BENCH_profile.json` only.
    pub fn timed_json(&self) -> String {
        let children: Vec<String> = self.children.iter().map(|c| c.timed_json()).collect();
        format!(
            concat!(
                "{{\"name\":{},\"count\":{},\"total_secs\":{},\"self_secs\":{},",
                "\"lock_waits\":{},\"lock_wait_secs\":{},",
                "\"alloc_bytes\":{},\"alloc_calls\":{},\"children\":[{}]}}"
            ),
            json_string(&self.name),
            self.count,
            json_f64(self.total_secs),
            json_f64(self.self_secs()),
            self.lock_waits,
            json_f64(self.lock_wait_secs),
            self.alloc_bytes,
            self.alloc_calls,
            children.join(",")
        )
    }
}

fn merge_trees(trees: &[SpanTree]) -> MergedNode {
    let mut root = MergedNode::new("");
    for tree in trees {
        root.absorb(tree, 0);
    }
    root.sort_recursive();
    root
}

/// The result of a finished profiling session: one [`SpanTree`] per
/// thread that recorded anything, sorted by thread label.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Per-thread trees (labels are stable; tie order between equal
    /// labels is not, so equal labels should be avoided by callers).
    pub threads: Vec<SpanTree>,
}

impl Profile {
    /// Union-merge every thread's tree by span name: counts and times
    /// summed, children sorted by name recursively. The merged
    /// *structure* is deterministic even when the per-thread split is
    /// not (e.g. work-stealing sweep workers).
    pub fn merged(&self) -> MergedNode {
        merge_trees(&self.threads)
    }

    /// Quarantined per-thread JSON array for `BENCH_profile.json`.
    pub fn threads_json(&self) -> String {
        let parts: Vec<String> = self.threads.iter().map(|t| t.timed_json()).collect();
        format!("[{}]", parts.join(","))
    }

    /// Collapsed-stack export (`flamegraph.folded`): one line per
    /// stack, `prefix;span;child <self-microseconds>`, in depth-first
    /// sorted order. `prefix` (e.g. a phase name) may be empty. Only
    /// stacks with non-zero self time are emitted. Quarantined (the
    /// values are wall-clock).
    pub fn folded(&self, prefix: &str) -> String {
        let merged = self.merged();
        let mut out = String::new();
        let mut stack: Vec<String> = if prefix.is_empty() {
            Vec::new()
        } else {
            vec![prefix.to_string()]
        };
        for c in &merged.children {
            fold_node(c, &mut stack, &mut out);
        }
        // Root-attributed lock waits (outside any span) get their own
        // synthetic frame so the flamegraph accounts for them.
        if merged.lock_waits > 0 {
            let micros = (merged.lock_wait_secs * 1e6).round() as u64;
            if micros > 0 {
                let frame = if prefix.is_empty() {
                    "(outside-spans)".to_string()
                } else {
                    format!("{prefix};(outside-spans)")
                };
                out.push_str(&format!("{frame} {micros}\n"));
            }
        }
        out
    }
}

fn fold_node(node: &MergedNode, stack: &mut Vec<String>, out: &mut String) {
    stack.push(node.name.clone());
    let micros = (node.self_secs() * 1e6).round() as u64;
    if micros > 0 {
        out.push_str(&format!("{} {}\n", stack.join(";"), micros));
    }
    for c in &node.children {
        fold_node(c, stack, out);
    }
    stack.pop();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(label: &str) -> SpanTree {
        // root -> a(2, 1.0s) -> b(4, 0.25s); root lock_waits 1
        let mut nodes = vec![SpanNode::new("")];
        nodes[0].lock_waits = 1;
        nodes[0].lock_wait_secs = 0.001;
        let mut a = SpanNode::new("a");
        a.count = 2;
        a.total_secs = 1.0;
        a.children = vec![2];
        let mut b = SpanNode::new("b");
        b.count = 4;
        b.total_secs = 0.25;
        nodes[0].children = vec![1];
        nodes.push(a);
        nodes.push(b);
        SpanTree {
            label: label.to_string(),
            nodes,
        }
    }

    #[test]
    fn merge_sums_and_sorts() {
        let profile = Profile {
            threads: vec![tree("w1"), tree("w0")],
        };
        let merged = profile.merged();
        assert_eq!(merged.lock_waits, 2);
        assert_eq!(merged.children.len(), 1);
        let a = &merged.children[0];
        assert_eq!((a.name.as_str(), a.count), ("a", 4));
        assert_eq!(a.children[0].count, 8);
        assert!((a.self_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn structure_json_has_no_timing_fields() {
        let profile = Profile {
            threads: vec![tree("main")],
        };
        let s = profile.merged().structure_json();
        assert!(s.contains("\"name\":\"a\""));
        assert!(s.contains("\"count\":2"));
        assert!(!s.contains("secs"), "timing must be quarantined: {s}");
        assert!(!s.contains("alloc"), "bytes must be quarantined: {s}");
    }

    #[test]
    fn folded_emits_self_time_lines() {
        let profile = Profile {
            threads: vec![tree("main")],
        };
        let folded = profile.folded("phase");
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            [
                "phase;a 750000",
                "phase;a;b 250000",
                "phase;(outside-spans) 1000"
            ]
        );
    }

    #[test]
    fn timed_json_is_canonical() {
        let t = tree("main");
        let s = t.timed_json();
        assert!(s.starts_with("{\"label\":\"main\",\"spans\":"));
        assert!(s.contains("\"total_secs\":1.0"));
        assert!(s.contains("\"self_secs\":0.75"));
    }
}
