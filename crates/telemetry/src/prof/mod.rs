//! Self-profiling: scoped wall-clock span trees, lock-wait hooks, and
//! (opt-in) allocation accounting.
//!
//! This module family is the *host-side* counterpart of the sim-clock
//! tracer in [`crate::trace`]: where trace spans are stamped with the
//! simulation clock and are part of the deterministic output contract,
//! `prof` spans measure **real wall time, mutex waits, and heap
//! traffic** of the process itself, so the hot paths of the simulator
//! can be attributed with evidence instead of guesses (ROADMAP items 1
//! and 3).
//!
//! Determinism contract (the quarantine boundary):
//!
//! * Span **structure** — names, nesting, call counts, lock-wait
//!   counts — is a pure function of the simulated run and is therefore
//!   golden-lockable ([`report::MergedNode::structure_json`]).
//! * All **wall-clock seconds and byte figures** are quarantined: they
//!   only ever appear in `BENCH_profile.json` and `flamegraph.folded`
//!   ([`report::SpanTree::timed_json`], [`report::Profile::folded`]),
//!   never in a byte-stable golden.
//!
//! Layout:
//!
//! * [`span`] — the RAII scope guards ([`scope!`](crate::prof_scope)),
//!   per-thread span trees, lock-wait timers, and the global
//!   [`span::begin`]/[`span::Session::finish`] session control.
//! * [`alloc`] — the `prof-alloc`-gated counting global allocator
//!   (live/peak/cumulative bytes, allocation calls).
//! * [`report`] — the [`report::Profile`] produced by a finished
//!   session: per-thread trees, the deterministic merged tree, and the
//!   collapsed-stack (`flamegraph.folded`) export.
//!
//! Disabled-by-default cost: one relaxed atomic load per
//! [`scope!`](crate::prof_scope) entry and per [`span::lock_timer`]
//! call — nothing else runs until a [`span::Session`] is active.

pub mod alloc;
pub mod report;
pub mod span;

pub use report::{MergedNode, Profile, SpanNode, SpanTree};
pub use span::{begin, flush_thread, lock_timer, set_thread_label, LockTimer, ScopeGuard, Session};

// Re-export the guard macro under its ergonomic path, so callers write
// `prof::scope!(names::SPAN_LB_ROUTE)`.
pub use crate::prof_scope as scope;
