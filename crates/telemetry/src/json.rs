//! Byte-stable JSON fragment helpers.
//!
//! Hand-rolled (no serde) so that every producer in the workspace
//! renders numbers and strings identically: the determinism contract
//! — same seed + same fault plan ⇒ byte-identical trace — depends on
//! a single canonical formatting of every value. Rust's `f64` display
//! uses the Ryū shortest-round-trip algorithm, which is platform
//! independent, so string equality of an exported trace *is* a valid
//! cross-run and cross-machine determinism test.

/// Render an `f64` as a canonical JSON number.
///
/// Non-finite values (which JSON cannot represent) become `null`.
/// Integral values are forced to carry a `.0` suffix so that a value
/// being exactly integral on one run and `x.000001` on another can
/// never alias to the same token length by accident.
pub fn json_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Render a string as a JSON string literal with minimal ASCII
/// escaping (quotes, backslash, control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a slice of floats as a JSON array of canonical numbers.
pub fn json_f64_array(xs: &[f64]) -> String {
    let body: Vec<String> = xs.iter().map(|&x| json_f64(x)).collect();
    format!("[{}]", body.join(","))
}

/// Render a slice of unsigned integers as a JSON array.
pub fn json_u32_array(xs: &[u32]) -> String {
    let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(-2.0), "-2.0");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn shortest_round_trip_is_used() {
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(1e-6), "0.000001");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn arrays_render_flat() {
        assert_eq!(json_f64_array(&[1.0, 0.5]), "[1.0,0.5]");
        assert_eq!(json_u32_array(&[1, 2]), "[1,2]");
        assert_eq!(json_f64_array(&[]), "[]");
    }
}
