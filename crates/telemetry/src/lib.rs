//! # spotweb-telemetry
//!
//! Deterministic observability for the SpotWeb stack: structured
//! tracing, streaming metrics, and decision-explain records.
//!
//! Three layers, all dependency-free (std only) so the crate can be
//! threaded through every other crate in the workspace, including the
//! otherwise dependency-free load balancer:
//!
//! 1. **Tracing** ([`trace`]) — spans and typed events stamped with
//!    the *simulation* clock, kept in a bounded ring buffer and
//!    exported as byte-stable JSONL. Same seed + same fault plan ⇒
//!    byte-identical trace (the determinism contract; see DESIGN.md).
//! 2. **Metrics** ([`metrics`], [`hist`]) — counters, gauges, and a
//!    log-bucketed mergeable streaming histogram (HDR-style, ~0.5%
//!    relative error, `O(buckets)` memory) with Prometheus-style text
//!    exposition.
//! 3. **Decision-explain records** ([`records`]) — why the MPO chose
//!    the markets it chose ([`DecisionRecord`]), what the predictor
//!    forecast vs. what happened ([`ForecastRecord`]), and how a
//!    revocation drain migrated sessions ([`DrainRecord`]).
//!
//! The entry point is [`TelemetrySink`]: a cheap cloneable handle,
//! disabled by default (every call a no-op), that all subsystems
//! share when enabled.
//!
//! Wall-clock durations (solver timing) go through
//! [`TelemetrySink::time`] into a separate store exported only as
//! `BENCH_telemetry.json` — they never enter the deterministic trace.

// The workspace forbids unsafe code. The one exception is the opt-in
// `prof-alloc` counting global allocator (`prof::alloc`), whose
// `GlobalAlloc` impl necessarily carries `unsafe`: with that feature on
// we drop to `deny` and the impl carries a single scoped, documented
// `allow`. Every other configuration stays at `forbid`.
#![cfg_attr(not(feature = "prof-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "prof-alloc", deny(unsafe_code))]
#![deny(missing_docs)]

pub mod hist;
pub mod json;
pub mod metrics;
pub mod names;
pub mod prof;
pub mod records;
pub mod sink;
pub mod trace;

pub use hist::StreamingHistogram;
pub use metrics::MetricsRegistry;
pub use records::{DecisionRecord, DrainRecord, ForecastRecord, MarketEval};
pub use sink::{CounterHandle, HistogramHandle, Telemetry, TelemetrySink, TimingStat};
pub use trace::{StampedEvent, TraceEvent, Tracer};
