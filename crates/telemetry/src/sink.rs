//! The [`TelemetrySink`] façade: a cheap, cloneable handle threaded
//! through every crate in the workspace.
//!
//! A disabled sink (the default) is a `None` and every call on it is
//! a no-op — production code paths pay one branch when telemetry is
//! off. An enabled sink shares one [`Telemetry`] store across all its
//! clones, so the runner, balancer, market, predictor, and policy all
//! write into the same trace and metrics registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::StreamingHistogram;
use crate::json::json_f64;
use crate::metrics::MetricsRegistry;
use crate::names;
use crate::trace::{StampedEvent, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};

/// Wall-clock timing aggregate for one named operation. Kept in a
/// separate store from the trace/metrics because wall-clock values
/// are non-deterministic and must never contaminate byte-stable
/// output; they are exported only via [`TelemetrySink::render_timings_json`]
/// (the `BENCH_telemetry.json` perf baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingStat {
    /// Number of timed calls.
    pub count: u64,
    /// Total seconds across calls.
    pub total_secs: f64,
    /// Fastest call.
    pub min_secs: f64,
    /// Slowest call.
    pub max_secs: f64,
}

/// The shared telemetry store behind an enabled sink.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Trace ring buffer.
    pub tracer: Tracer,
    /// Metrics registry.
    pub metrics: MetricsRegistry,
    timings: BTreeMap<String, TimingStat>,
    clock: f64,
}

/// The store behind an enabled sink: the locked [`Telemetry`] plus a
/// dense lock-free slot per interned counter ([`names::INTERNED`]) and
/// a dedicated locked histogram per interned histogram name
/// ([`names::HIST_INTERNED`]). Interned increments land in the slots
/// without taking the store lock or allocating; every read path merges
/// the slots back into the ordinary registry first, so rendered output
/// never depends on which path a counter took.
///
/// The histogram slots use replace-on-read rather than merge-on-read:
/// each slot is the *only* place samples for its name accumulate
/// (string-keyed [`TelemetrySink::observe`] calls route here too), so
/// a read clones the slot into the registry wholesale. That keeps the
/// exported `sum` bit-identical to sequential recording — a partial
/// merge would re-associate the floating-point additions.
#[derive(Debug)]
struct SinkShared {
    store: Mutex<Telemetry>,
    dense: Vec<AtomicU64>,
    hist_dense: Vec<PaddedHistSlot>,
}

/// One interned histogram slot, padded to a cache line.
///
/// Parallel sweep workers each own a sink, but within one run the
/// arrival loop and the drain both hammer the same latency slot; the
/// alignment guarantees two adjacent slots (or a slot and the `dense`
/// counter array) can never share a line, ruling false sharing in or
/// out of the jobs-N scaling picture by construction (ISSUE 7). The
/// wrapper changes memory layout only: flush output is byte-identical.
#[derive(Debug)]
#[repr(align(64))]
struct PaddedHistSlot(Mutex<StreamingHistogram>);

impl PaddedHistSlot {
    /// Lock the slot, timing the acquisition wait into the active
    /// profiling span (no-op wait timer when profiling is off).
    fn lock_timed(&self) -> std::sync::MutexGuard<'_, StreamingHistogram> {
        let wait = crate::prof::lock_timer();
        let guard = self.0.lock().expect("telemetry hist lock poisoned");
        wait.done();
        guard
    }
}

impl SinkShared {
    /// Merge the dense slots into the registry (caller holds the lock).
    fn flush_dense(&self, tel: &mut Telemetry) {
        for (id, slot) in self.dense.iter().enumerate() {
            let v = slot.swap(0, Ordering::Relaxed);
            if v > 0 {
                tel.metrics.counter_add(names::INTERNED[id], v);
            }
        }
        for (id, slot) in self.hist_dense.iter().enumerate() {
            let h = slot.lock_timed();
            if !h.is_empty() {
                tel.metrics
                    .histogram_set(names::HIST_INTERNED[id], h.clone());
            }
        }
    }
}

/// An O(1), allocation-free increment handle to one counter of one
/// sink, resolved once via [`TelemetrySink::counter_handle`].
///
/// The hot-loop replacement for [`TelemetrySink::count`], whose
/// per-call cost (mutex + `String` allocation + `BTreeMap` probe) is
/// measurable at millions of increments per second. An interned name
/// (see [`names::INTERNED`]) increments a dense atomic slot; a
/// non-interned name falls back to the ordinary slow path; a handle
/// from a disabled sink is a no-op. All three are observationally
/// identical — exports are byte-for-byte the same either way.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle {
    fast: Option<(Arc<SinkShared>, usize)>,
    slow: Option<(Arc<SinkShared>, &'static str)>,
}

impl CounterHandle {
    /// Add `delta` to the counter (no-op when the sink is disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some((shared, id)) = &self.fast {
            shared.dense[*id].fetch_add(delta, Ordering::Relaxed);
        } else if let Some((shared, name)) = &self.slow {
            let mut tel = shared.store.lock().expect("telemetry lock poisoned");
            tel.metrics.counter_add(name, delta);
        }
    }

    /// Increment the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// An allocation-free sample handle to one streaming histogram of one
/// sink, resolved once via [`TelemetrySink::histogram_handle`].
///
/// The hot-loop replacement for [`TelemetrySink::observe`], whose
/// per-call cost (store mutex + `String` allocation + `BTreeMap`
/// probe) dominates the drain path at millions of served requests per
/// second. An interned name ([`names::HIST_INTERNED`]) records into
/// the name's dedicated slot — the authoritative store for that
/// series — under its own uncontended lock; a non-interned name falls
/// back to the ordinary slow path; a handle from a disabled sink is a
/// no-op. Exports are byte-for-byte identical on every path.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    fast: Option<(Arc<SinkShared>, usize)>,
    slow: Option<(Arc<SinkShared>, &'static str)>,
}

impl HistogramHandle {
    /// Fold `v` into the histogram (no-op when the sink is disabled).
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some((shared, id)) = &self.fast {
            shared.hist_dense[*id].lock_timed().record(v);
        } else if let Some((shared, name)) = &self.slow {
            let mut tel = shared.store.lock().expect("telemetry lock poisoned");
            tel.metrics.observe(name, v);
        }
    }
}

/// Cheap cloneable handle to a shared [`Telemetry`] store; disabled
/// (all calls no-ops) by default.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<SinkShared>>,
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_some() {
            f.write_str("TelemetrySink(enabled)")
        } else {
            f.write_str("TelemetrySink(disabled)")
        }
    }
}

impl TelemetrySink {
    /// A disabled sink: every call is a no-op.
    pub fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// An enabled sink with the default trace capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled sink retaining at most `capacity` trace events.
    pub fn with_capacity(capacity: usize) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(SinkShared {
                store: Mutex::new(Telemetry {
                    tracer: Tracer::with_capacity(capacity),
                    ..Telemetry::default()
                }),
                dense: names::INTERNED.iter().map(|_| AtomicU64::new(0)).collect(),
                hist_dense: names::HIST_INTERNED
                    .iter()
                    .map(|_| PaddedHistSlot(Mutex::new(StreamingHistogram::new())))
                    .collect(),
            })),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve an O(1) increment handle for `name` (see
    /// [`CounterHandle`]). The name lookup happens here, once; the
    /// returned handle never locks, allocates, or compares strings on
    /// the interned fast path.
    pub fn counter_handle(&self, name: &'static str) -> CounterHandle {
        match &self.inner {
            None => CounterHandle::default(),
            Some(shared) => match names::interned_id(name) {
                Some(id) => CounterHandle {
                    fast: Some((Arc::clone(shared), id)),
                    slow: None,
                },
                None => CounterHandle {
                    fast: None,
                    slow: Some((Arc::clone(shared), name)),
                },
            },
        }
    }

    /// Resolve an allocation-free sample handle for `name` (see
    /// [`HistogramHandle`]). The name lookup happens here, once.
    pub fn histogram_handle(&self, name: &'static str) -> HistogramHandle {
        match &self.inner {
            None => HistogramHandle::default(),
            Some(shared) => match names::interned_hist_id(name) {
                Some(id) => HistogramHandle {
                    fast: Some((Arc::clone(shared), id)),
                    slow: None,
                },
                None => HistogramHandle {
                    fast: None,
                    slow: Some((Arc::clone(shared), name)),
                },
            },
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.store.lock().expect("telemetry lock poisoned")))
    }

    /// Like [`with`](Self::with), but merges the dense interned-counter
    /// slots into the registry first — every path that *reads* metrics
    /// goes through here so [`CounterHandle`] increments are always
    /// visible and exports stay byte-identical to the slow path.
    fn with_flushed<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        self.inner.as_ref().map(|m| {
            let mut tel = m.store.lock().expect("telemetry lock poisoned");
            m.flush_dense(&mut tel);
            f(&mut tel)
        })
    }

    /// Set the ambient simulation clock; subsequent [`emit`](Self::emit)
    /// calls stamp events with this time.
    pub fn set_clock(&self, t: f64) {
        self.with(|tel| tel.clock = t);
    }

    /// Current ambient simulation clock (0.0 when disabled).
    pub fn clock(&self) -> f64 {
        self.with(|tel| tel.clock).unwrap_or(0.0)
    }

    /// Record an event at the ambient clock.
    pub fn emit(&self, event: TraceEvent) {
        self.with(|tel| {
            let t = tel.clock;
            tel.tracer.record(t, event);
        });
    }

    /// Record an event at an explicit sim time (for callers that are
    /// handed `now` directly, like the load balancer).
    pub fn emit_at(&self, t: f64, event: TraceEvent) {
        self.with(|tel| tel.tracer.record(t, event));
    }

    /// Open a span at the ambient clock; returns its id (0 when
    /// disabled — safe to pass back to [`span_end`](Self::span_end)).
    pub fn span_start(&self, name: &str) -> u64 {
        self.with(|tel| {
            let t = tel.clock;
            tel.tracer.span_start(t, name)
        })
        .unwrap_or(0)
    }

    /// Close a span opened with [`span_start`](Self::span_start).
    pub fn span_end(&self, id: u64, name: &str) {
        self.with(|tel| {
            let t = tel.clock;
            tel.tracer.span_end(t, id, name);
        });
    }

    /// Add `delta` to a named counter.
    pub fn count(&self, name: &str, delta: u64) {
        self.with(|tel| tel.metrics.counter_add(name, delta));
    }

    /// Read a named counter (0 when disabled or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_flushed(|tel| tel.metrics.counter(name))
            .unwrap_or(0)
    }

    /// Set a named gauge.
    pub fn gauge(&self, name: &str, v: f64) {
        self.with(|tel| tel.metrics.gauge_set(name, v));
    }

    /// Fold a sample into a named streaming histogram. Interned names
    /// ([`names::HIST_INTERNED`]) record into the name's dedicated
    /// slot — the same one [`HistogramHandle`] uses — so the sample
    /// sequence stays in one place regardless of the call path.
    pub fn observe(&self, name: &str, v: f64) {
        let Some(shared) = &self.inner else { return };
        match names::interned_hist_id(name) {
            Some(id) => shared.hist_dense[id].lock_timed().record(v),
            None => shared
                .store
                .lock()
                .expect("telemetry lock poisoned")
                .metrics
                .observe(name, v),
        }
    }

    /// Record a wall-clock duration for a named operation. Kept out
    /// of the trace and Prometheus dump (non-deterministic); exported
    /// only by [`render_timings_json`](Self::render_timings_json).
    pub fn time(&self, name: &str, secs: f64) {
        self.with(|tel| {
            let stat = tel.timings.entry(name.to_string()).or_insert(TimingStat {
                count: 0,
                total_secs: 0.0,
                min_secs: f64::INFINITY,
                max_secs: f64::NEG_INFINITY,
            });
            stat.count += 1;
            stat.total_secs += secs;
            stat.min_secs = stat.min_secs.min(secs);
            stat.max_secs = stat.max_secs.max(secs);
        });
    }

    /// Snapshot of the retained trace events, oldest first.
    pub fn events(&self) -> Vec<StampedEvent> {
        self.with(|tel| tel.tracer.events().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of trace events evicted by the ring-buffer bound.
    pub fn dropped_events(&self) -> u64 {
        self.with(|tel| tel.tracer.dropped()).unwrap_or(0)
    }

    /// Export the trace as byte-stable JSONL (empty when disabled).
    pub fn export_jsonl(&self) -> String {
        self.with(|tel| tel.tracer.export_jsonl())
            .unwrap_or_default()
    }

    /// Render the metrics registry in Prometheus text format (empty
    /// when disabled).
    pub fn render_prometheus(&self) -> String {
        self.with_flushed(|tel| tel.metrics.render_prometheus())
            .unwrap_or_default()
    }

    /// Run `f` against the shared metrics registry (no-op when
    /// disabled). For read access that needs more than one value.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.with_flushed(|tel| f(&tel.metrics))
    }

    /// Render the wall-clock timing aggregates as a JSON object
    /// (`BENCH_telemetry.json`). This is the only exit for wall-clock
    /// data; it is deliberately not part of the trace.
    pub fn render_timings_json(&self) -> String {
        self.with(|tel| {
            let mut out = String::from("{\n");
            let entries: Vec<String> = tel
                .timings
                .iter()
                .map(|(name, s)| {
                    let mean = if s.count == 0 {
                        f64::NAN
                    } else {
                        s.total_secs / s.count as f64
                    };
                    format!(
                        "  \"{name}\": {{\"count\": {}, \"total_secs\": {}, \
                         \"mean_secs\": {}, \"min_secs\": {}, \"max_secs\": {}}}",
                        s.count,
                        json_f64(s.total_secs),
                        json_f64(mean),
                        json_f64(s.min_secs),
                        json_f64(s.max_secs)
                    )
                })
                .collect();
            out.push_str(&entries.join(",\n"));
            out.push_str("\n}\n");
            out
        })
        .unwrap_or_else(|| "{}\n".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TelemetrySink::disabled();
        sink.set_clock(5.0);
        sink.count("x", 1);
        sink.emit(TraceEvent::Note {
            name: "n".to_string(),
            detail: String::new(),
        });
        assert!(!sink.is_enabled());
        assert_eq!(sink.counter("x"), 0);
        assert_eq!(sink.export_jsonl(), "");
        assert_eq!(sink.render_prometheus(), "");
    }

    #[test]
    fn clones_share_one_store() {
        let a = TelemetrySink::enabled();
        let b = a.clone();
        a.set_clock(10.0);
        b.count("shared_total", 2);
        b.emit(TraceEvent::Note {
            name: "from_b".to_string(),
            detail: String::new(),
        });
        assert_eq!(a.counter("shared_total"), 2);
        let events = a.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t, 10.0);
    }

    #[test]
    fn counter_handle_is_indistinguishable_from_count() {
        // Two sinks, same increments: one through the interned handle,
        // one through the slow path. Every export must be identical.
        let fast = TelemetrySink::enabled();
        let slow = TelemetrySink::enabled();
        let h = fast.counter_handle(names::REQUESTS_SERVED_TOTAL);
        for _ in 0..3 {
            h.inc();
            slow.count(names::REQUESTS_SERVED_TOTAL, 1);
        }
        h.add(4);
        slow.count(names::REQUESTS_SERVED_TOTAL, 4);
        fast.count("spotweb_other_total", 2);
        slow.count("spotweb_other_total", 2);
        assert_eq!(fast.counter(names::REQUESTS_SERVED_TOTAL), 7);
        assert_eq!(fast.render_prometheus(), slow.render_prometheus());
        // Reads are repeatable (the flush is a merge, not a reset of
        // the visible value).
        assert_eq!(fast.counter(names::REQUESTS_SERVED_TOTAL), 7);
    }

    #[test]
    fn counter_handle_fallbacks() {
        // A non-interned name still counts, through the slow path.
        let sink = TelemetrySink::enabled();
        let h = sink.counter_handle("spotweb_custom_total");
        h.add(5);
        assert_eq!(sink.counter("spotweb_custom_total"), 5);
        // A disabled sink yields a no-op handle.
        let off = TelemetrySink::disabled().counter_handle(names::REQUESTS_SERVED_TOTAL);
        off.inc();
        assert_eq!(
            TelemetrySink::disabled().counter(names::REQUESTS_SERVED_TOTAL),
            0
        );
    }

    #[test]
    fn histogram_handle_is_indistinguishable_from_observe() {
        // Same samples through three paths: the interned handle, the
        // string-keyed sink call (which routes to the same slot), and
        // a slow-path-only sink using a non-interned name. Renders
        // must agree bit-for-bit, including the floating-point sum.
        let fast = TelemetrySink::enabled();
        let slow = TelemetrySink::enabled();
        let h = fast.histogram_handle(names::REQUEST_LATENCY_SECONDS);
        let samples = [0.125, 0.0625, 3.5, 0.125, 0.01171875];
        for (k, v) in samples.iter().enumerate() {
            if k % 2 == 0 {
                h.observe(*v);
            } else {
                fast.observe(names::REQUEST_LATENCY_SECONDS, *v);
            }
            slow.observe(names::REQUEST_LATENCY_SECONDS, *v);
        }
        assert_eq!(fast.render_prometheus(), slow.render_prometheus());
        // Reads are repeatable (replace-on-read, not merge-on-read).
        assert_eq!(fast.render_prometheus(), slow.render_prometheus());
        // The slow fallback and the disabled no-op still work.
        let custom = fast.histogram_handle("spotweb_custom_seconds");
        custom.observe(1.0);
        assert!(fast
            .with_metrics(|m| m.histogram("spotweb_custom_seconds").is_some())
            .unwrap());
        TelemetrySink::disabled()
            .histogram_handle(names::REQUEST_LATENCY_SECONDS)
            .observe(1.0);
    }

    #[test]
    fn handles_share_the_store_with_clones() {
        let a = TelemetrySink::enabled();
        let b = a.clone();
        let h = b.counter_handle(names::SIM_EVENTS_PROCESSED_TOTAL);
        h.add(2);
        assert_eq!(a.counter(names::SIM_EVENTS_PROCESSED_TOTAL), 2);
    }

    #[test]
    fn timings_stay_out_of_trace_and_prometheus() {
        let sink = TelemetrySink::enabled();
        sink.time("mpo_solve_secs", 0.002);
        sink.time("mpo_solve_secs", 0.004);
        assert_eq!(sink.export_jsonl(), "");
        assert_eq!(sink.render_prometheus(), "");
        let json = sink.render_timings_json();
        assert!(json.contains("\"mpo_solve_secs\""));
        assert!(json.contains("\"count\": 2"));
    }
}
