//! The [`TelemetrySink`] façade: a cheap, cloneable handle threaded
//! through every crate in the workspace.
//!
//! A disabled sink (the default) is a `None` and every call on it is
//! a no-op — production code paths pay one branch when telemetry is
//! off. An enabled sink shares one [`Telemetry`] store across all its
//! clones, so the runner, balancer, market, predictor, and policy all
//! write into the same trace and metrics registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::json::json_f64;
use crate::metrics::MetricsRegistry;
use crate::trace::{StampedEvent, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};

/// Wall-clock timing aggregate for one named operation. Kept in a
/// separate store from the trace/metrics because wall-clock values
/// are non-deterministic and must never contaminate byte-stable
/// output; they are exported only via [`TelemetrySink::render_timings_json`]
/// (the `BENCH_telemetry.json` perf baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingStat {
    /// Number of timed calls.
    pub count: u64,
    /// Total seconds across calls.
    pub total_secs: f64,
    /// Fastest call.
    pub min_secs: f64,
    /// Slowest call.
    pub max_secs: f64,
}

/// The shared telemetry store behind an enabled sink.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Trace ring buffer.
    pub tracer: Tracer,
    /// Metrics registry.
    pub metrics: MetricsRegistry,
    timings: BTreeMap<String, TimingStat>,
    clock: f64,
}

/// Cheap cloneable handle to a shared [`Telemetry`] store; disabled
/// (all calls no-ops) by default.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<Telemetry>>>,
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_some() {
            f.write_str("TelemetrySink(enabled)")
        } else {
            f.write_str("TelemetrySink(disabled)")
        }
    }
}

impl TelemetrySink {
    /// A disabled sink: every call is a no-op.
    pub fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// An enabled sink with the default trace capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled sink retaining at most `capacity` trace events.
    pub fn with_capacity(capacity: usize) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(Telemetry {
                tracer: Tracer::with_capacity(capacity),
                ..Telemetry::default()
            }))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().expect("telemetry lock poisoned")))
    }

    /// Set the ambient simulation clock; subsequent [`emit`](Self::emit)
    /// calls stamp events with this time.
    pub fn set_clock(&self, t: f64) {
        self.with(|tel| tel.clock = t);
    }

    /// Current ambient simulation clock (0.0 when disabled).
    pub fn clock(&self) -> f64 {
        self.with(|tel| tel.clock).unwrap_or(0.0)
    }

    /// Record an event at the ambient clock.
    pub fn emit(&self, event: TraceEvent) {
        self.with(|tel| {
            let t = tel.clock;
            tel.tracer.record(t, event);
        });
    }

    /// Record an event at an explicit sim time (for callers that are
    /// handed `now` directly, like the load balancer).
    pub fn emit_at(&self, t: f64, event: TraceEvent) {
        self.with(|tel| tel.tracer.record(t, event));
    }

    /// Open a span at the ambient clock; returns its id (0 when
    /// disabled — safe to pass back to [`span_end`](Self::span_end)).
    pub fn span_start(&self, name: &str) -> u64 {
        self.with(|tel| {
            let t = tel.clock;
            tel.tracer.span_start(t, name)
        })
        .unwrap_or(0)
    }

    /// Close a span opened with [`span_start`](Self::span_start).
    pub fn span_end(&self, id: u64, name: &str) {
        self.with(|tel| {
            let t = tel.clock;
            tel.tracer.span_end(t, id, name);
        });
    }

    /// Add `delta` to a named counter.
    pub fn count(&self, name: &str, delta: u64) {
        self.with(|tel| tel.metrics.counter_add(name, delta));
    }

    /// Read a named counter (0 when disabled or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|tel| tel.metrics.counter(name)).unwrap_or(0)
    }

    /// Set a named gauge.
    pub fn gauge(&self, name: &str, v: f64) {
        self.with(|tel| tel.metrics.gauge_set(name, v));
    }

    /// Fold a sample into a named streaming histogram.
    pub fn observe(&self, name: &str, v: f64) {
        self.with(|tel| tel.metrics.observe(name, v));
    }

    /// Record a wall-clock duration for a named operation. Kept out
    /// of the trace and Prometheus dump (non-deterministic); exported
    /// only by [`render_timings_json`](Self::render_timings_json).
    pub fn time(&self, name: &str, secs: f64) {
        self.with(|tel| {
            let stat = tel.timings.entry(name.to_string()).or_insert(TimingStat {
                count: 0,
                total_secs: 0.0,
                min_secs: f64::INFINITY,
                max_secs: f64::NEG_INFINITY,
            });
            stat.count += 1;
            stat.total_secs += secs;
            stat.min_secs = stat.min_secs.min(secs);
            stat.max_secs = stat.max_secs.max(secs);
        });
    }

    /// Snapshot of the retained trace events, oldest first.
    pub fn events(&self) -> Vec<StampedEvent> {
        self.with(|tel| tel.tracer.events().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of trace events evicted by the ring-buffer bound.
    pub fn dropped_events(&self) -> u64 {
        self.with(|tel| tel.tracer.dropped()).unwrap_or(0)
    }

    /// Export the trace as byte-stable JSONL (empty when disabled).
    pub fn export_jsonl(&self) -> String {
        self.with(|tel| tel.tracer.export_jsonl())
            .unwrap_or_default()
    }

    /// Render the metrics registry in Prometheus text format (empty
    /// when disabled).
    pub fn render_prometheus(&self) -> String {
        self.with(|tel| tel.metrics.render_prometheus())
            .unwrap_or_default()
    }

    /// Run `f` against the shared metrics registry (no-op when
    /// disabled). For read access that needs more than one value.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.with(|tel| f(&tel.metrics))
    }

    /// Render the wall-clock timing aggregates as a JSON object
    /// (`BENCH_telemetry.json`). This is the only exit for wall-clock
    /// data; it is deliberately not part of the trace.
    pub fn render_timings_json(&self) -> String {
        self.with(|tel| {
            let mut out = String::from("{\n");
            let entries: Vec<String> = tel
                .timings
                .iter()
                .map(|(name, s)| {
                    let mean = if s.count == 0 {
                        f64::NAN
                    } else {
                        s.total_secs / s.count as f64
                    };
                    format!(
                        "  \"{name}\": {{\"count\": {}, \"total_secs\": {}, \
                         \"mean_secs\": {}, \"min_secs\": {}, \"max_secs\": {}}}",
                        s.count,
                        json_f64(s.total_secs),
                        json_f64(mean),
                        json_f64(s.min_secs),
                        json_f64(s.max_secs)
                    )
                })
                .collect();
            out.push_str(&entries.join(",\n"));
            out.push_str("\n}\n");
            out
        })
        .unwrap_or_else(|| "{}\n".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TelemetrySink::disabled();
        sink.set_clock(5.0);
        sink.count("x", 1);
        sink.emit(TraceEvent::Note {
            name: "n".to_string(),
            detail: String::new(),
        });
        assert!(!sink.is_enabled());
        assert_eq!(sink.counter("x"), 0);
        assert_eq!(sink.export_jsonl(), "");
        assert_eq!(sink.render_prometheus(), "");
    }

    #[test]
    fn clones_share_one_store() {
        let a = TelemetrySink::enabled();
        let b = a.clone();
        a.set_clock(10.0);
        b.count("shared_total", 2);
        b.emit(TraceEvent::Note {
            name: "from_b".to_string(),
            detail: String::new(),
        });
        assert_eq!(a.counter("shared_total"), 2);
        let events = a.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t, 10.0);
    }

    #[test]
    fn timings_stay_out_of_trace_and_prometheus() {
        let sink = TelemetrySink::enabled();
        sink.time("mpo_solve_secs", 0.002);
        sink.time("mpo_solve_secs", 0.004);
        assert_eq!(sink.export_jsonl(), "");
        assert_eq!(sink.render_prometheus(), "");
        let json = sink.render_timings_json();
        assert!(json.contains("\"mpo_solve_secs\""));
        assert!(json.contains("\"count\": 2"));
    }
}
