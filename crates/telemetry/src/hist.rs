//! Log-bucketed streaming histogram (HDR-style, mergeable).
//!
//! Replaces store-every-sample latency recording: a sample is folded
//! into one of ~2.5k geometrically spaced buckets, so memory is
//! `O(buckets)` regardless of how many samples are recorded, and two
//! histograms over the same layout merge by adding bucket counts.
//!
//! Accuracy: with bucket growth factor `g`, the representative value
//! of a bucket is the geometric mean of its bounds, so any reported
//! percentile is within a factor `sqrt(g)` of the true sample value —
//! `g = 1.01` bounds the relative error at ~0.5%.
//!
//! Determinism: bucket boundaries are built by repeated
//! multiplication and representatives by `sqrt`, both of which IEEE
//! 754 requires to be correctly rounded. The only libm call (`log2`,
//! not bit-stable across platforms) merely *seeds* the bucket search;
//! the final index is always corrected against the exact boundary
//! grid, so histogram output is byte-identical across machines — a
//! requirement for the golden trace fixtures.

use std::sync::{Arc, OnceLock};

/// Default lowest representable value (1 microsecond, in seconds).
pub const DEFAULT_FLOOR: f64 = 1e-6;
/// Default highest bucket boundary (~28 hours, in seconds).
pub const DEFAULT_CEILING: f64 = 1e5;
/// Default per-bucket growth factor (0.5% worst-case relative error).
pub const DEFAULT_GROWTH: f64 = 1.01;

/// Shared bucket layout: the geometric boundary grid. One `Layout` is
/// built per configuration and shared (`Arc`) across every histogram
/// that uses it, so per-histogram memory is just the counts vector.
#[derive(Debug, Clone)]
struct Layout {
    floor: f64,
    growth: f64,
    /// `1 / log2(growth)` — seeds the bucket search in [`Layout::index_of`].
    /// Only a starting guess; the result is always corrected against the
    /// exact `bounds` grid, so libm imprecision cannot reach the output.
    inv_log2_growth: f64,
    /// `bounds[i]..bounds[i+1]` is bucket `i`; `bounds.len() - 1` buckets.
    bounds: Arc<Vec<f64>>,
}

impl Layout {
    fn new(floor: f64, ceiling: f64, growth: f64) -> Self {
        assert!(floor > 0.0 && ceiling > floor && growth > 1.0);
        let mut bounds = vec![floor];
        let mut b = floor;
        while b < ceiling {
            b *= growth;
            bounds.push(b);
        }
        Layout {
            floor,
            growth,
            inv_log2_growth: 1.0 / growth.log2(),
            bounds: Arc::new(bounds),
        }
    }

    fn default_shared() -> Self {
        static DEFAULT: OnceLock<Layout> = OnceLock::new();
        DEFAULT
            .get_or_init(|| Layout::new(DEFAULT_FLOOR, DEFAULT_CEILING, DEFAULT_GROWTH))
            .clone()
    }

    fn n_buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    fn index_of(&self, v: f64) -> usize {
        if v <= self.bounds[0] {
            return 0;
        }
        if v >= *self.bounds.last().expect("layout has at least two bounds") {
            return self.n_buckets() - 1;
        }
        // Seed with a log2 estimate (hot-path replacement for a ~12-probe
        // binary search over the grid), then walk to the exact bucket.
        // The walk compares only against the exact repeated-multiplication
        // `bounds`, so the returned index is identical to what
        // `partition_point(|&b| b <= v) - 1` yields — any libm log2
        // imprecision costs at most an extra step, never a different
        // answer. In practice the estimate is off by at most one bucket
        // (cumulative grid rounding drift is ~1e-13 relative, i.e.
        // ~1e-11 buckets), so the walk is one or two comparisons.
        let est = ((v / self.floor).log2() * self.inv_log2_growth) as usize;
        let mut i = est.min(self.n_buckets() - 1);
        while self.bounds[i] > v {
            i -= 1;
        }
        while self.bounds[i + 1] <= v {
            i += 1;
        }
        i
    }

    /// Geometric mean of the bucket bounds (correctly rounded sqrt).
    fn representative(&self, i: usize) -> f64 {
        (self.bounds[i] * self.bounds[i + 1]).sqrt()
    }

    fn same_as(&self, other: &Layout) -> bool {
        Arc::ptr_eq(&self.bounds, &other.bounds)
            || (self.floor == other.floor
                && self.growth == other.growth
                && self.bounds.len() == other.bounds.len())
    }
}

/// A mergeable, log-bucketed streaming histogram with exact
/// `count`/`sum`/`min`/`max` and ~0.5%-accurate percentiles.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    layout: Layout,
    /// Lazily grown: only as long as the highest bucket touched.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// A histogram over the default latency layout
    /// (`[1e-6, 1e5]` seconds, 1% bucket growth).
    pub fn new() -> Self {
        StreamingHistogram {
            layout: Layout::default_shared(),
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram over a custom geometric layout. `floor` is the
    /// lowest resolvable value, `ceiling` the top boundary, `growth`
    /// the per-bucket ratio (worst-case relative error ≈ `growth/2 - 0.5`).
    pub fn with_layout(floor: f64, ceiling: f64, growth: f64) -> Self {
        StreamingHistogram {
            layout: Layout::new(floor, ceiling, growth),
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in. NaN samples are ignored; out-of-range
    /// samples clamp into the first/last bucket (exact `min`/`max`
    /// still track the true values).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.layout.index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact maximum sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Percentile `p` in `[0, 100]`. NaN when empty; exact for a
    /// single sample; otherwise the geometric-mean representative of
    /// the bucket holding the `ceil(p/100 · n)`-th sample, clamped to
    /// the exact observed `[min, max]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let frac = (p / 100.0).clamp(0.0, 1.0);
        let k = ((frac * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= k {
                return self.layout.representative(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one. Panics if the layouts
    /// differ (all SpotWeb latency histograms share the default).
    pub fn merge(&mut self, other: &StreamingHistogram) {
        assert!(
            self.layout.same_as(&other.layout),
            "cannot merge histograms with different bucket layouts"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Bytes owned by this histogram instance (excluding the shared
    /// bucket-boundary grid). Constant in the number of samples.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* generator — the test must not depend
    /// on the vendored rand crates (this crate is dependency-free).
    struct XorShift(u64);
    impl XorShift {
        fn next_f64(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let k = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[k - 1]
    }

    #[test]
    fn empty_is_nan_everywhere() {
        let h = StreamingHistogram::new();
        assert!(h.is_empty());
        assert!(h.percentile(50.0).is_nan());
        assert!(h.mean().is_nan());
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());
    }

    #[test]
    fn single_sample_is_exact() {
        let mut h = StreamingHistogram::new();
        h.record(0.1234);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0.1234);
        }
        assert_eq!(h.mean(), 0.1234);
        assert_eq!(h.min(), 0.1234);
        assert_eq!(h.max(), 0.1234);
    }

    #[test]
    fn million_sample_percentiles_within_one_percent() {
        // Mixture: bulk of fast requests plus a heavy-ish tail,
        // shaped like the simulator's latency distribution.
        let mut rng = XorShift(0x5EED_1234_ABCD_0001);
        let mut h = StreamingHistogram::new();
        let mut exact = Vec::with_capacity(1_000_000);
        for _ in 0..1_000_000 {
            let u = rng.next_f64();
            let v = if u < 0.9 {
                0.05 + 0.3 * rng.next_f64()
            } else {
                0.5 + 4.0 * rng.next_f64() * rng.next_f64()
            };
            h.record(v);
            exact.push(v);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [50.0, 90.0, 99.0] {
            let truth = exact_percentile(&exact, p);
            let est = h.percentile(p);
            let rel = (est - truth).abs() / truth;
            assert!(
                rel < 0.01,
                "p{p}: exact {truth} vs streaming {est} (rel err {rel:.4})"
            );
        }
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(h.min(), exact[0]);
        assert_eq!(h.max(), *exact.last().unwrap());
    }

    #[test]
    fn memory_is_constant_in_sample_count() {
        let mut rng = XorShift(42);
        let mut h = StreamingHistogram::new();
        for _ in 0..10_000 {
            h.record(0.01 + rng.next_f64());
        }
        let after_10k = h.memory_bytes();
        for _ in 0..990_000 {
            h.record(0.01 + rng.next_f64());
        }
        // Same value range ⇒ not a single extra byte for 99x the samples.
        assert_eq!(h.memory_bytes(), after_10k);
        assert!(
            h.memory_bytes() < 64 * 1024,
            "histogram must stay small: {} bytes",
            h.memory_bytes()
        );
        assert_eq!(h.count(), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut rng = XorShift(7);
        let mut whole = StreamingHistogram::new();
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for i in 0..10_000 {
            let v = 0.001 + 2.0 * rng.next_f64();
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        // Sums differ only by float addition order.
        assert!((a.sum() - whole.sum()).abs() < 1e-6 * whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn out_of_range_clamps_but_tracks_exact_extremes() {
        let mut h = StreamingHistogram::new();
        h.record(1e-9);
        h.record(1e7);
        assert_eq!(h.min(), 1e-9);
        assert_eq!(h.max(), 1e7);
        assert_eq!(h.count(), 2);
        // Percentiles clamp into the exact observed range.
        assert!(h.percentile(0.0) >= 1e-9);
        assert!(h.percentile(100.0) <= 1e7);
    }

    #[test]
    fn seeded_index_search_matches_binary_search() {
        // The log2-seeded bucket search must place every sample in
        // exactly the bucket a pure binary search over the grid would
        // pick — including values sitting on (or one ulp either side
        // of) a boundary, where a sloppy estimate+round would go wrong.
        let layout = Layout::default_shared();
        let reference = |v: f64| -> usize {
            if v <= layout.bounds[0] {
                return 0;
            }
            if v >= *layout.bounds.last().unwrap() {
                return layout.n_buckets() - 1;
            }
            layout.bounds.partition_point(|&b| b <= v) - 1
        };
        for (i, &b) in layout.bounds.iter().enumerate() {
            for v in [b, b.next_down(), b.next_up(), b * 1.004999] {
                assert_eq!(
                    layout.index_of(v),
                    reference(v),
                    "bound {i} probe {v:e} diverged from binary search"
                );
            }
        }
        let mut rng = XorShift(0xD1CE_0001);
        for _ in 0..100_000 {
            // Log-uniform across the full grid plus out-of-range tails.
            let v = 1e-7 * (1e13_f64).powf(rng.next_f64());
            assert_eq!(layout.index_of(v), reference(v), "probe {v:e}");
        }
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut h = StreamingHistogram::new();
        h.record(f64::NAN);
        assert!(h.is_empty());
    }
}
