//! Canonical metric names shared across the workspace.
//!
//! Every producer and consumer of a metric references the same
//! constant, so a renamed counter is a compile error rather than a
//! silently forked time series. Names follow the Prometheus
//! convention: `snake_case`, `_total` suffix on monotonic counters.

/// Counter: successful MPO solves (one per [`decide`] call that
/// reached the solver).
///
/// [`decide`]: https://docs.rs/spotweb-core
pub const MPO_SOLVES_TOTAL: &str = "spotweb_mpo_solves_total";

/// Counter: MPO solves that returned an error (the policy fails
/// static, keeping the previous fleet).
pub const MPO_SOLVE_FAILURES_TOTAL: &str = "spotweb_mpo_solve_failures_total";

/// Counter: cumulative ADMM iterations across all MPO solves —
/// `iterations_total / solves_total` is the mean cost per solve, the
/// number the warm-start fast path is meant to shrink.
pub const ADMM_ITERATIONS_TOTAL: &str = "spotweb_admm_iterations_total";

/// Counter: solves that started from the previous interval's
/// primal/dual iterate (the receding-horizon warm-start path).
pub const MPO_WARM_SOLVES_TOTAL: &str = "spotweb_mpo_warm_solves_total";

/// Counter: solves that cold-started from the zero iterate (first
/// interval, or after [`reset_warm_start`]).
///
/// [`reset_warm_start`]: https://docs.rs/spotweb-core
pub const MPO_COLD_SOLVES_TOTAL: &str = "spotweb_mpo_cold_solves_total";

/// Counter: solves that reused the cached KKT factorization because
/// the market covariance (and problem dimensions) were unchanged —
/// only the linear cost was rebuilt.
pub const MPO_FACTOR_REUSE_TOTAL: &str = "spotweb_mpo_factor_reuse_total";

/// Histogram: ADMM iterations-to-convergence per solve.
pub const ADMM_ITERATIONS_HIST: &str = "spotweb_admm_iterations";

/// Timing (wall-clock store only, never the deterministic trace):
/// seconds per MPO solve including problem build.
pub const MPO_SOLVE_SECS: &str = "mpo_solve_secs";

/// Counter: decisions taken by a policy-zoo competitor (one per
/// `decide` call of the factory-built non-MPO policies; the MPO policy
/// reports [`MPO_SOLVES_TOTAL`] instead).
pub const POLICY_DECISIONS_TOTAL: &str = "spotweb_policy_decisions_total";

/// Counter: requests served to completion by the simulated service.
pub const REQUESTS_SERVED_TOTAL: &str = "spotweb_requests_served_total";

/// Counter: in-flight requests killed when their server was revoked
/// before completion (the failover cost Fig. 4a measures).
pub const REQUESTS_KILLED_IN_FLIGHT_TOTAL: &str = "spotweb_requests_killed_in_flight_total";

/// Histogram: end-to-end request latency in (simulated) seconds.
pub const REQUEST_LATENCY_SECONDS: &str = "spotweb_request_latency_seconds";

/// Gauge: servers currently allocated across every market.
pub const FLEET_SIZE: &str = "spotweb_fleet_size";

/// Counter: requests rejected by LB admission control while capacity
/// drained (surfaced per-scenario in ChaosReport).
pub const LB_ADMISSION_REJECTIONS_TOTAL: &str = "spotweb_lb_admission_rejections_total";

/// Counter: requests dropped because no backend was routable at all.
pub const LB_NO_BACKEND_DROPS_TOTAL: &str = "spotweb_lb_no_backend_drops_total";

/// Counter: market simulation steps executed.
pub const MARKET_STEPS_TOTAL: &str = "spotweb_market_steps_total";

/// Counter: server revocations issued by the simulated cloud.
pub const MARKET_REVOCATIONS_TOTAL: &str = "spotweb_market_revocations_total";

/// Counter: discrete events pushed onto the simulator's queue.
pub const SIM_EVENTS_SCHEDULED_TOTAL: &str = "spotweb_sim_events_scheduled_total";

/// Counter: discrete events popped and processed by the simulator.
pub const SIM_EVENTS_PROCESSED_TOTAL: &str = "spotweb_sim_events_processed_total";

/// Counters eligible for the interned fast path
/// ([`crate::sink::CounterHandle`]): the per-event counters the
/// request-level hot loops increment once (or more) per simulated
/// request. Each gets a dense slot indexed by its position here;
/// the slots are merged back into the ordinary registry on every
/// export, so interning never changes rendered output.
pub const INTERNED: &[&str] = &[
    REQUESTS_SERVED_TOTAL,
    REQUESTS_KILLED_IN_FLIGHT_TOTAL,
    LB_ADMISSION_REJECTIONS_TOTAL,
    LB_NO_BACKEND_DROPS_TOTAL,
    SIM_EVENTS_SCHEDULED_TOTAL,
    SIM_EVENTS_PROCESSED_TOTAL,
];

/// Stable dense id of an interned counter name, if it has one.
/// Resolved once at [`CounterHandle`] creation, never per increment.
///
/// [`CounterHandle`]: crate::sink::CounterHandle
pub fn interned_id(name: &str) -> Option<usize> {
    INTERNED.iter().position(|n| *n == name)
}

/// Histograms eligible for the interned fast path
/// ([`crate::sink::HistogramHandle`]): the per-request latency series
/// the simulator observes once per served request. Each name gets a
/// dedicated locked histogram that is the *authoritative* store for
/// that series — string-keyed [`observe`] calls for these names route
/// to the same slot, so the sample sequence is identical no matter
/// which path recorded it.
///
/// [`observe`]: crate::sink::TelemetrySink::observe
pub const HIST_INTERNED: &[&str] = &[REQUEST_LATENCY_SECONDS];

/// Stable dense id of an interned histogram name, if it has one.
pub fn interned_hist_id(name: &str) -> Option<usize> {
    HIST_INTERNED.iter().position(|n| *n == name)
}

// ---------------------------------------------------------------------------
// Profiler span names (crate::prof).
//
// Host-side wall-clock spans, not sim-clock trace spans: these name the
// phases of the *process* that `figures profile` attributes wall time,
// lock waits, and heap bytes to. `spotweb-lint` requires spans opened
// in `sim`/`lb`/`core` to use these constants (telemetry-name-constants
// rule), so the golden-locked span structure cannot drift via an
// inline-literal typo.
// ---------------------------------------------------------------------------

/// Span: one full-stack scenario run (`sim::runner::run_full_stack`).
pub const SPAN_RUNNER_RUN: &str = "runner.run";

/// Span: one billing interval of a run (policy decide, reconcile,
/// arrivals, drain all nest under it).
pub const SPAN_RUNNER_INTERVAL: &str = "runner.interval";

/// Span: control-timepoint work inside an interval — fault firings,
/// revocation warnings, `lb.tick`, interval-head policy + reconcile.
pub const SPAN_RUNNER_CONTROL_BATCH: &str = "runner.control_batch";

/// Span: the tight arrival loop between two control timepoints (route,
/// service start, in-loop completion drain).
pub const SPAN_RUNNER_ARRIVAL_LOOP: &str = "runner.arrival_loop";

/// Span: the end-of-interval / end-of-run completion drains (the
/// in-loop drain is accounted under [`SPAN_RUNNER_ARRIVAL_LOOP`]).
pub const SPAN_RUNNER_DRAIN: &str = "runner.drain";

/// Span: settling the interval's bill through the event-driven
/// billing ledger (`spotweb-market`'s `BillingLedger`) — O(live +
/// died) per interval, replacing the old all-backends scan.
pub const SPAN_RUNNER_BILLING: &str = "runner.billing";

/// Span: the end-of-interval monitor/telemetry rollup — reading the
/// O(1) monitor rates and emitting the interval summary. Measures the
/// tick itself, not instrumentation overhead (no window clone).
pub const SPAN_RUNNER_ROLLUP: &str = "runner.rollup";

/// Span: compacting a permanently dead backend out of the balancer and
/// the service array (`LoadBalancer::retire` + slot release) at the
/// control timepoint where its death fires.
pub const SPAN_RUNNER_COMPACT: &str = "runner.compact";

/// Span: one sweep worker thread's lifetime in
/// `sim::sweep::parallel_map` (count per profile = workers spawned).
pub const SPAN_SWEEP_WORKER: &str = "sweep.worker";

/// Span: one claimed task inside a sweep worker (count per worker =
/// that worker's task share; merged count = total tasks).
pub const SPAN_SWEEP_TASK: &str = "sweep.task";

/// Span: one multi-period portfolio optimization solve
/// (`core::mpo::MpoOptimizer::optimize`).
pub const SPAN_MPO_SOLVE: &str = "mpo.solve";

/// Span: one load-balancer route decision (`lb::balancer::route`);
/// entered once per simulated request — the hottest span.
pub const SPAN_LB_ROUTE: &str = "lb.route";
