//! Canonical metric names shared across the workspace.
//!
//! Every producer and consumer of a metric references the same
//! constant, so a renamed counter is a compile error rather than a
//! silently forked time series. Names follow the Prometheus
//! convention: `snake_case`, `_total` suffix on monotonic counters.

/// Counter: successful MPO solves (one per [`decide`] call that
/// reached the solver).
///
/// [`decide`]: https://docs.rs/spotweb-core
pub const MPO_SOLVES_TOTAL: &str = "spotweb_mpo_solves_total";

/// Counter: MPO solves that returned an error (the policy fails
/// static, keeping the previous fleet).
pub const MPO_SOLVE_FAILURES_TOTAL: &str = "spotweb_mpo_solve_failures_total";

/// Counter: cumulative ADMM iterations across all MPO solves —
/// `iterations_total / solves_total` is the mean cost per solve, the
/// number the warm-start fast path is meant to shrink.
pub const ADMM_ITERATIONS_TOTAL: &str = "spotweb_admm_iterations_total";

/// Counter: solves that started from the previous interval's
/// primal/dual iterate (the receding-horizon warm-start path).
pub const MPO_WARM_SOLVES_TOTAL: &str = "spotweb_mpo_warm_solves_total";

/// Counter: solves that cold-started from the zero iterate (first
/// interval, or after [`reset_warm_start`]).
///
/// [`reset_warm_start`]: https://docs.rs/spotweb-core
pub const MPO_COLD_SOLVES_TOTAL: &str = "spotweb_mpo_cold_solves_total";

/// Counter: solves that reused the cached KKT factorization because
/// the market covariance (and problem dimensions) were unchanged —
/// only the linear cost was rebuilt.
pub const MPO_FACTOR_REUSE_TOTAL: &str = "spotweb_mpo_factor_reuse_total";

/// Histogram: ADMM iterations-to-convergence per solve.
pub const ADMM_ITERATIONS_HIST: &str = "spotweb_admm_iterations";

/// Timing (wall-clock store only, never the deterministic trace):
/// seconds per MPO solve including problem build.
pub const MPO_SOLVE_SECS: &str = "mpo_solve_secs";
