//! Deterministic tracing layer: spans and typed events stamped with
//! the *simulation* clock, recorded into a bounded ring buffer and
//! exportable as byte-stable JSONL.
//!
//! Wall-clock time never enters a trace — timestamps come from the
//! discrete-event simulator, so the same seed and fault plan replay
//! to a byte-identical trace (see DESIGN.md, determinism contract).

use std::collections::VecDeque;

use crate::json::{json_f64, json_f64_array, json_string};
use crate::records::{DecisionRecord, DrainRecord, ForecastRecord};

/// Default ring-buffer capacity (events). Large enough for every
/// event of a multi-hour scenario replay; older events are dropped
/// (and counted) beyond this.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A typed trace event. Every variant renders to a flat JSON object
/// with a `kind` discriminator.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A named span opened (e.g. one control interval).
    SpanStart {
        /// Span id, unique within a trace.
        span: u64,
        /// Span name.
        name: String,
    },
    /// A named span closed.
    SpanEnd {
        /// Span id matching the corresponding start.
        span: u64,
        /// Span name (repeated for grep-ability).
        name: String,
    },
    /// An MPO solve completed.
    Decision(DecisionRecord),
    /// A predictor step compared forecast vs. actual.
    Forecast(ForecastRecord),
    /// A backend began draining (warning or decommission).
    Drain(DrainRecord),
    /// A backend died; sessions pinned to it were lost.
    BackendDeath {
        /// Backend id.
        backend: usize,
        /// Market index.
        market: usize,
        /// Sticky sessions lost with it.
        sessions_lost: usize,
    },
    /// A downed backend came back and began warming up.
    BackendRestore {
        /// Backend id.
        backend: usize,
        /// Market index.
        market: usize,
        /// Warm-up period before it serves again.
        warmup_secs: f64,
    },
    /// A replacement server was started for a revoked/expired one.
    ReplacementStarted {
        /// The backend being replaced.
        replaces: usize,
        /// The new backend id.
        backend: usize,
        /// Market the replacement was bought in.
        market: usize,
        /// Sim time the replacement finishes warming up.
        ready_at: f64,
    },
    /// A fault-plan entry fired.
    FaultInjected {
        /// Fault kind (e.g. `correlated_revocation`).
        fault: String,
        /// Human-readable detail.
        detail: String,
    },
    /// One market simulator step: the prices and failure
    /// probabilities every downstream decision saw.
    MarketTick {
        /// Monotonic market step index.
        step: u64,
        /// Spot price per market, $/hour.
        prices: Vec<f64>,
        /// Revocation probability per market.
        failure_probs: Vec<f64>,
    },
    /// End-of-interval rollup from the load-balancer monitor.
    IntervalSummary {
        /// Control interval index.
        interval: u64,
        /// Workload the policy observed at the interval start.
        observed_rps: f64,
        /// Fleet size (servers up or warming) at the interval end.
        fleet_size: u32,
        /// Arrival rate over the monitor window, requests/second.
        arrival_rate: f64,
        /// Completion rate over the monitor window.
        throughput: f64,
        /// Fraction of arrivals dropped in the window.
        drop_rate: f64,
        /// Median request latency in the window.
        p50_latency: f64,
        /// 99th-percentile request latency in the window.
        p99_latency: f64,
    },
    /// Free-form annotation.
    Note {
        /// Short event name.
        name: String,
        /// Detail text.
        detail: String,
    },
}

impl TraceEvent {
    /// The `kind` discriminator string used in JSONL output.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SpanStart { .. } => "span_start",
            TraceEvent::SpanEnd { .. } => "span_end",
            TraceEvent::Decision(_) => "decision",
            TraceEvent::Forecast(_) => "forecast",
            TraceEvent::Drain(_) => "drain",
            TraceEvent::BackendDeath { .. } => "backend_death",
            TraceEvent::BackendRestore { .. } => "backend_restore",
            TraceEvent::ReplacementStarted { .. } => "replacement_started",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::MarketTick { .. } => "market_tick",
            TraceEvent::IntervalSummary { .. } => "interval_summary",
            TraceEvent::Note { .. } => "note",
        }
    }

    fn fields_json(&self) -> String {
        match self {
            TraceEvent::SpanStart { span, name } | TraceEvent::SpanEnd { span, name } => {
                format!("\"span\":{span},\"name\":{}", json_string(name))
            }
            TraceEvent::Decision(r) => r.to_json_fields(),
            TraceEvent::Forecast(r) => r.to_json_fields(),
            TraceEvent::Drain(r) => r.to_json_fields(),
            TraceEvent::BackendDeath {
                backend,
                market,
                sessions_lost,
            } => {
                format!(
                    "\"backend\":{backend},\"market\":{market},\"sessions_lost\":{sessions_lost}"
                )
            }
            TraceEvent::BackendRestore {
                backend,
                market,
                warmup_secs,
            } => format!(
                "\"backend\":{backend},\"market\":{market},\"warmup_secs\":{}",
                json_f64(*warmup_secs)
            ),
            TraceEvent::ReplacementStarted {
                replaces,
                backend,
                market,
                ready_at,
            } => format!(
                "\"replaces\":{replaces},\"backend\":{backend},\"market\":{market},\"ready_at\":{}",
                json_f64(*ready_at)
            ),
            TraceEvent::FaultInjected { fault, detail } => format!(
                "\"fault\":{},\"detail\":{}",
                json_string(fault),
                json_string(detail)
            ),
            TraceEvent::MarketTick {
                step,
                prices,
                failure_probs,
            } => format!(
                "\"step\":{step},\"prices\":{},\"failure_probs\":{}",
                json_f64_array(prices),
                json_f64_array(failure_probs)
            ),
            TraceEvent::IntervalSummary {
                interval,
                observed_rps,
                fleet_size,
                arrival_rate,
                throughput,
                drop_rate,
                p50_latency,
                p99_latency,
            } => format!(
                "\"interval\":{interval},\"observed_rps\":{},\"fleet_size\":{fleet_size},\
                 \"arrival_rate\":{},\"throughput\":{},\"drop_rate\":{},\
                 \"p50_latency\":{},\"p99_latency\":{}",
                json_f64(*observed_rps),
                json_f64(*arrival_rate),
                json_f64(*throughput),
                json_f64(*drop_rate),
                json_f64(*p50_latency),
                json_f64(*p99_latency)
            ),
            TraceEvent::Note { name, detail } => format!(
                "\"name\":{},\"detail\":{}",
                json_string(name),
                json_string(detail)
            ),
        }
    }
}

/// A trace event stamped with the sim clock and a sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedEvent {
    /// Simulation time the event was emitted at.
    pub t: f64,
    /// Monotonic sequence number (total order within a run).
    pub seq: u64,
    /// The event payload.
    pub event: TraceEvent,
}

impl StampedEvent {
    /// Render as one canonical JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"t\":{},\"seq\":{},\"kind\":{},{}}}",
            json_f64(self.t),
            self.seq,
            json_string(self.event.kind()),
            self.event.fields_json()
        )
    }
}

/// Bounded ring buffer of stamped trace events plus span bookkeeping.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    events: VecDeque<StampedEvent>,
    seq: u64,
    dropped: u64,
    next_span: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            seq: 0,
            dropped: 0,
            next_span: 0,
        }
    }

    /// Record an event at sim time `t`.
    pub fn record(&mut self, t: f64, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(StampedEvent {
            t,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Open a span; returns its id. The caller passes the id back to
    /// [`Tracer::span_end`].
    pub fn span_start(&mut self, t: f64, name: &str) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        self.record(
            t,
            TraceEvent::SpanStart {
                span: id,
                name: name.to_string(),
            },
        );
        id
    }

    /// Close a span opened with [`Tracer::span_start`].
    pub fn span_end(&mut self, t: f64, id: u64, name: &str) {
        self.record(
            t,
            TraceEvent::SpanEnd {
                span: id,
                name: name.to_string(),
            },
        );
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &StampedEvent> {
        self.events.iter()
    }

    /// Number of events evicted by the ring-buffer bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Export the retained events as byte-stable JSONL (one event per
    /// line, trailing newline).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut tr = Tracer::with_capacity(2);
        for i in 0..5 {
            tr.record(
                i as f64,
                TraceEvent::Note {
                    name: format!("n{i}"),
                    detail: String::new(),
                },
            );
        }
        assert_eq!(tr.dropped(), 3);
        assert_eq!(tr.total_recorded(), 5);
        let seqs: Vec<u64> = tr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn spans_nest_by_id() {
        let mut tr = Tracer::default();
        let a = tr.span_start(0.0, "interval_0");
        let b = tr.span_start(1.0, "solve");
        tr.span_end(2.0, b, "solve");
        tr.span_end(3.0, a, "interval_0");
        assert_ne!(a, b);
        let jsonl = tr.export_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"kind\":\"span_start\""));
        assert!(jsonl.contains("\"kind\":\"span_end\""));
    }

    #[test]
    fn jsonl_lines_are_self_contained_objects() {
        let mut tr = Tracer::default();
        tr.record(
            1.5,
            TraceEvent::BackendDeath {
                backend: 3,
                market: 1,
                sessions_lost: 7,
            },
        );
        let line = tr.export_jsonl();
        assert_eq!(
            line,
            "{\"t\":1.5,\"seq\":0,\"kind\":\"backend_death\",\"backend\":3,\
             \"market\":1,\"sessions_lost\":7}\n"
        );
    }
}
