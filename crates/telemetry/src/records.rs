//! Decision-explain records: structured "why did the system do that"
//! payloads emitted at the three decision points of the SpotWeb stack
//! — the MPO solve (which markets, at what risk-adjusted cost), the
//! workload predictor (forecast vs. actual vs. CI padding), and the
//! load balancer's revocation-warning drain (per-backend migration
//! timeline).

use crate::json::{json_f64, json_f64_array, json_string};

/// One market's evaluation inside a [`DecisionRecord`]: the inputs
/// the optimizer saw and what it decided, including why a market was
/// rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketEval {
    /// Market index in the catalog.
    pub market: usize,
    /// Human-readable market name.
    pub name: String,
    /// Spot price ($/hour) the horizon opened at.
    pub price: f64,
    /// Per-server capacity in requests/second.
    pub capacity_rps: f64,
    /// Expected cost per million requests at the current price.
    pub cost_per_mreq: f64,
    /// Revocation probability for the first horizon step.
    pub revocation_prob: f64,
    /// Diagonal of the risk (covariance) matrix for this market.
    pub risk: f64,
    /// Fraction of the workload allocated here by the first step of
    /// the plan.
    pub allocation: f64,
    /// Concrete server count the allocation was rounded to.
    pub servers: u32,
    /// Whether the market made it into the executed allocation.
    pub chosen: bool,
    /// Why the market was chosen or rejected.
    pub reason: String,
}

impl MarketEval {
    fn to_json(&self) -> String {
        format!(
            "{{\"market\":{},\"name\":{},\"price\":{},\"capacity_rps\":{},\
             \"cost_per_mreq\":{},\"revocation_prob\":{},\"risk\":{},\
             \"allocation\":{},\"servers\":{},\"chosen\":{},\"reason\":{}}}",
            self.market,
            json_string(&self.name),
            json_f64(self.price),
            json_f64(self.capacity_rps),
            json_f64(self.cost_per_mreq),
            json_f64(self.revocation_prob),
            json_f64(self.risk),
            json_f64(self.allocation),
            self.servers,
            self.chosen,
            json_string(&self.reason),
        )
    }
}

/// Emitted once per MPO solve: everything needed to audit the
/// portfolio decision — horizon inputs, per-market scores, the chosen
/// allocation, and the rejected alternatives with reasons.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Control interval index.
    pub interval: u64,
    /// Policy name (e.g. `spotweb-mpo`).
    pub policy: String,
    /// Workload the policy observed at the start of the interval.
    pub observed_rps: f64,
    /// Horizon length (number of lookahead intervals).
    pub horizon: usize,
    /// CI-padded workload forecast over the horizon.
    pub predicted_workload: Vec<f64>,
    /// Objective value at the solution.
    pub objective: f64,
    /// Solver iterations used.
    pub iterations: usize,
    /// Whether the solver converged (fail-static reuses the previous
    /// allocation and reports `false`).
    pub solved: bool,
    /// Sum of the executed first-step allocation (≥ 1 means full
    /// coverage plus over-provisioning headroom).
    pub total_allocation: f64,
    /// Per-market evaluation, catalog order.
    pub markets: Vec<MarketEval>,
}

impl DecisionRecord {
    /// Inner JSON fields (no braces), for embedding in a trace line.
    pub fn to_json_fields(&self) -> String {
        let markets: Vec<String> = self.markets.iter().map(|m| m.to_json()).collect();
        format!(
            "\"interval\":{},\"policy\":{},\"observed_rps\":{},\"horizon\":{},\
             \"predicted_workload\":{},\"objective\":{},\"iterations\":{},\
             \"solved\":{},\"total_allocation\":{},\"markets\":[{}]",
            self.interval,
            json_string(&self.policy),
            json_f64(self.observed_rps),
            self.horizon,
            json_f64_array(&self.predicted_workload),
            json_f64(self.objective),
            self.iterations,
            self.solved,
            json_f64(self.total_allocation),
            markets.join(","),
        )
    }
}

/// Emitted once per predictor step: the forecast made one step ago,
/// the CI-padded value capacity was actually provisioned for, and the
/// actual that materialised.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastRecord {
    /// What is being forecast (e.g. `workload_rps`).
    pub quantity: String,
    /// Predictor step index (number of observations so far).
    pub step: u64,
    /// The value that actually materialised.
    pub actual: f64,
    /// The point forecast made one step earlier for this step.
    pub predicted: f64,
    /// The CI-padded (upper-bound) forecast used for provisioning.
    pub padded: f64,
    /// Forecast error, `actual - predicted`.
    pub error: f64,
    /// CI padding applied, `padded - predicted`.
    pub ci_pad: f64,
}

impl ForecastRecord {
    /// Inner JSON fields (no braces), for embedding in a trace line.
    pub fn to_json_fields(&self) -> String {
        format!(
            "\"quantity\":{},\"step\":{},\"actual\":{},\"predicted\":{},\
             \"padded\":{},\"error\":{},\"ci_pad\":{}",
            json_string(&self.quantity),
            self.step,
            json_f64(self.actual),
            json_f64(self.predicted),
            json_f64(self.padded),
            json_f64(self.error),
            json_f64(self.ci_pad),
        )
    }
}

/// Emitted when a backend starts draining (revocation warning or
/// planned decommission): the per-backend migration timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainRecord {
    /// Backend being drained.
    pub backend: usize,
    /// Market the backend belongs to.
    pub market: usize,
    /// `"revocation"` (finite warning) or `"decommission"` (planned).
    pub kind: String,
    /// Warning window in seconds (`null` in JSON for a planned
    /// decommission, which has no deadline).
    pub warning_secs: f64,
    /// Absolute sim time the backend dies (`null` when unbounded).
    pub deadline: f64,
    /// Sessions migrated to surviving backends inside the budget.
    pub sessions_migrated: usize,
    /// Sessions left in place (vanilla mode, or over budget).
    pub sessions_stayed: usize,
    /// Capacity lost to the fleet, requests/second.
    pub capacity_gap_rps: f64,
}

impl DrainRecord {
    /// Inner JSON fields (no braces), for embedding in a trace line.
    pub fn to_json_fields(&self) -> String {
        format!(
            "\"backend\":{},\"market\":{},\"drain_kind\":{},\"warning_secs\":{},\
             \"deadline\":{},\"sessions_migrated\":{},\"sessions_stayed\":{},\
             \"capacity_gap_rps\":{}",
            self.backend,
            self.market,
            json_string(&self.kind),
            json_f64(self.warning_secs),
            json_f64(self.deadline),
            self.sessions_migrated,
            self.sessions_stayed,
            json_f64(self.capacity_gap_rps),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_record_renders_rejections() {
        let rec = DecisionRecord {
            interval: 3,
            policy: "spotweb-mpo".to_string(),
            observed_rps: 600.0,
            horizon: 4,
            predicted_workload: vec![610.0, 620.0],
            objective: 1.25,
            iterations: 40,
            solved: true,
            total_allocation: 1.1,
            markets: vec![MarketEval {
                market: 0,
                name: "m4.large".to_string(),
                price: 0.05,
                capacity_rps: 80.0,
                cost_per_mreq: 0.17,
                revocation_prob: 0.01,
                risk: 0.02,
                allocation: 0.0,
                servers: 0,
                chosen: false,
                reason: "allocation 0.000 below min 0.005".to_string(),
            }],
        };
        let json = format!("{{{}}}", rec.to_json_fields());
        assert!(json.contains("\"solved\":true"));
        assert!(json.contains("\"chosen\":false"));
        assert!(json.contains("below min"));
        assert!(json.contains("\"predicted_workload\":[610.0,620.0]"));
    }

    #[test]
    fn drain_record_null_deadline_for_decommission() {
        let rec = DrainRecord {
            backend: 2,
            market: 1,
            kind: "decommission".to_string(),
            warning_secs: f64::INFINITY,
            deadline: f64::INFINITY,
            sessions_migrated: 10,
            sessions_stayed: 0,
            capacity_gap_rps: 160.0,
        };
        let json = format!("{{{}}}", rec.to_json_fields());
        assert!(json.contains("\"warning_secs\":null"));
        assert!(json.contains("\"deadline\":null"));
    }
}
