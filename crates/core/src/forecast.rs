//! The forecast bundle the optimizer consumes.
//!
//! One bundle holds, for a horizon of `H` intervals: the predicted peak
//! workload `λ̂(τ)`, and per-market predicted prices and revocation
//! probabilities. §5.1: "When the optimizer runs, it polls the
//! predictors, to get new predictions for the future request arrival
//! rates, failure rates, and the future per request price" —
//! [`ForecastBundle::poll`] is that call.

use spotweb_predict::SeriesPredictor;

/// Forecasts over a horizon `H` for `N` markets.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastBundle {
    /// `λ̂[τ]`, predicted peak request rate (req/s) in interval `t+τ+1`.
    pub workload: Vec<f64>,
    /// `prices[τ][i]`, predicted $/hour of market `i` in interval `t+τ+1`.
    pub prices: Vec<Vec<f64>>,
    /// `failures[τ][i]`, predicted revocation probability.
    pub failures: Vec<Vec<f64>>,
}

impl ForecastBundle {
    /// Horizon length.
    pub fn horizon(&self) -> usize {
        self.workload.len()
    }

    /// Market count (0 for an empty horizon).
    pub fn markets(&self) -> usize {
        self.prices.first().map_or(0, |p| p.len())
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let h = self.horizon();
        if self.prices.len() != h || self.failures.len() != h {
            return Err("prices/failures must cover the workload horizon".into());
        }
        let n = self.markets();
        for (tau, (p, f)) in self.prices.iter().zip(&self.failures).enumerate() {
            if p.len() != n || f.len() != n {
                return Err(format!("ragged market dimension at tau={tau}"));
            }
            if p.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(format!("bad price at tau={tau}"));
            }
            if f.iter().any(|v| !v.is_finite() || !(0.0..=1.0).contains(v)) {
                return Err(format!("failure prob out of [0,1] at tau={tau}"));
            }
        }
        if self.workload.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("bad workload forecast".into());
        }
        Ok(())
    }

    /// Poll a workload predictor and per-market price & failure
    /// predictors for an `h`-step bundle.
    pub fn poll(
        workload: &dyn SeriesPredictor,
        prices: &[Box<dyn SeriesPredictor>],
        failures: &[Box<dyn SeriesPredictor>],
        h: usize,
    ) -> ForecastBundle {
        assert_eq!(
            prices.len(),
            failures.len(),
            "one predictor pair per market"
        );
        let n = prices.len();
        let lam = workload.predict(h);
        let per_market_prices: Vec<Vec<f64>> = prices.iter().map(|p| p.predict(h)).collect();
        let per_market_failures: Vec<Vec<f64>> = failures.iter().map(|p| p.predict(h)).collect();
        // Transpose to τ-major.
        let mut price_rows = vec![vec![0.0; n]; h];
        let mut failure_rows = vec![vec![0.0; n]; h];
        for i in 0..n {
            for tau in 0..h {
                price_rows[tau][i] = per_market_prices[i][tau];
                failure_rows[tau][i] = per_market_failures[i][tau].clamp(0.0, 1.0);
            }
        }
        ForecastBundle {
            workload: lam,
            prices: price_rows,
            failures: failure_rows,
        }
    }

    /// Build a *flat* bundle: the same workload/prices/failures repeated
    /// across the horizon (the reactive-predictor configuration, and the
    /// natural input for SPO).
    pub fn flat(workload: f64, prices: &[f64], failures: &[f64], h: usize) -> ForecastBundle {
        assert_eq!(prices.len(), failures.len());
        ForecastBundle {
            workload: vec![workload; h],
            prices: vec![prices.to_vec(); h],
            failures: vec![failures.to_vec(); h],
        }
    }

    /// Build an *oracle* bundle from true future series.
    /// `future_workload[τ]`, `future_prices[τ][i]` for `τ ∈ 0..h`.
    pub fn oracle(
        future_workload: &[f64],
        future_prices: &[Vec<f64>],
        failures: &[f64],
        h: usize,
    ) -> ForecastBundle {
        let take = |idx: usize, len: usize| idx.min(len.saturating_sub(1));
        let workload = (0..h)
            .map(|tau| future_workload[take(tau, future_workload.len())])
            .collect();
        let prices = (0..h)
            .map(|tau| future_prices[take(tau, future_prices.len())].clone())
            .collect();
        ForecastBundle {
            workload,
            prices,
            failures: vec![failures.to_vec(); h],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_predict::ReactivePredictor;

    #[test]
    fn flat_bundle_shape() {
        let b = ForecastBundle::flat(100.0, &[1.0, 2.0], &[0.1, 0.2], 3);
        assert_eq!(b.horizon(), 3);
        assert_eq!(b.markets(), 2);
        assert!(b.validate().is_ok());
        assert_eq!(b.prices[2], vec![1.0, 2.0]);
    }

    #[test]
    fn poll_transposes() {
        let mut w = ReactivePredictor::new();
        w.observe(500.0);
        let mut p0 = ReactivePredictor::new();
        p0.observe(1.0);
        let mut p1 = ReactivePredictor::new();
        p1.observe(2.0);
        let mut f0 = ReactivePredictor::new();
        f0.observe(0.05);
        let mut f1 = ReactivePredictor::new();
        f1.observe(0.10);
        let prices: Vec<Box<dyn SeriesPredictor>> = vec![Box::new(p0), Box::new(p1)];
        let fails: Vec<Box<dyn SeriesPredictor>> = vec![Box::new(f0), Box::new(f1)];
        let b = ForecastBundle::poll(&w, &prices, &fails, 2);
        assert_eq!(b.workload, vec![500.0, 500.0]);
        assert_eq!(b.prices[0], vec![1.0, 2.0]);
        assert_eq!(b.failures[1], vec![0.05, 0.10]);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn oracle_clamps_past_end() {
        let b = ForecastBundle::oracle(&[10.0, 20.0], &[vec![1.0], vec![2.0]], &[0.0], 4);
        assert_eq!(b.workload, vec![10.0, 20.0, 20.0, 20.0]);
        assert_eq!(b.prices[3], vec![2.0]);
    }

    #[test]
    fn validate_rejects_bad_prob() {
        let mut b = ForecastBundle::flat(1.0, &[1.0], &[0.5], 1);
        b.failures[0][0] = 1.5;
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_rejects_ragged() {
        let mut b = ForecastBundle::flat(1.0, &[1.0, 2.0], &[0.0, 0.0], 2);
        b.prices[1] = vec![1.0];
        assert!(b.validate().is_err());
    }
}
