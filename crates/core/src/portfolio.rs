//! Translation of the paper's MPO formulation (Eq. 3–10) into the
//! `spotweb-solver` QP standard form.
//!
//! Decision vector `x` stacks the per-interval fractional allocations:
//! `x[τ·N + i] = A[τ][i]`, the share of predicted traffic served by
//! market `i` in interval `t+τ+1`.
//!
//! * Provisioning cost (Eq. 3): `Σ_τ Σ_i A[τ][i]·λ̂(τ)·C_i(τ)·Δt`,
//!   with `C_i(τ) = price_i(τ)/r_i` the per-request cost and `Δt` the
//!   interval length in hours — a **linear** term.
//! * SLA-violation cost (Eq. 4): `P·Σ A[τ][i]·f_i(τ)·λ̂(τ)·L` — the
//!   component of Eq. 4 that depends on the allocation. (The
//!   misprediction component `λ − λ̂` does not depend on `A`; it is
//!   handled by the predictor's CI padding, §4.3.) Also linear.
//! * Risk (Eq. 5): `α·A(τ)ᵀMA(τ)` — quadratic, `M` PSD.
//! * Churn: `γ·‖A(τ) − A(τ−1)‖²` with `A(t−1)` the currently-running
//!   allocation — quadratic coupling between adjacent intervals.
//! * Constraints (Eq. 7–10): per-market boxes `0 ≤ A[τ][i] ≤ a_max` and
//!   per-interval budget `A_min ≤ Σ_i A[τ][i] ≤ A_max`.

use spotweb_linalg::Matrix;
use spotweb_market::Catalog;
use spotweb_solver::QpProblem;

use crate::config::SpotWebConfig;
use crate::forecast::ForecastBundle;
use crate::{CoreError, Result};

/// A built portfolio QP plus the metadata to interpret its solution.
#[derive(Debug, Clone)]
pub struct PortfolioProblem {
    /// The QP in standard form.
    pub qp: QpProblem,
    /// Market count `N`.
    pub markets: usize,
    /// Horizon `H`.
    pub horizon: usize,
}

impl PortfolioProblem {
    /// Build the QP. `covariance` is the `N×N` revocation covariance
    /// `M`; `prev_allocation` is the allocation currently running
    /// (length `N`, used by the churn term; pass zeros at cold start).
    pub fn build(
        catalog: &Catalog,
        forecast: &ForecastBundle,
        covariance: &Matrix,
        prev_allocation: &[f64],
        config: &SpotWebConfig,
    ) -> Result<PortfolioProblem> {
        config.validate().map_err(CoreError::Dimension)?;
        forecast.validate().map_err(CoreError::Dimension)?;
        let n = catalog.len();
        let h = config.horizon;
        if forecast.horizon() < h {
            return Err(CoreError::Dimension(format!(
                "forecast horizon {} < config horizon {h}",
                forecast.horizon()
            )));
        }
        if forecast.markets() != n {
            return Err(CoreError::Dimension(format!(
                "forecast markets {} != catalog {n}",
                forecast.markets()
            )));
        }
        if covariance.rows() != n || covariance.cols() != n {
            return Err(CoreError::Dimension("covariance must be N×N".into()));
        }
        if prev_allocation.len() != n {
            return Err(CoreError::Dimension(
                "prev_allocation must have one entry per market".into(),
            ));
        }

        let nv = n * h;

        // ---- Quadratic part P (in ½xᵀPx convention → factor 2). ----
        let mut p = Matrix::zeros(nv, nv);
        // Risk blocks: 2α·M on each interval's diagonal block.
        let risk_block = covariance.scaled(2.0 * config.alpha);
        for tau in 0..h {
            p.add_block(tau * n, tau * n, &risk_block);
        }
        // Churn: γ Σ_τ ‖A(τ) − A(τ−1)‖².
        let g = config.churn_gamma;
        if g > 0.0 {
            for tau in 0..h {
                for i in 0..n {
                    let d = tau * n + i;
                    // A(τ) appears in the τ-th difference...
                    p[(d, d)] += 2.0 * g;
                    // ...and in the (τ+1)-th difference, when it exists.
                    if tau + 1 < h {
                        p[(d, d)] += 2.0 * g;
                        let e = (tau + 1) * n + i;
                        p[(d, e)] -= 2.0 * g;
                        p[(e, d)] -= 2.0 * g;
                    }
                }
            }
        }

        // ---- Linear part q. ----
        let q = build_linear_cost(catalog, forecast, prev_allocation, config)?;

        // ---- Constraints. ----
        // Rows: per-τ per-market boxes (N·H), then per-τ budgets (H).
        let m_rows = nv + h;
        let mut a = Matrix::zeros(m_rows, nv);
        let mut l = vec![0.0; m_rows];
        let mut u = vec![0.0; m_rows];
        for tau in 0..h {
            for i in 0..n {
                let row = tau * n + i;
                a[(row, tau * n + i)] = 1.0;
                l[row] = 0.0;
                u[row] = config.a_max_per_market;
            }
        }
        for tau in 0..h {
            let row = nv + tau;
            for i in 0..n {
                a[(row, tau * n + i)] = 1.0;
            }
            l[row] = config.a_min;
            u[row] = config.a_max_total;
        }

        let qp = QpProblem::new(p, q, a, l, u)?;
        Ok(PortfolioProblem {
            qp,
            markets: n,
            horizon: h,
        })
    }

    /// Split a flat QP solution into per-interval allocation rows
    /// (`result[τ][i] = A[τ][i]`), clamping solver jitter into bounds.
    pub fn unpack(&self, x: &[f64]) -> Vec<Vec<f64>> {
        unpack_plan(x, self.markets, self.horizon)
    }
}

/// Split a flat `N·H` solution vector into per-interval allocation
/// rows (`result[τ][i] = A[τ][i]`), clamping solver jitter below zero
/// into bounds. Free-standing so the optimizer's factor-reuse fast
/// path (which skips building a [`PortfolioProblem`]) can unpack too.
pub fn unpack_plan(x: &[f64], markets: usize, horizon: usize) -> Vec<Vec<f64>> {
    assert_eq!(x.len(), markets * horizon);
    (0..horizon)
        .map(|tau| {
            x[tau * markets..(tau + 1) * markets]
                .iter()
                .map(|v| v.max(0.0))
                .collect()
        })
        .collect()
}

/// Assemble the linear cost `q` alone — the part of the QP that
/// changes *every* interval (fresh price/workload/failure forecasts
/// and the churn cross-term with the currently running allocation),
/// while `P` and the constraint matrix change only when the covariance
/// or the configuration do. [`PortfolioProblem::build`] calls this;
/// the optimizer's factor-reuse fast path rebuilds only this vector
/// and feeds it to the cached solver via `update_linear_cost`.
pub fn build_linear_cost(
    catalog: &Catalog,
    forecast: &ForecastBundle,
    prev_allocation: &[f64],
    config: &SpotWebConfig,
) -> Result<Vec<f64>> {
    forecast.validate().map_err(CoreError::Dimension)?;
    let n = catalog.len();
    let h = config.horizon;
    if forecast.horizon() < h {
        return Err(CoreError::Dimension(format!(
            "forecast horizon {} < config horizon {h}",
            forecast.horizon()
        )));
    }
    if forecast.markets() != n {
        return Err(CoreError::Dimension(format!(
            "forecast markets {} != catalog {n}",
            forecast.markets()
        )));
    }
    if prev_allocation.len() != n {
        return Err(CoreError::Dimension(
            "prev_allocation must have one entry per market".into(),
        ));
    }

    let interval_hours = config.interval_secs / 3600.0;
    let mut q = vec![0.0; n * h];
    for tau in 0..h {
        let lam = forecast.workload[tau];
        for (i, market) in catalog.markets().iter().enumerate() {
            let r = market.capacity_rps();
            let per_request_cost = forecast.prices[tau][i] / r;
            let provisioning = lam * per_request_cost * interval_hours;
            let sla = config.penalty_per_request
                * forecast.failures[tau][i]
                * lam
                * config.long_running_fraction;
            q[tau * n + i] = provisioning + sla;
        }
    }
    // Churn cross-term with the fixed previous allocation:
    // γ(A(0) − A_prev)² contributes −2γ·A_prev to q(0).
    let g = config.churn_gamma;
    if g > 0.0 {
        for i in 0..n {
            q[i] -= 2.0 * g * prev_allocation[i];
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_market::Catalog;

    fn setup() -> (Catalog, ForecastBundle, Matrix, SpotWebConfig) {
        let catalog = Catalog::fig5_three_markets();
        let forecast = ForecastBundle::flat(1000.0, &[6.0, 1.0, 1.0], &[0.04, 0.04, 0.04], 4);
        let m = Matrix::identity(3).scaled(1e-4);
        (catalog, forecast, m, SpotWebConfig::default())
    }

    #[test]
    fn builds_expected_dimensions() {
        let (c, f, m, cfg) = setup();
        let p = PortfolioProblem::build(&c, &f, &m, &[0.0; 3], &cfg).unwrap();
        assert_eq!(p.qp.num_vars(), 12);
        assert_eq!(p.qp.num_constraints(), 12 + 4);
        assert_eq!(p.markets, 3);
        assert_eq!(p.horizon, 4);
    }

    #[test]
    fn linear_cost_matches_hand_computation() {
        let (c, f, m, mut cfg) = setup();
        cfg.churn_gamma = 0.0;
        let p = PortfolioProblem::build(&c, &f, &m, &[0.0; 3], &cfg).unwrap();
        // Market 0: price 6 $/h, r = 1920 → C = 0.003125 $/h per req/s;
        // λ = 1000, Δt = 1 h → q = 3.125. L = 0 → no SLA term.
        assert!((p.qp.q[0] - 1000.0 * 6.0 / 1920.0).abs() < 1e-12);
    }

    #[test]
    fn sla_term_enters_with_positive_l() {
        let (c, f, m, mut cfg) = setup();
        cfg.churn_gamma = 0.0;
        cfg.long_running_fraction = 0.5;
        let p = PortfolioProblem::build(&c, &f, &m, &[0.0; 3], &cfg).unwrap();
        let provisioning = 1000.0 * 6.0 / 1920.0;
        let sla = 0.02 * 0.04 * 1000.0 * 0.5;
        assert!((p.qp.q[0] - (provisioning + sla)).abs() < 1e-12);
    }

    #[test]
    fn churn_couples_adjacent_intervals() {
        let (c, f, m, cfg) = setup();
        let p = PortfolioProblem::build(&c, &f, &m, &[0.2, 0.0, 0.0], &cfg).unwrap();
        let g = cfg.churn_gamma;
        // Off-diagonal coupling between A[0][0] and A[1][0].
        assert!((p.qp.p[(0, 3)] + 2.0 * g).abs() < 1e-12);
        // Previous allocation shows up in q[0].
        let base = 1000.0 * 6.0 / 1920.0;
        assert!((p.qp.q[0] - (base - 2.0 * g * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn budget_rows_bound_totals() {
        let (c, f, m, cfg) = setup();
        let p = PortfolioProblem::build(&c, &f, &m, &[0.0; 3], &cfg).unwrap();
        let row = 12; // first budget row
        assert_eq!(p.qp.l[row], cfg.a_min);
        assert_eq!(p.qp.u[row], cfg.a_max_total);
    }

    #[test]
    fn dimension_errors_detected() {
        let (c, f, m, cfg) = setup();
        assert!(PortfolioProblem::build(&c, &f, &m, &[0.0; 2], &cfg).is_err());
        let bad_m = Matrix::identity(2);
        assert!(PortfolioProblem::build(&c, &f, &bad_m, &[0.0; 3], &cfg).is_err());
        let short = ForecastBundle::flat(1.0, &[1.0, 1.0, 1.0], &[0.0; 3], 2);
        assert!(PortfolioProblem::build(&c, &short, &m, &[0.0; 3], &cfg).is_err());
    }

    #[test]
    fn unpack_round_trips() {
        let (c, f, m, cfg) = setup();
        let p = PortfolioProblem::build(&c, &f, &m, &[0.0; 3], &cfg).unwrap();
        let x: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        let rows = p.unpack(&x);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1][0], 3.0 / 12.0);
    }
}
