//! Cloud Index Tracking (arXiv:1809.03110): hold the spot *index*
//! instead of optimizing against it.
//!
//! The strategy's pitch is predictability, not minimal cost: a
//! portfolio that tracks the aggregate spot market pays the
//! market-average price, whose variance is far below any single
//! market's. The target is the capacity index
//! ([`spotweb_market::index::spot_index_weights`]) **tilted by relative
//! per-request cost**: market `i`'s instantaneous weight is
//! `index_i · (mean per-request cost / per-request cost_i)`, so when
//! every market charges the market-average rate the portfolio *is* the
//! index, and markets trading cheap (expensive) relative to the average
//! get over- (under-)weighted in proportion. Target weights are
//! EWMA-smoothed ([`spotweb_predict::index::IndexWeightTracker`]) so
//! transient price wiggles do not churn servers — the tracking analogue
//! of rebalancing bands.

use spotweb_market::{spot_index_weights, Catalog};
use spotweb_predict::index::IndexWeightTracker;
use spotweb_telemetry::{names, TelemetrySink};

use crate::allocation::to_server_counts;
use crate::config::ZooConfig;
use crate::policy::{Policy, PolicyObservation};

/// The index-tracking competitor.
pub struct IndexTrackingPolicy {
    tracker: IndexWeightTracker,
    headroom: f64,
    min_allocation: f64,
    weights: Vec<f64>,
    telemetry: TelemetrySink,
}

impl IndexTrackingPolicy {
    /// Build with the zoo config's EWMA gain and headroom.
    pub fn new(zoo: &ZooConfig, min_allocation: f64, markets: usize) -> Self {
        IndexTrackingPolicy {
            tracker: IndexWeightTracker::new(zoo.index_ewma_beta),
            headroom: zoo.index_headroom,
            min_allocation,
            weights: vec![0.0; markets],
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (counts one decision per `decide`).
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The fractional allocation of the last decision (already scaled
    /// by the headroom, so it sums to `headroom`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Policy for IndexTrackingPolicy {
    fn name(&self) -> &str {
        "index-tracking"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        self.telemetry.count(names::POLICY_DECISIONS_TOTAL, 1);
        // Instantaneous target: the capacity index tilted by each
        // market's per-request cost relative to the mean (tilt 1.0
        // everywhere = hold the index exactly).
        let index = spot_index_weights(catalog);
        let n = catalog.len();
        let per_req: Vec<f64> = (0..n)
            .map(|i| obs.prices[i] / catalog.market(i).capacity_rps())
            .collect();
        let priced = per_req.iter().filter(|c| **c > 0.0).count();
        let mean_cost = if priced > 0 {
            per_req.iter().filter(|c| **c > 0.0).sum::<f64>() / priced as f64
        } else {
            0.0
        };
        let raw: Vec<f64> = index
            .iter()
            .zip(&per_req)
            .map(|(&w, &c)| if c > 0.0 { w * (mean_cost / c) } else { 0.0 })
            .collect();
        let total: f64 = raw.iter().sum();
        let instant: Vec<f64> = if total > 0.0 {
            raw.iter().map(|x| x / total).collect()
        } else {
            index
        };
        self.tracker.observe(&instant);
        let smoothed = self.tracker.weights();
        self.weights = smoothed.iter().map(|w| w * self.headroom).collect();

        let lambda = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload);
        to_server_counts(catalog, &self.weights, lambda, self.min_allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Matrix;

    fn obs<'a>(prices: &'a [f64], failures: &'a [f64], cov: &'a Matrix) -> PolicyObservation<'a> {
        PolicyObservation {
            interval: 0,
            current_workload: 1000.0,
            prices,
            failure_probs: failures,
            covariance: cov,
            oracle: None,
        }
    }

    #[test]
    fn holds_every_index_market() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.06, 0.12, 0.24];
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = IndexTrackingPolicy::new(&ZooConfig::default(), 1e-3, 3);
        let counts = p.decide(&catalog, &obs(&prices, &failures, &cov));
        assert!(
            counts.iter().all(|&c| c > 0),
            "tracking holds the whole index: {counts:?}"
        );
        let cap: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * catalog.market(i).capacity_rps())
            .sum();
        assert!(cap >= 1000.0);
    }

    #[test]
    fn at_average_prices_the_portfolio_is_the_index() {
        let catalog = Catalog::fig4_testbed();
        // Per-request cost identical everywhere → tilt 1.0 → the
        // smoothed target is exactly the capacity index × headroom.
        let prices: Vec<f64> = catalog
            .markets()
            .iter()
            .map(|m| m.capacity_rps() * 7.5e-4)
            .collect();
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = IndexTrackingPolicy::new(&ZooConfig::default(), 1e-3, 3);
        p.decide(&catalog, &obs(&prices, &failures, &cov));
        let index = spot_index_weights(&catalog);
        let headroom = ZooConfig::default().index_headroom;
        for (w, i) in p.weights().iter().zip(&index) {
            assert!((w - i * headroom).abs() < 1e-12, "{w} vs index {i}");
        }
    }

    #[test]
    fn relatively_cheap_markets_are_overweighted_vs_the_index() {
        let catalog = Catalog::fig5_three_markets();
        // Market 1 trades at half of market 2's per-request cost, so
        // its tilt (and weight relative to index) must be larger.
        let prices = [2.0, 0.5, 1.0];
        let failures = [0.04; 3];
        let cov = Matrix::identity(3);
        let mut p = IndexTrackingPolicy::new(&ZooConfig::default(), 1e-3, 3);
        p.decide(&catalog, &obs(&prices, &failures, &cov));
        let w = p.weights();
        let index = spot_index_weights(&catalog);
        assert!(
            w[1] / index[1] > w[2] / index[2],
            "half-price market is overweighted vs the index: {w:?}"
        );
    }

    #[test]
    fn smoothing_rebalances_slowly_after_a_price_flip() {
        let catalog = Catalog::fig5_three_markets();
        let failures = [0.04; 3];
        let cov = Matrix::identity(3);
        let calm = [1.0, 1.0, 1.0];
        let mut p = IndexTrackingPolicy::new(&ZooConfig::default(), 1e-3, 3);
        let mut o = obs(&calm, &failures, &cov);
        for k in 0..5 {
            o.interval = k;
            p.decide(&catalog, &o);
        }
        let before = p.weights().to_vec();
        // Market 0's price spikes 10×; one interval later the target
        // has moved, but only by the EWMA gain, not all the way.
        let spiked = [10.0, 1.0, 1.0];
        o.prices = &spiked;
        o.interval = 5;
        p.decide(&catalog, &o);
        let after = p.weights().to_vec();
        assert!(after[0] < before[0], "weight shifts away from the spike");
        let mut instant = IndexTrackingPolicy::new(
            &ZooConfig {
                index_ewma_beta: 1.0,
                ..ZooConfig::default()
            },
            1e-3,
            3,
        );
        instant.decide(&catalog, &obs(&spiked, &failures, &cov));
        assert!(
            after[0] > instant.weights()[0],
            "smoothed target stays above the instantaneous one"
        );
    }

    #[test]
    fn decide_is_a_pure_function_of_observations() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.07, 0.11, 0.31];
        let failures = [0.03; 3];
        let cov = Matrix::identity(3);
        let run = || {
            let mut p = IndexTrackingPolicy::new(&ZooConfig::default(), 1e-3, 3);
            (0..3)
                .map(|k| {
                    let mut o = obs(&prices, &failures, &cov);
                    o.interval = k;
                    p.decide(&catalog, &o)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
