//! Provisioning policies: SpotWeb and the baselines it is evaluated
//! against (§6).
//!
//! A [`Policy`] is called once per decision interval with the latest
//! observations and returns the fleet (server count per market) to run
//! for the *next* interval. Implementations:
//!
//! * [`SpotWebPolicy`] — MPO + SpotWeb predictor (or oracle forecasts).
//! * [`ExoSpherePolicy`] — "ExoSphere in a loop": SPO re-run every
//!   interval on current observations (Fig. 6(b) baseline).
//! * [`ConstantPortfolioPolicy`] — portfolio frozen after a settling
//!   period, thereafter only the *size* scales with load (Fig. 5(c)/6(a)
//!   baseline).
//! * [`OnDemandPolicy`] — conventional on-demand provisioning (the
//!   "up to 90% savings" comparison of §8).
//!
//! The **policy zoo** submodules add related-work portfolio strategies
//! as first-class competitors, built by name through
//! [`factory::build_policy`]:
//!
//! * [`exosphere`] — single-period Markowitz selection (arXiv:1704.08738).
//! * [`index_tracking`] — hold the spot index (arXiv:1809.03110).
//! * [`het_spot_groups`] — fault-tolerance-aware failure-domain
//!   grouping (arXiv:1509.05197).
//! * [`randomized_market`] — seeded randomized market selection
//!   (arXiv:2601.14612).

pub mod exosphere;
pub mod factory;
pub mod het_spot_groups;
pub mod index_tracking;
pub mod randomized_market;

use spotweb_linalg::Matrix;
use spotweb_market::{Catalog, Market, MarketKind};
use spotweb_predict::price::MeanRevertingPricePredictor;
use spotweb_predict::{SeriesPredictor, SpotWebPredictor};
use spotweb_telemetry::{names, DecisionRecord, MarketEval, TelemetrySink, TraceEvent};

use crate::allocation::to_server_counts;
use crate::config::SpotWebConfig;
use crate::forecast::ForecastBundle;
use crate::mpo::MpoOptimizer;
use crate::spo::SpoOptimizer;

/// Oracle view of the true future (used when the experiment grants
/// perfect predictions, as in Figs. 5 and 6(a)).
#[derive(Debug, Clone)]
pub struct OracleView {
    /// True workload for the next intervals (`[0]` = next).
    pub workload: Vec<f64>,
    /// True per-market prices for the next intervals.
    pub prices: Vec<Vec<f64>>,
}

/// Everything a policy may look at when deciding.
#[derive(Debug, Clone)]
pub struct PolicyObservation<'a> {
    /// Index of the current decision interval.
    pub interval: usize,
    /// Arrival rate observed over the current interval (req/s).
    pub current_workload: f64,
    /// Current $/hour price per market.
    pub prices: &'a [f64],
    /// Current revocation probability per market.
    pub failure_probs: &'a [f64],
    /// Revocation covariance estimate `M`.
    pub covariance: &'a Matrix,
    /// Perfect future knowledge, when the experiment provides it.
    pub oracle: Option<&'a OracleView>,
}

/// A provisioning policy.
pub trait Policy {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Decide the fleet for the next interval.
    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32>;
}

/// Price-predictor window for the deployable configuration (hours).
const PRICE_WINDOW: usize = 48;

/// The SpotWeb policy: multi-period optimization over forecast bundles.
///
/// # Examples
///
/// Decide a fleet for one interval from current market observations:
///
/// ```
/// use spotweb_core::policy::{Policy, PolicyObservation};
/// use spotweb_core::{SpotWebConfig, SpotWebPolicy};
/// use spotweb_linalg::Matrix;
/// use spotweb_market::Catalog;
///
/// let catalog = Catalog::fig5_three_markets();
/// let mut policy = SpotWebPolicy::new(SpotWebConfig::default(), catalog.len());
/// let obs = PolicyObservation {
///     interval: 0,
///     current_workload: 1000.0,          // req/s observed this interval
///     prices: &[2.0, 1.0, 1.2],          // $/hour per market
///     failure_probs: &[0.04, 0.04, 0.04],
///     covariance: &Matrix::identity(3).scaled(1e-4),
///     oracle: None,
/// };
/// let fleet = policy.decide(&catalog, &obs);
/// assert_eq!(fleet.len(), catalog.len());
/// // The decided fleet covers the observed workload.
/// let capacity: f64 = fleet
///     .iter()
///     .enumerate()
///     .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
///     .sum();
/// assert!(capacity >= 1000.0);
/// ```
pub struct SpotWebPolicy {
    optimizer: MpoOptimizer,
    workload_predictor: Box<dyn SeriesPredictor + Send>,
    /// Per-market mean-reverting price predictors (§4.2: "if a price
    /// predictor is available, priceᵢₜ will vary over the horizon H").
    price_predictors: Vec<MeanRevertingPricePredictor>,
    /// Disable to fall back to flat (reactive) price forecasts.
    use_price_prediction: bool,
    prev_allocation: Vec<f64>,
    name: String,
    telemetry: TelemetrySink,
}

/// Human-readable market label for decision records.
fn market_label(m: &Market) -> String {
    let kind = match m.kind {
        MarketKind::OnDemand => "on-demand",
        MarketKind::Spot => "spot",
    };
    format!("{}/{kind}", m.instance.name)
}

impl SpotWebPolicy {
    /// Standard configuration: SpotWeb workload predictor (spline + AR
    /// + 99% CI) and per-market mean-reverting price predictors.
    pub fn new(config: SpotWebConfig, markets: usize) -> Self {
        Self::with_predictor(config, markets, Box::new(SpotWebPredictor::new()))
    }

    /// Custom workload predictor (ablations, Fig. 7(a) noise injection).
    pub fn with_predictor(
        config: SpotWebConfig,
        markets: usize,
        predictor: Box<dyn SeriesPredictor + Send>,
    ) -> Self {
        let h = config.horizon;
        SpotWebPolicy {
            optimizer: MpoOptimizer::new(config),
            workload_predictor: predictor,
            price_predictors: (0..markets)
                .map(|_| MeanRevertingPricePredictor::new(PRICE_WINDOW))
                .collect(),
            use_price_prediction: true,
            prev_allocation: vec![0.0; markets],
            name: format!("spotweb(H={h})"),
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink: every decide emits a
    /// [`DecisionRecord`] trace event, solver wall-clock goes to the
    /// timings store, and the workload predictor explains its
    /// forecasts through the same sink.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.workload_predictor.set_telemetry(sink.clone());
        self.telemetry = sink;
        self
    }

    /// Turn per-market price prediction off (flat-at-current forecasts).
    pub fn without_price_prediction(mut self) -> Self {
        self.use_price_prediction = false;
        self
    }

    /// Enable or disable the optimizer's interval-to-interval warm
    /// start (on by default). Disabling forces every MPO solve to a
    /// zero cold start — the knob `figures sweep` uses to measure the
    /// warm-start iteration savings in `BENCH_sweep.json`.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.optimizer.set_warm_start(enabled);
    }

    /// The executed allocation of the last decision.
    pub fn last_allocation(&self) -> &[f64] {
        &self.prev_allocation
    }
}

impl Policy for SpotWebPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        let h = self.optimizer.config().horizon;
        self.workload_predictor.observe(obs.current_workload);
        for (p, &price) in self.price_predictors.iter_mut().zip(obs.prices) {
            p.observe(price);
        }
        let forecast = match obs.oracle {
            Some(view) => {
                ForecastBundle::oracle(&view.workload, &view.prices, obs.failure_probs, h)
            }
            None => {
                let workload = self.workload_predictor.predict(h);
                let prices = if self.use_price_prediction {
                    // τ-major transpose of per-market forecasts.
                    let per_market: Vec<Vec<f64>> =
                        self.price_predictors.iter().map(|p| p.predict(h)).collect();
                    (0..h)
                        .map(|tau| per_market.iter().map(|f| f[tau]).collect())
                        .collect()
                } else {
                    vec![obs.prices.to_vec(); h]
                };
                ForecastBundle {
                    workload,
                    prices,
                    failures: vec![obs.failure_probs.to_vec(); h],
                }
            }
        };
        let min_alloc = self.optimizer.config().min_allocation;
        let (counts, objective, iterations, solved) =
            match self
                .optimizer
                .optimize(catalog, &forecast, obs.covariance, &self.prev_allocation)
            {
                Ok(decision) => {
                    self.prev_allocation = decision.first().to_vec();
                    // Wall-clock solve time goes to the (non-deterministic)
                    // timings store only — never into the trace.
                    self.telemetry
                        .time(names::MPO_SOLVE_SECS, decision.solve_secs);
                    self.telemetry.count(names::MPO_SOLVES_TOTAL, 1);
                    // Iterations-to-convergence: the number the
                    // warm-start fast path exists to shrink.
                    self.telemetry
                        .count(names::ADMM_ITERATIONS_TOTAL, decision.iterations as u64);
                    self.telemetry
                        .observe(names::ADMM_ITERATIONS_HIST, decision.iterations as f64);
                    self.telemetry.count(
                        if decision.warm_started {
                            names::MPO_WARM_SOLVES_TOTAL
                        } else {
                            names::MPO_COLD_SOLVES_TOTAL
                        },
                        1,
                    );
                    if decision.factor_reused {
                        self.telemetry.count(names::MPO_FACTOR_REUSE_TOTAL, 1);
                    }
                    let counts = to_server_counts(
                        catalog,
                        decision.first(),
                        forecast.workload[0],
                        min_alloc,
                    );
                    (
                        counts,
                        decision.objective,
                        decision.iterations,
                        decision.solved,
                    )
                }
                // On solver failure keep the previous fleet (fail static,
                // never fail empty).
                Err(_) => {
                    self.telemetry.count(names::MPO_SOLVE_FAILURES_TOTAL, 1);
                    let counts = to_server_counts(
                        catalog,
                        &self.prev_allocation,
                        forecast.workload[0],
                        min_alloc,
                    );
                    (counts, f64::NAN, 0, false)
                }
            };
        if self.telemetry.is_enabled() {
            let markets: Vec<MarketEval> = (0..catalog.len())
                .map(|i| {
                    let m = catalog.market(i);
                    let a = self.prev_allocation[i];
                    let chosen = counts[i] > 0;
                    // Fixed-precision reasons keep the trace byte-stable
                    // and human-readable.
                    let reason = if chosen {
                        format!("allocated {a:.4} of workload across {} servers", counts[i])
                    } else if a < min_alloc {
                        format!("allocation {a:.4} below min {min_alloc:.4}")
                    } else {
                        "allocation rounded to zero servers".to_string()
                    };
                    MarketEval {
                        market: i,
                        name: market_label(m),
                        price: forecast.prices[0][i],
                        capacity_rps: m.capacity_rps(),
                        cost_per_mreq: forecast.prices[0][i] / m.capacity_rps() / 3600.0 * 1e6,
                        revocation_prob: forecast.failures[0][i],
                        risk: obs.covariance[(i, i)],
                        allocation: a,
                        servers: counts[i],
                        chosen,
                        reason,
                    }
                })
                .collect();
            self.telemetry.emit(TraceEvent::Decision(DecisionRecord {
                interval: obs.interval as u64,
                policy: self.name.clone(),
                observed_rps: obs.current_workload,
                horizon: h,
                predicted_workload: forecast.workload.clone(),
                objective,
                iterations,
                solved,
                total_allocation: self.prev_allocation.iter().sum(),
                markets,
            }));
        }
        counts
    }
}

/// ExoSphere re-run every interval: single-period, reactive inputs.
pub struct ExoSpherePolicy {
    optimizer: SpoOptimizer,
    min_allocation: f64,
    last_allocation: Vec<f64>,
}

impl ExoSpherePolicy {
    /// Build with the shared config (horizon/churn are ignored by SPO).
    pub fn new(config: SpotWebConfig, markets: usize) -> Self {
        let min_allocation = config.min_allocation;
        ExoSpherePolicy {
            optimizer: SpoOptimizer::new(config),
            min_allocation,
            last_allocation: vec![0.0; markets],
        }
    }
}

impl Policy for ExoSpherePolicy {
    fn name(&self) -> &str {
        "exosphere-loop"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        match self.optimizer.optimize(
            catalog,
            obs.current_workload,
            obs.prices,
            obs.failure_probs,
            obs.covariance,
        ) {
            Ok(decision) => {
                self.last_allocation = decision.first().to_vec();
                to_server_counts(
                    catalog,
                    decision.first(),
                    obs.current_workload,
                    self.min_allocation,
                )
            }
            Err(_) => to_server_counts(
                catalog,
                &self.last_allocation,
                obs.current_workload,
                self.min_allocation,
            ),
        }
    }
}

/// Constant portfolio + autoscaler: portfolio weights frozen at
/// `fix_at_interval`; afterwards only the fleet size tracks the load
/// (using the oracle's next-interval workload when available — the
/// paper's "oracle auto-scaler").
pub struct ConstantPortfolioPolicy {
    optimizer: SpoOptimizer,
    fix_at_interval: usize,
    frozen_weights: Option<Vec<f64>>,
    min_allocation: f64,
    last_allocation: Vec<f64>,
}

impl ConstantPortfolioPolicy {
    /// Freeze the portfolio after `fix_at_interval` decisions (the
    /// paper freezes after 2 hours).
    pub fn new(config: SpotWebConfig, markets: usize, fix_at_interval: usize) -> Self {
        let min_allocation = config.min_allocation;
        ConstantPortfolioPolicy {
            optimizer: SpoOptimizer::new(config),
            fix_at_interval,
            frozen_weights: None,
            min_allocation,
            last_allocation: vec![0.0; markets],
        }
    }

    /// The frozen weights, once set.
    pub fn weights(&self) -> Option<&[f64]> {
        self.frozen_weights.as_deref()
    }
}

impl Policy for ConstantPortfolioPolicy {
    fn name(&self) -> &str {
        "constant-portfolio"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        // Next-interval target: oracle if present, else reactive.
        let lambda_next = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload);

        if let Some(weights) = &self.frozen_weights {
            return to_server_counts(catalog, weights, lambda_next, self.min_allocation);
        }
        // Settling phase: behave like SPO; freeze at the configured step.
        let counts = match self.optimizer.optimize(
            catalog,
            obs.current_workload,
            obs.prices,
            obs.failure_probs,
            obs.covariance,
        ) {
            Ok(decision) => {
                self.last_allocation = decision.first().to_vec();
                to_server_counts(catalog, decision.first(), lambda_next, self.min_allocation)
            }
            Err(_) => to_server_counts(
                catalog,
                &self.last_allocation,
                lambda_next,
                self.min_allocation,
            ),
        };
        if obs.interval + 1 >= self.fix_at_interval {
            // Normalize the allocation into weights summing to A_min-ish
            // shape; sizes rescale with λ afterwards.
            let total: f64 = self.last_allocation.iter().sum();
            if total > 0.0 {
                self.frozen_weights = Some(self.last_allocation.clone());
            }
        }
        counts
    }
}

/// Qu et al. (JNCA'16) style baseline: heterogeneous spot servers with
/// over-provisioning driven by a *user-specified* number of concurrent
/// market failures to tolerate (Table 1's "indirect" SLO-awareness).
///
/// The policy spreads the load evenly over the `k_spread` cheapest
/// per-request markets and then adds enough extra capacity that losing
/// any `fault_tolerance` of those markets simultaneously still leaves
/// the full workload covered — the fixed-threshold alternative to
/// SpotWeb's probability-driven provisioning.
pub struct QuThresholdPolicy {
    /// Number of markets the load is spread across.
    pub k_spread: usize,
    /// Number of concurrent market failures to survive.
    pub fault_tolerance: usize,
    min_allocation: f64,
}

impl QuThresholdPolicy {
    /// Spread across `k_spread` markets, tolerate `fault_tolerance`
    /// concurrent market losses (must be < `k_spread`).
    pub fn new(k_spread: usize, fault_tolerance: usize) -> Self {
        assert!(k_spread >= 1, "need at least one market");
        assert!(
            fault_tolerance < k_spread,
            "cannot tolerate losing every market used"
        );
        QuThresholdPolicy {
            k_spread,
            fault_tolerance,
            min_allocation: 1e-3,
        }
    }
}

impl Policy for QuThresholdPolicy {
    fn name(&self) -> &str {
        "qu-threshold"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        let lambda = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload);
        // Rank markets by current per-request price.
        let mut ranked: Vec<usize> = (0..catalog.len()).collect();
        ranked.sort_by(|&a, &b| {
            let pa = obs.prices[a] / catalog.market(a).capacity_rps();
            let pb = obs.prices[b] / catalog.market(b).capacity_rps();
            pa.partial_cmp(&pb).expect("finite prices")
        });
        let k = self.k_spread.min(catalog.len());
        let chosen = &ranked[..k];
        // Even spread, inflated so any `fault_tolerance` markets can
        // vanish: surviving k − f markets must cover λ.
        let survivors = (k - self.fault_tolerance.min(k - 1)) as f64;
        let per_market_share = 1.0 / survivors;
        let mut alloc = vec![0.0; catalog.len()];
        for &m in chosen {
            alloc[m] = per_market_share;
        }
        to_server_counts(catalog, &alloc, lambda, self.min_allocation)
    }
}

/// Conventional on-demand provisioning: cheapest-per-request on-demand
/// configuration, scaled to the load (reactive or oracle).
pub struct OnDemandPolicy {
    /// Head-room multiplier applied to the target rate (on-demand
    /// deployments over-provision too; 1.2 is a generous-but-typical
    /// utilization target of ~83%).
    pub headroom: f64,
}

impl OnDemandPolicy {
    /// Default 20% headroom.
    pub fn new() -> Self {
        OnDemandPolicy { headroom: 1.2 }
    }
}

impl Default for OnDemandPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for OnDemandPolicy {
    fn name(&self) -> &str {
        "on-demand"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        let lambda = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload)
            * self.headroom;
        // Cheapest per-request among *on-demand* markets; when the
        // catalog is spot-only (some experiments), fall back to any
        // market but note the billed price will then be the spot price.
        let candidates: Vec<_> = catalog
            .markets()
            .iter()
            .filter(|m| m.kind == spotweb_market::MarketKind::OnDemand)
            .collect();
        let pool: Vec<_> = if candidates.is_empty() {
            catalog.markets().iter().collect()
        } else {
            candidates
        };
        let best = pool
            .into_iter()
            .min_by(|a, b| {
                a.instance
                    .on_demand_cost_per_request()
                    .partial_cmp(&b.instance.on_demand_cost_per_request())
                    .expect("finite prices")
            })
            .expect("non-empty catalog");
        let mut counts = vec![0u32; catalog.len()];
        counts[best.id] = (lambda / best.capacity_rps()).ceil() as u32;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_market::Catalog;

    fn obs_fixture<'a>(
        prices: &'a [f64],
        failures: &'a [f64],
        cov: &'a Matrix,
    ) -> PolicyObservation<'a> {
        PolicyObservation {
            interval: 0,
            current_workload: 1000.0,
            prices,
            failure_probs: failures,
            covariance: cov,
            oracle: None,
        }
    }

    #[test]
    fn spotweb_policy_provisions_enough_capacity() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2];
        let failures = [0.04; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let mut p = SpotWebPolicy::new(SpotWebConfig::default(), 3);
        let counts = p.decide(&catalog, &obs_fixture(&prices, &failures, &cov));
        let cap: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
            .sum();
        assert!(cap >= 1000.0, "capacity {cap} must cover the workload");
    }

    #[test]
    fn spotweb_policy_emits_decision_records() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2];
        let failures = [0.04; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let sink = TelemetrySink::enabled();
        let mut p = SpotWebPolicy::new(SpotWebConfig::default(), 3).with_telemetry(sink.clone());
        let mut obs = obs_fixture(&prices, &failures, &cov);
        for k in 0..3 {
            obs.interval = k;
            p.decide(&catalog, &obs);
        }
        let records: Vec<DecisionRecord> = sink
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Decision(d) => Some(d.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(records.len(), 3, "one decision record per solve");
        assert_eq!(sink.counter("spotweb_mpo_solves_total"), 3);
        let last = records.last().unwrap();
        assert_eq!(last.interval, 2);
        assert_eq!(last.markets.len(), 3);
        assert!(last.total_allocation >= 1.0, "full coverage");
        // Chosen markets explain their share; rejected ones say why.
        for m in &last.markets {
            assert_eq!(m.chosen, m.servers > 0);
            assert!(!m.reason.is_empty());
            if !m.chosen {
                assert!(m.reason.contains("below min") || m.reason.contains("zero servers"));
            }
        }
        // Wall-clock went to the timings store, not the trace.
        assert!(sink.render_timings_json().contains("mpo_solve_secs"));
        assert!(!sink.export_jsonl().contains("solve_secs"));
    }

    #[test]
    fn exosphere_tracks_current_load_only() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2];
        let failures = [0.04; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let mut p = ExoSpherePolicy::new(SpotWebConfig::default(), 3);
        let mut obs = obs_fixture(&prices, &failures, &cov);
        let low = p.decide(&catalog, &obs);
        obs.current_workload = 4000.0;
        let high = p.decide(&catalog, &obs);
        let cap = |c: &[u32]| -> f64 {
            c.iter()
                .enumerate()
                .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
                .sum()
        };
        assert!(cap(&high) > cap(&low));
    }

    #[test]
    fn constant_portfolio_freezes_weights() {
        let catalog = Catalog::fig5_three_markets();
        let failures = [0.04; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let mut p = ConstantPortfolioPolicy::new(SpotWebConfig::default(), 3, 2);
        let prices1 = [2.0, 1.0, 1.2];
        let mut obs = obs_fixture(&prices1, &failures, &cov);
        p.decide(&catalog, &obs);
        obs.interval = 1;
        p.decide(&catalog, &obs);
        assert!(p.weights().is_some(), "weights frozen after interval 2");
        let frozen = p.weights().unwrap().to_vec();
        // Prices flip; the frozen policy must not change its mix.
        let prices2 = [9.0, 0.2, 5.0];
        obs.interval = 2;
        obs.prices = &prices2;
        p.decide(&catalog, &obs);
        assert_eq!(p.weights().unwrap(), frozen.as_slice());
    }

    #[test]
    fn on_demand_picks_single_cheapest_market() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2]; // ignored: policy uses on-demand prices
        let failures = [0.0; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let mut p = OnDemandPolicy::new();
        let counts = p.decide(&catalog, &obs_fixture(&prices, &failures, &cov));
        assert_eq!(counts.iter().filter(|&&n| n > 0).count(), 1);
        // Capacity covers λ with headroom.
        let cap: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
            .sum();
        assert!(cap >= 1200.0);
    }

    #[test]
    fn qu_threshold_survives_k_failures() {
        let catalog = Catalog::ec2_subset(9);
        let prices: Vec<f64> = catalog
            .markets()
            .iter()
            .map(|m| m.instance.on_demand_price * 0.3)
            .collect();
        let failures = vec![0.05; 9];
        let cov = Matrix::identity(9).scaled(1e-4);
        let mut p = QuThresholdPolicy::new(3, 1);
        let counts = p.decide(&catalog, &obs_fixture(&prices, &failures, &cov));
        let used: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(used.len(), 3, "spreads over k markets");
        // Losing the largest-capacity used market still covers λ.
        let cap = |skip: Option<usize>| -> f64 {
            counts
                .iter()
                .enumerate()
                .filter(|(i, _)| Some(*i) != skip)
                .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
                .sum()
        };
        for &m in &used {
            assert!(
                cap(Some(m)) >= 1000.0,
                "losing market {m} leaves {} < λ",
                cap(Some(m))
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot tolerate")]
    fn qu_threshold_rejects_degenerate_tolerance() {
        QuThresholdPolicy::new(2, 2);
    }

    #[test]
    fn oracle_overrides_reactive_target() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2];
        let failures = [0.0; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let oracle = OracleView {
            workload: vec![5000.0],
            prices: vec![prices.to_vec()],
        };
        let mut obs = obs_fixture(&prices, &failures, &cov);
        obs.oracle = Some(&oracle);
        let mut p = OnDemandPolicy::new();
        let counts = p.decide(&catalog, &obs);
        let cap: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
            .sum();
        assert!(cap >= 6000.0, "oracle-sized fleet {cap}");
    }
}
