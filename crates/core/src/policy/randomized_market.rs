//! Randomized market selection (arXiv:2601.14612): draw a small random
//! subset of markets each interval, biased toward cheap and reliable
//! ones.
//!
//! The strategy's argument is game-theoretic: any *deterministic*
//! cheapest-market rule herds every tenant into the same spot pool,
//! which is exactly what drives that pool's price up and triggers the
//! mass revocation everyone was trying to avoid. Randomizing the
//! selection breaks the herd while the cheapness bias keeps the
//! expected cost near the deterministic optimum.
//!
//! Our reproduction keeps the randomness *inside* the determinism
//! contract: the draw is a pure function of `(policy seed, decision
//! interval)` through a hand-rolled [splitmix64] stream — no global
//! RNG, no call-order dependence, byte-identical across job counts and
//! platforms. The cheapness bias `(min_cost / cost)^β` uses an integer
//! exponent via `powi` (exact IEEE multiplications) so no `exp`/`powf`
//! libm call can fork the bytes across platforms.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use spotweb_market::Catalog;
use spotweb_telemetry::{names, TelemetrySink};

use crate::allocation::to_server_counts;
use crate::config::ZooConfig;
use crate::policy::{Policy, PolicyObservation};

/// One step of the splitmix64 generator: advances the state and
/// returns the mixed output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform f64 in `[0, 1)` from the next stream word (53 mantissa
/// bits, the standard bit-shift construction).
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The randomized-selection competitor.
pub struct RandomizedMarketPolicy {
    seed: u64,
    subset: usize,
    beta: i32,
    headroom: f64,
    min_allocation: f64,
    weights: Vec<f64>,
    telemetry: TelemetrySink,
}

impl RandomizedMarketPolicy {
    /// Build with the zoo config's subset size, cheapness exponent and
    /// headroom, drawing from the stream keyed by `seed`.
    pub fn new(zoo: &ZooConfig, min_allocation: f64, markets: usize, seed: u64) -> Self {
        RandomizedMarketPolicy {
            seed,
            subset: zoo.random_subset,
            beta: zoo.random_beta,
            headroom: zoo.random_headroom,
            min_allocation,
            weights: vec![0.0; markets],
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (counts one decision per `decide`).
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The fractional allocation of the last decision.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Selection weight of each market:
    /// `(min_cost / costᵢ)^β · (1 − failureᵢ)`, clamped non-negative.
    fn selection_weights(&self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<f64> {
        let n = catalog.len();
        let per_req: Vec<f64> = (0..n)
            .map(|i| obs.prices[i] / catalog.market(i).capacity_rps())
            .collect();
        let min_cost = per_req
            .iter()
            .cloned()
            .filter(|c| *c > 0.0)
            .fold(f64::INFINITY, f64::min);
        per_req
            .iter()
            .zip(obs.failure_probs)
            .map(|(&c, &f)| {
                if c <= 0.0 || !min_cost.is_finite() {
                    return 0.0;
                }
                (min_cost / c).powi(self.beta) * (1.0 - f).max(0.0)
            })
            .collect()
    }
}

impl Policy for RandomizedMarketPolicy {
    fn name(&self) -> &str {
        "randomized-market"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        self.telemetry.count(names::POLICY_DECISIONS_TOTAL, 1);
        let n = catalog.len();
        let mut p = self.selection_weights(catalog, obs);

        // Dedicated stream for this (seed, interval) pair: interval is
        // folded in through one mix step so consecutive intervals land
        // far apart in the sequence.
        let mut key = self.seed ^ (obs.interval as u64).wrapping_mul(0xd6e8_feb8_6659_fd93);
        let mut state = splitmix64(&mut key);

        // Weighted sampling without replacement: k sequential roulette
        // draws, zeroing each winner. Falls back to "everything left
        // equally likely" if all remaining weight is zero.
        let k = self.subset.min(n).max(1);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for _ in 0..k {
            let total: f64 = p.iter().sum();
            let pick = if total > 0.0 {
                let mut ticket = unit_f64(&mut state) * total;
                let mut winner = n - 1;
                for (i, &w) in p.iter().enumerate() {
                    if w <= 0.0 {
                        continue;
                    }
                    winner = i;
                    if ticket < w {
                        break;
                    }
                    ticket -= w;
                }
                winner
            } else {
                // Uniform over the not-yet-chosen markets.
                let open: Vec<usize> = (0..n).filter(|i| !chosen.contains(i)).collect();
                let idx = (unit_f64(&mut state) * open.len() as f64) as usize;
                open[idx.min(open.len() - 1)]
            };
            p[pick] = 0.0;
            chosen.push(pick);
        }
        chosen.sort_unstable();

        // Split the headroom-inflated load across the drawn markets in
        // proportion to their selection weight (recomputed; the roulette
        // zeroed the working copy).
        let q = self.selection_weights(catalog, obs);
        let drawn_total: f64 = chosen.iter().map(|&i| q[i]).sum();
        self.weights = vec![0.0; n];
        for &i in &chosen {
            let share = if drawn_total > 0.0 {
                q[i] / drawn_total
            } else {
                1.0 / chosen.len() as f64
            };
            self.weights[i] = share * self.headroom;
        }

        let lambda = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload);
        to_server_counts(catalog, &self.weights, lambda, self.min_allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Matrix;

    fn obs<'a>(
        interval: usize,
        prices: &'a [f64],
        failures: &'a [f64],
        cov: &'a Matrix,
    ) -> PolicyObservation<'a> {
        PolicyObservation {
            interval,
            current_workload: 1000.0,
            prices,
            failure_probs: failures,
            covariance: cov,
            oracle: None,
        }
    }

    #[test]
    fn allocates_exactly_the_configured_subset() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.06, 0.12, 0.24];
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = RandomizedMarketPolicy::new(&ZooConfig::default(), 1e-3, 3, 42);
        p.decide(&catalog, &obs(0, &prices, &failures, &cov));
        let held = p.weights().iter().filter(|&&w| w > 0.0).count();
        assert_eq!(held, ZooConfig::default().random_subset);
        let total: f64 = p.weights().iter().sum();
        assert!(
            (total - ZooConfig::default().random_headroom).abs() < 1e-12,
            "weights sum to the headroom: {total}"
        );
    }

    #[test]
    fn draw_is_a_pure_function_of_seed_and_interval() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.08, 0.10, 0.40];
        let failures = [0.04, 0.08, 0.02];
        let cov = Matrix::identity(3);
        let run = |seed: u64| {
            let mut p = RandomizedMarketPolicy::new(&ZooConfig::default(), 1e-3, 3, seed);
            (0..6)
                .map(|k| p.decide(&catalog, &obs(k, &prices, &failures, &cov)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed reproduces the draws");
        // Stateless in call order too: re-deciding interval 3 alone
        // matches its value inside the full sequence.
        let full = run(7);
        let mut p = RandomizedMarketPolicy::new(&ZooConfig::default(), 1e-3, 3, 7);
        let lone = p.decide(&catalog, &obs(3, &prices, &failures, &cov));
        assert_eq!(
            lone, full[3],
            "draw depends on the interval, not call order"
        );
    }

    #[test]
    fn different_intervals_rotate_the_selection() {
        let catalog = Catalog::fig4_testbed();
        // Near-equal per-request costs so the draw stays genuinely
        // random rather than pinned to one dominant market.
        let prices = [0.105, 0.2, 0.42];
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = RandomizedMarketPolicy::new(&ZooConfig::default(), 1e-3, 3, 1234);
        let mut selections = std::collections::BTreeSet::new();
        for k in 0..32 {
            p.decide(&catalog, &obs(k, &prices, &failures, &cov));
            let held: Vec<usize> = p
                .weights()
                .iter()
                .enumerate()
                .filter(|(_, &w)| w > 0.0)
                .map(|(i, _)| i)
                .collect();
            selections.insert(held);
        }
        assert!(
            selections.len() > 1,
            "32 intervals draw more than one distinct subset"
        );
    }

    #[test]
    fn cheapness_bias_prefers_the_cheap_market() {
        let catalog = Catalog::fig4_testbed();
        // Market 0 is 4× cheaper per request than the rest: with β = 4
        // its selection weight dominates by 4⁴.
        let prices = [0.0263, 0.2, 0.42];
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = RandomizedMarketPolicy::new(&ZooConfig::default(), 1e-3, 3, 9);
        let mut market0_held = 0;
        for k in 0..64 {
            p.decide(&catalog, &obs(k, &prices, &failures, &cov));
            if p.weights()[0] > 0.0 {
                market0_held += 1;
            }
        }
        assert!(
            market0_held > 56,
            "cheap market held in {market0_held}/64 draws"
        );
    }

    #[test]
    fn covers_the_workload_with_headroom() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.06, 0.12, 0.24];
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = RandomizedMarketPolicy::new(&ZooConfig::default(), 1e-3, 3, 5);
        for k in 0..8 {
            let counts = p.decide(&catalog, &obs(k, &prices, &failures, &cov));
            let cap: f64 = counts
                .iter()
                .enumerate()
                .map(|(i, &c)| c as f64 * catalog.market(i).capacity_rps())
                .sum();
            assert!(cap >= 1000.0, "interval {k}: capacity {cap} covers λ");
        }
    }
}
