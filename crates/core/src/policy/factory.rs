//! Policy factory: one registry mapping the zoo's policy names to
//! constructors, shared by `figures`, `bench::sweep` and the
//! tournament so every entry point agrees on what "index-tracking"
//! means.

use spotweb_telemetry::TelemetrySink;

use crate::config::{SpotWebConfig, ZooConfig};
use crate::policy::exosphere::ExoSphereMarkowitzPolicy;
use crate::policy::het_spot_groups::HetSpotGroupsPolicy;
use crate::policy::index_tracking::IndexTrackingPolicy;
use crate::policy::randomized_market::RandomizedMarketPolicy;
use crate::policy::{Policy, SpotWebPolicy};

/// Every policy name the factory can build, in registry order (the
/// order tournaments and usage strings list them in).
pub const ZOO_POLICIES: &[&str] = &[
    "spotweb",
    "exosphere",
    "index-tracking",
    "het-spot-groups",
    "randomized-market",
];

/// Canonical form of a policy name: trimmed, lowercased, underscores
/// folded to hyphens — so `--policy Index_Tracking` resolves.
pub fn normalize_policy_name(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace('_', "-")
}

/// Build a registered policy by (lenient) name.
///
/// `seed` feeds only the policies that draw randomness (the
/// randomized-market strategy); deterministic policies ignore it, so
/// two builds with different seeds still agree for them. The error
/// message on an unknown name lists every registered name — it is
/// surfaced verbatim by the `figures --policy` flag.
pub fn build_policy(
    name: &str,
    config: &SpotWebConfig,
    zoo: &ZooConfig,
    markets: usize,
    seed: u64,
    sink: &TelemetrySink,
) -> Result<Box<dyn Policy + Send>, String> {
    let canonical = normalize_policy_name(name);
    let min_alloc = config.min_allocation;
    match canonical.as_str() {
        "spotweb" => Ok(Box::new(
            SpotWebPolicy::new(config.clone(), markets).with_telemetry(sink.clone()),
        )),
        "exosphere" => Ok(Box::new(
            ExoSphereMarkowitzPolicy::new(config, markets).with_telemetry(sink.clone()),
        )),
        "index-tracking" => Ok(Box::new(
            IndexTrackingPolicy::new(zoo, min_alloc, markets).with_telemetry(sink.clone()),
        )),
        "het-spot-groups" => Ok(Box::new(
            HetSpotGroupsPolicy::new(zoo, min_alloc, markets).with_telemetry(sink.clone()),
        )),
        "randomized-market" => Ok(Box::new(
            RandomizedMarketPolicy::new(zoo, min_alloc, markets, seed).with_telemetry(sink.clone()),
        )),
        _ => Err(format!(
            "unknown policy '{name}'; registered policies: {}",
            ZOO_POLICIES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        let config = SpotWebConfig::default();
        let zoo = ZooConfig::default();
        let sink = TelemetrySink::disabled();
        for name in ZOO_POLICIES {
            let p = build_policy(name, &config, &zoo, 3, 1234, &sink)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn name_resolution_is_lenient() {
        let config = SpotWebConfig::default();
        let zoo = ZooConfig::default();
        let sink = TelemetrySink::disabled();
        for lenient in ["Index_Tracking", " het_spot_groups ", "RANDOMIZED-MARKET"] {
            assert!(
                build_policy(lenient, &config, &zoo, 3, 1, &sink).is_ok(),
                "'{lenient}' should resolve"
            );
        }
    }

    #[test]
    fn unknown_name_lists_the_registry() {
        let config = SpotWebConfig::default();
        let zoo = ZooConfig::default();
        let sink = TelemetrySink::disabled();
        let err = match build_policy("nope", &config, &zoo, 3, 1, &sink) {
            Err(e) => e,
            Ok(_) => panic!("unknown name must not build"),
        };
        assert!(err.contains("unknown policy 'nope'"), "{err}");
        for name in ZOO_POLICIES {
            assert!(err.contains(name), "error must list {name}: {err}");
        }
    }

    #[test]
    fn factory_names_match_policy_self_reports() {
        let config = SpotWebConfig::default();
        let zoo = ZooConfig::default();
        let sink = TelemetrySink::disabled();
        for name in ZOO_POLICIES {
            let p = build_policy(name, &config, &zoo, 3, 1234, &sink).unwrap();
            if *name == "spotweb" {
                // The MPO policy embeds its horizon in the name.
                assert!(p.name().starts_with("spotweb"), "{}", p.name());
            } else {
                assert_eq!(p.name(), *name);
            }
        }
    }
}
