//! Heterogeneous spot auto-scaling with fault-tolerance-aware grouping
//! (Qu, Calheiros, Buyya — arXiv:1509.05197).
//!
//! The strategy's insight is that spreading over *many* spot markets is
//! useless if those markets fail together: capacity must be spread
//! across **failure domains**, not market names. Markets whose
//! revocation dynamics are strongly correlated (one spot pool's demand
//! spike drags its siblings) are clustered into groups via
//! [`spotweb_market::covariance::correlation_groups`]; the policy then
//! serves traffic from the cheapest market *of each group* and inflates
//! capacity so that losing any `fault_tolerance` whole groups
//! simultaneously still leaves the workload covered — a fixed-threshold
//! alternative to SpotWeb's probability-weighted risk term.
//!
//! Contrast with [`crate::QuThresholdPolicy`] (the paper's Fig. 6
//! baseline): that variant spreads over the k cheapest markets blind to
//! correlation; this one derives its spread from the estimated
//! correlation structure, which is what the 2015 paper actually calls
//! for.

use spotweb_market::{correlation_groups, Catalog};
use spotweb_telemetry::{names, TelemetrySink};

use crate::allocation::to_server_counts;
use crate::config::ZooConfig;
use crate::policy::{Policy, PolicyObservation};

/// The fault-tolerance-aware heterogeneous-groups competitor.
pub struct HetSpotGroupsPolicy {
    corr_threshold: f64,
    fault_tolerance: usize,
    min_allocation: f64,
    weights: Vec<f64>,
    telemetry: TelemetrySink,
}

impl HetSpotGroupsPolicy {
    /// Build with the zoo config's correlation threshold and group
    /// fault tolerance.
    pub fn new(zoo: &ZooConfig, min_allocation: f64, markets: usize) -> Self {
        HetSpotGroupsPolicy {
            corr_threshold: zoo.group_corr_threshold,
            fault_tolerance: zoo.group_fault_tolerance,
            min_allocation,
            weights: vec![0.0; markets],
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (counts one decision per `decide`).
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The fractional allocation of the last decision.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Policy for HetSpotGroupsPolicy {
    fn name(&self) -> &str {
        "het-spot-groups"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        self.telemetry.count(names::POLICY_DECISIONS_TOTAL, 1);
        let n = catalog.len();
        // The observation's covariance slot carries the shrunk
        // correlation estimate (see the runner bridge) — exactly the
        // statistic the grouping needs.
        let groups = correlation_groups(obs.covariance, self.corr_threshold);
        let group_count = groups.iter().copied().max().map_or(0, |g| g + 1);

        // Cheapest per-request market of each group represents it.
        let mut representative: Vec<Option<usize>> = vec![None; group_count];
        for i in 0..n {
            let cost = obs.prices[i] / catalog.market(i).capacity_rps();
            let slot = &mut representative[groups[i]];
            let better = match *slot {
                None => true,
                Some(best) => cost < obs.prices[best] / catalog.market(best).capacity_rps(),
            };
            if better {
                *slot = Some(i);
            }
        }
        let reps: Vec<usize> = representative.into_iter().flatten().collect();

        // Even spread over the groups, inflated so any
        // `fault_tolerance` of them can vanish at once: the surviving
        // `g − f` groups must still cover the full workload.
        let g = reps.len();
        let f = self.fault_tolerance.min(g.saturating_sub(1));
        let survivors = (g - f).max(1) as f64;
        let share = 1.0 / survivors;
        self.weights = vec![0.0; n];
        for &m in &reps {
            self.weights[m] = share;
        }

        let lambda = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload);
        to_server_counts(catalog, &self.weights, lambda, self.min_allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Matrix;

    fn obs<'a>(prices: &'a [f64], failures: &'a [f64], cov: &'a Matrix) -> PolicyObservation<'a> {
        PolicyObservation {
            interval: 0,
            current_workload: 1000.0,
            prices,
            failure_probs: failures,
            covariance: cov,
            oracle: None,
        }
    }

    #[test]
    fn uncorrelated_markets_each_form_a_group() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.06, 0.12, 0.24];
        let failures = [0.05; 3];
        let cov = Matrix::identity(3);
        let mut p = HetSpotGroupsPolicy::new(&ZooConfig::default(), 1e-3, 3);
        let counts = p.decide(&catalog, &obs(&prices, &failures, &cov));
        // 3 independent groups, tolerate 1: each carries 1/2 of λ.
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 3);
        for &w in p.weights() {
            assert!((w - 0.5).abs() < 1e-12, "share 1/(3-1) per group");
        }
        // Losing any one market leaves λ covered.
        for skip in 0..3 {
            let cap: f64 = counts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(i, &c)| c as f64 * catalog.market(i).capacity_rps())
                .sum();
            assert!(cap >= 1000.0, "losing market {skip} leaves {cap} < λ");
        }
    }

    #[test]
    fn correlated_markets_collapse_into_one_failure_domain() {
        let catalog = Catalog::fig4_testbed();
        // Market 1 is cheapest per request; 0 and 1 fail together.
        let prices = [0.08, 0.10, 0.40];
        let failures = [0.05; 3];
        let mut cov = Matrix::identity(3);
        cov[(0, 1)] = 0.9;
        cov[(1, 0)] = 0.9;
        let mut p = HetSpotGroupsPolicy::new(&ZooConfig::default(), 1e-3, 3);
        let counts = p.decide(&catalog, &obs(&prices, &failures, &cov));
        // Group {0,1} is represented by exactly one of its markets.
        assert!(
            (counts[0] > 0) ^ (counts[1] > 0),
            "one representative per correlated group: {counts:?}"
        );
        assert!(counts[2] > 0, "independent market serves its own group");
        // The correlated group's representative is its cheaper member.
        let m1_cost = prices[1] / catalog.market(1).capacity_rps();
        let m0_cost = prices[0] / catalog.market(0).capacity_rps();
        let expect_rep = if m1_cost < m0_cost { 1 } else { 0 };
        assert!(counts[expect_rep] > 0);
    }

    #[test]
    fn single_group_degenerates_to_full_coverage() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.06, 0.12, 0.24];
        let failures = [0.05; 3];
        let mut cov = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    cov[(i, j)] = 0.95;
                }
            }
        }
        let mut p = HetSpotGroupsPolicy::new(&ZooConfig::default(), 1e-3, 3);
        let counts = p.decide(&catalog, &obs(&prices, &failures, &cov));
        // Everything is one failure domain: no spread can help, so one
        // market carries the whole load at share 1.
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 1);
        assert!((p.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decide_is_a_pure_function_of_observations() {
        let catalog = Catalog::fig4_testbed();
        let prices = [0.09, 0.13, 0.22];
        let failures = [0.04, 0.08, 0.02];
        let mut cov = Matrix::identity(3);
        cov[(1, 2)] = 0.7;
        cov[(2, 1)] = 0.7;
        let run = || {
            let mut p = HetSpotGroupsPolicy::new(&ZooConfig::default(), 1e-3, 3);
            p.decide(&catalog, &obs(&prices, &failures, &cov))
        };
        assert_eq!(run(), run());
    }
}
