//! ExoSphere-style single-period Markowitz portfolio selection
//! (Sharma, Irwin, Shenoy — arXiv:1704.08738).
//!
//! ExoSphere picks a server portfolio by one-shot mean–variance
//! optimization over the markets' *current* cost and revocation risk:
//! minimize `cᵀa + α·aᵀMa` over the capped simplex, where `c` is the
//! normalized per-request cost tilted by each market's failure
//! probability and `M` the revocation-correlation matrix. Unlike
//! [`crate::SpotWebPolicy`] there is no look-ahead horizon, no churn
//! term and no workload forecast — the portfolio is re-derived from
//! scratch every interval from current observations only.
//!
//! This module carries its own tiny solver — deterministic projected
//! gradient descent with a bisection projection onto
//! `{0 ≤ aᵢ ≤ cap, Σa = S}` — instead of reusing the ADMM QP behind
//! [`crate::SpoOptimizer`]: the zoo's competitors are meant to be
//! *independent* implementations, so a solver bug can't silently make
//! two "different" strategies agree. (The `exosphere-loop` baseline of
//! Fig. 6(b) keeps using the shared QP.)

use spotweb_market::Catalog;
use spotweb_telemetry::{names, TelemetrySink};

use crate::allocation::to_server_counts;
use crate::config::SpotWebConfig;
use crate::policy::{Policy, PolicyObservation};

/// Fixed projected-gradient iteration budget. The problem is a small,
/// strongly convex QP; 160 steps converge far past the `min_allocation`
/// resolution any fleet rounding can see.
const PGD_STEPS: usize = 160;

/// Bisection iterations for the simplex-with-box projection — 64 halves
/// of an O(1) bracket reach f64 resolution exactly.
const PROJECT_BISECTIONS: usize = 64;

/// Project `v` onto `{a : 0 ≤ aᵢ ≤ cap, Σa = target}` in Euclidean
/// norm: `aᵢ = clamp(vᵢ − t, 0, cap)` with the shift `t` found by
/// bisection (the sum is monotone decreasing in `t`).
fn project_capped_simplex(v: &[f64], cap: f64, target: f64) -> Vec<f64> {
    let sum_at = |t: f64| -> f64 { v.iter().map(|&x| (x - t).clamp(0.0, cap)).sum() };
    let mut lo = v.iter().cloned().fold(f64::INFINITY, f64::min) - cap - 1.0;
    let mut hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    for _ in 0..PROJECT_BISECTIONS {
        let mid = 0.5 * (lo + hi);
        if sum_at(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = 0.5 * (lo + hi);
    v.iter().map(|&x| (x - t).clamp(0.0, cap)).collect()
}

/// The ExoSphere competitor: single-period Markowitz, re-solved from
/// current observations each interval.
pub struct ExoSphereMarkowitzPolicy {
    alpha: f64,
    a_min: f64,
    a_max_total: f64,
    a_max_per_market: f64,
    min_allocation: f64,
    weights: Vec<f64>,
    telemetry: TelemetrySink,
}

impl ExoSphereMarkowitzPolicy {
    /// Build from the shared config (horizon/churn are meaningless to a
    /// single-period optimizer and ignored).
    pub fn new(config: &SpotWebConfig, markets: usize) -> Self {
        ExoSphereMarkowitzPolicy {
            alpha: config.alpha,
            a_min: config.a_min,
            a_max_total: config.a_max_total,
            a_max_per_market: config.a_max_per_market,
            min_allocation: config.min_allocation,
            weights: vec![0.0; markets],
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attach a telemetry sink (counts one decision per `decide`).
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The fractional allocation of the last decision.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Solve `min cᵀa + α·aᵀMa` over the capped simplex at total
    /// allocation `target`.
    fn solve(&self, cost: &[f64], obs: &PolicyObservation<'_>, target: f64) -> Vec<f64> {
        let n = cost.len();
        let cap = self.a_max_per_market;
        // Lipschitz constant of the gradient: ‖2αM‖∞ + guard.
        let mut row_max: f64 = 0.0;
        for i in 0..n {
            let row: f64 = (0..n).map(|j| obs.covariance[(i, j)].abs()).sum();
            row_max = row_max.max(row);
        }
        let step = 1.0 / (2.0 * self.alpha * row_max + 1.0);
        // Feasible uniform start.
        let mut a = vec![(target / n as f64).min(cap); n];
        for _ in 0..PGD_STEPS {
            let grad: Vec<f64> = (0..n)
                .map(|i| {
                    let risk: f64 = (0..n).map(|j| obs.covariance[(i, j)] * a[j]).sum();
                    cost[i] + 2.0 * self.alpha * risk
                })
                .collect();
            let moved: Vec<f64> = a.iter().zip(&grad).map(|(&x, &g)| x - step * g).collect();
            a = project_capped_simplex(&moved, cap, target);
        }
        a
    }
}

impl Policy for ExoSphereMarkowitzPolicy {
    fn name(&self) -> &str {
        "exosphere"
    }

    fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
        self.telemetry.count(names::POLICY_DECISIONS_TOTAL, 1);
        let n = catalog.len();
        // Normalized per-request cost tilted by the revocation
        // probability: losing a server costs its share of the workload.
        let per_req: Vec<f64> = (0..n)
            .map(|i| obs.prices[i] / catalog.market(i).capacity_rps())
            .collect();
        let mean = per_req.iter().sum::<f64>() / n as f64;
        let cost: Vec<f64> = per_req
            .iter()
            .zip(obs.failure_probs)
            .map(|(&c, &f)| c / mean.max(f64::MIN_POSITIVE) + f)
            .collect();

        // First pass at full coverage, then inflate the total by the
        // portfolio's expected capacity loss (ExoSphere's
        // fault-tolerance margin) and re-solve.
        let feasible_max = (n as f64 * self.a_max_per_market).min(self.a_max_total);
        let base = self.a_min.max(1.0).min(feasible_max);
        let first = self.solve(&cost, obs, base);
        let expected_loss: f64 = first
            .iter()
            .zip(obs.failure_probs)
            .map(|(a, f)| a * f)
            .sum();
        let target = (base * (1.0 + expected_loss)).min(feasible_max);
        self.weights = self.solve(&cost, obs, target);

        let lambda = obs
            .oracle
            .and_then(|v| v.workload.first().copied())
            .unwrap_or(obs.current_workload);
        to_server_counts(catalog, &self.weights, lambda, self.min_allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_linalg::Matrix;

    fn obs<'a>(prices: &'a [f64], failures: &'a [f64], cov: &'a Matrix) -> PolicyObservation<'a> {
        PolicyObservation {
            interval: 0,
            current_workload: 1000.0,
            prices,
            failure_probs: failures,
            covariance: cov,
            oracle: None,
        }
    }

    #[test]
    fn projection_lands_on_the_capped_simplex() {
        let a = project_capped_simplex(&[5.0, -3.0, 0.2, 0.2], 0.6, 1.0);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(a.iter().all(|&x| (0.0..=0.6 + 1e-12).contains(&x)));
        assert!(a[0] > a[1], "larger input keeps the larger share");
    }

    #[test]
    fn prefers_cheap_markets_and_covers_demand() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [6.5, 0.4, 1.1];
        let failures = [0.04; 3];
        let cov = Matrix::identity(3).scaled(1e-4);
        let mut p = ExoSphereMarkowitzPolicy::new(&SpotWebConfig::default(), 3);
        let counts = p.decide(&catalog, &obs(&prices, &failures, &cov));
        let w = p.weights();
        assert!(
            w[1] > w[0] && w[1] > w[2],
            "cheapest market dominates: {w:?}"
        );
        let cap: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * catalog.market(i).capacity_rps())
            .sum();
        assert!(cap >= 1000.0, "capacity {cap} covers the workload");
    }

    #[test]
    fn correlation_pushes_the_portfolio_apart() {
        let catalog = Catalog::fig5_three_markets();
        // Same per-request cost everywhere so only risk discriminates.
        let prices: Vec<f64> = catalog
            .markets()
            .iter()
            .map(|m| m.capacity_rps() * 1e-3)
            .collect();
        let failures = [0.05; 3];
        let independent = Matrix::identity(3);
        let mut correlated = Matrix::identity(3);
        correlated[(0, 1)] = 0.95;
        correlated[(1, 0)] = 0.95;
        let config = SpotWebConfig {
            a_max_per_market: 0.9,
            ..SpotWebConfig::default()
        };
        let mut p = ExoSphereMarkowitzPolicy::new(&config, 3);
        p.decide(&catalog, &obs(&prices, &failures, &independent));
        let w_ind = p.weights().to_vec();
        p.decide(&catalog, &obs(&prices, &failures, &correlated));
        let w_cor = p.weights().to_vec();
        // Correlated 0/1 pair loses combined share to the independent 2.
        assert!(
            w_cor[2] > w_ind[2] + 1e-6,
            "uncorrelated market gains share: {w_ind:?} -> {w_cor:?}"
        );
    }

    #[test]
    fn decide_is_a_pure_function_of_observations() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2];
        let failures = [0.1, 0.02, 0.05];
        let cov = Matrix::identity(3).scaled(1e-2);
        let run = || {
            let mut p = ExoSphereMarkowitzPolicy::new(&SpotWebConfig::default(), 3);
            p.decide(&catalog, &obs(&prices, &failures, &cov))
        };
        assert_eq!(run(), run());
    }
}
