//! SpotWeb core: SLO-aware multi-period portfolio optimization for
//! transient cloud servers (paper §4).
//!
//! Given a market catalog, forecasts of workload / prices / revocation
//! probabilities over a look-ahead horizon `H`, and a revocation
//! covariance matrix `M`, the optimizer chooses fractional traffic
//! allocations `A[τ][i]` (the share of requests served by market `i` in
//! interval `τ`) minimizing
//!
//! ```text
//! Σ_τ  provisioning(τ) + SLA-violation(τ) + α·A(τ)ᵀMA(τ) + γ‖A(τ)−A(τ−1)‖²
//! ```
//!
//! subject to `0 ≤ A[τ][i] ≤ a_max` and `A_min ≤ Σ_i A[τ][i] ≤ A_max`
//! (Eq. 3–10). Only the first interval's allocation is executed —
//! receding horizon — and it converts to integer server counts.
//!
//! Modules:
//! * [`config`] — all paper parameters (`α`, `P`, `L`, bounds, `H`, `γ`).
//! * [`forecast`] — the forecast bundle the optimizer consumes and
//!   builders that poll `spotweb-predict` predictors.
//! * [`portfolio`] — translation of the paper's formulation into the
//!   `spotweb-solver` QP standard form.
//! * [`mpo`] — the multi-period optimizer (warm-started, receding
//!   horizon).
//! * [`spo`] — single-period optimization, i.e. the ExoSphere baseline.
//! * [`allocation`] — fractional allocation → integer server counts.
//! * [`policy`] — pluggable provisioning policies: SpotWeb, ExoSphere-
//!   in-a-loop, constant portfolio + autoscaler, on-demand only.
//! * [`evaluate`] — the coarse-grained (interval-level) cost evaluation
//!   harness behind Figs. 5–7.
//! * [`risk`] — portfolio risk and diversification diagnostics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allocation;
pub mod config;
pub mod evaluate;
pub mod forecast;
pub mod mpo;
pub mod policy;
pub mod portfolio;
pub mod risk;
pub mod spo;

pub use allocation::{to_server_counts, total_capacity_rps};
pub use config::{SpotWebConfig, ZooConfig};
pub use evaluate::{simulate_costs, CostReport};
pub use forecast::ForecastBundle;
pub use mpo::{MpoOptimizer, PortfolioDecision};
pub use policy::exosphere::ExoSphereMarkowitzPolicy;
pub use policy::factory::{build_policy, normalize_policy_name, ZOO_POLICIES};
pub use policy::het_spot_groups::HetSpotGroupsPolicy;
pub use policy::index_tracking::IndexTrackingPolicy;
pub use policy::randomized_market::RandomizedMarketPolicy;
pub use policy::{
    ConstantPortfolioPolicy, ExoSpherePolicy, OnDemandPolicy, Policy, PolicyObservation,
    QuThresholdPolicy, SpotWebPolicy,
};
pub use spo::SpoOptimizer;

/// Errors surfaced by the optimizer layer.
#[derive(Debug)]
pub enum CoreError {
    /// Mismatched input dimensions (markets vs forecasts vs covariance).
    Dimension(String),
    /// The underlying QP solver failed to set up.
    Solver(spotweb_solver::SolverError),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Dimension(msg) => write!(f, "dimension error: {msg}"),
            CoreError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<spotweb_solver::SolverError> for CoreError {
    fn from(e: spotweb_solver::SolverError) -> Self {
        CoreError::Solver(e)
    }
}

/// Convenience result alias.
pub type Result<T> = core::result::Result<T, CoreError>;
