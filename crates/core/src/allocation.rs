//! Fractional allocation → integer server counts.
//!
//! The optimizer emits `A[i]`, the fraction of predicted traffic market
//! `i` should serve. Deployment needs whole servers:
//! `n_i = ⌈A_i · λ̂ / r_i⌉` (§4.2). Rounding up guarantees the deployed
//! capacity covers at least the allocated share; allocations below the
//! configured floor are dropped so the portfolio doesn't sprawl across
//! markets serving negligible traffic.

use spotweb_market::Catalog;

/// Convert fractional allocations to per-market server counts.
///
/// * `allocation[i]` — fraction of `lambda` assigned to market `i`.
/// * `lambda` — predicted peak request rate (req/s) to provision for.
/// * `min_allocation` — fractions below this are treated as zero.
pub fn to_server_counts(
    catalog: &Catalog,
    allocation: &[f64],
    lambda: f64,
    min_allocation: f64,
) -> Vec<u32> {
    assert_eq!(allocation.len(), catalog.len(), "allocation per market");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    allocation
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            if a < min_allocation || lambda == 0.0 {
                0
            } else {
                let rps = a * lambda;
                let r = catalog.market(i).capacity_rps();
                (rps / r).ceil() as u32
            }
        })
        .collect()
}

/// Total serving capacity (req/s) of a fleet.
pub fn total_capacity_rps(catalog: &Catalog, counts: &[u32]) -> f64 {
    assert_eq!(counts.len(), catalog.len());
    counts
        .iter()
        .enumerate()
        .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
        .sum()
}

/// Hourly cost ($) of a fleet at the given per-market prices.
pub fn fleet_cost_per_hour(counts: &[u32], prices: &[f64]) -> f64 {
    assert_eq!(counts.len(), prices.len());
    counts.iter().zip(prices).map(|(&n, &p)| n as f64 * p).sum()
}

/// Effective weighted-round-robin weights for a fleet: each market's
/// share of total capacity. Used to program the load balancer (§4.4:
/// "The weights are set to be equal to the relative weight of a market
/// within the portfolio"). Returns zeros when the fleet is empty.
pub fn wrr_weights(catalog: &Catalog, counts: &[u32]) -> Vec<f64> {
    let total = total_capacity_rps(catalog, counts);
    if total == 0.0 {
        return vec![0.0; counts.len()];
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps() / total)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_market::Catalog;

    #[test]
    fn counts_round_up() {
        let c = Catalog::fig5_three_markets(); // capacities 1920, 320, 320
        let counts = to_server_counts(&c, &[0.5, 0.5, 0.0], 1000.0, 1e-3);
        // 500 rps / 1920 → 1 server; 500 / 320 → 2 servers.
        assert_eq!(counts, vec![1, 2, 0]);
    }

    #[test]
    fn capacity_never_below_allocated_share() {
        let c = Catalog::fig5_three_markets();
        let alloc = [0.4, 0.35, 0.25];
        let lambda = 2500.0;
        let counts = to_server_counts(&c, &alloc, lambda, 1e-3);
        for i in 0..3 {
            let cap = counts[i] as f64 * c.market(i).capacity_rps();
            assert!(cap >= alloc[i] * lambda - 1e-9);
        }
    }

    #[test]
    fn tiny_allocations_dropped() {
        let c = Catalog::fig5_three_markets();
        let counts = to_server_counts(&c, &[1.0, 0.0004, 0.0], 1000.0, 1e-3);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn zero_lambda_zero_servers() {
        let c = Catalog::fig5_three_markets();
        assert_eq!(
            to_server_counts(&c, &[1.0, 1.0, 1.0], 0.0, 1e-3),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn capacity_and_cost() {
        let c = Catalog::fig5_three_markets();
        let counts = vec![1u32, 2, 0];
        assert_eq!(total_capacity_rps(&c, &counts), 1920.0 + 640.0);
        assert_eq!(fleet_cost_per_hour(&counts, &[2.0, 1.0, 9.0]), 4.0);
    }

    #[test]
    fn wrr_weights_proportional_to_capacity() {
        let c = Catalog::fig5_three_markets();
        let w = wrr_weights(&c, &[1, 2, 0]);
        assert!((w[0] - 1920.0 / 2560.0).abs() < 1e-12);
        assert!((w[1] - 640.0 / 2560.0).abs() < 1e-12);
        assert_eq!(w[2], 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_zero_weights() {
        let c = Catalog::fig5_three_markets();
        assert_eq!(wrr_weights(&c, &[0, 0, 0]), vec![0.0; 3]);
    }
}
