//! SpotWeb configuration (the paper's tunables, §6 "SpotWeb's
//! configuration").

/// All SpotWeb parameters. [`SpotWebConfig::default`] reproduces the
/// paper's evaluation configuration: `P = 0.02`, `L = 0`, `α = 5`,
/// horizon 4, hourly decision intervals.
#[derive(Debug, Clone)]
pub struct SpotWebConfig {
    /// Look-ahead horizon `H` in decision intervals (≥ 1; 1 = SPO).
    pub horizon: usize,
    /// Risk-aversion parameter `α` (Eq. 5).
    pub alpha: f64,
    /// Per-request SLO-violation penalty `P` in $ (Eq. 4). The paper
    /// sets it to twice the most expensive per-request serving cost so
    /// dropping is never cheaper than serving.
    pub penalty_per_request: f64,
    /// Fraction `L` of long-running requests that cannot migrate within
    /// the warning period (Eq. 4). Zero for sub-second web requests.
    pub long_running_fraction: f64,
    /// Minimum total fractional allocation `A_min` (Eq. 8) — 1.0 means
    /// "cover the full predicted workload".
    pub a_min: f64,
    /// Maximum total fractional allocation `A_max` (Eq. 9) — caps
    /// over-provisioning.
    pub a_max_total: f64,
    /// Maximum fractional allocation `a_max` per market (Eq. 10) —
    /// forces diversification when < 1.
    pub a_max_per_market: f64,
    /// Churn (transaction-cost) weight `γ` on `‖A(τ) − A(τ−1)‖²`.
    /// Multi-period trading (Boyd et al. 2017) motivates this term; the
    /// paper cites reduced churn as an MPO benefit. Set 0 to ablate.
    pub churn_gamma: f64,
    /// Decision interval length in seconds (the paper uses hourly).
    pub interval_secs: f64,
    /// Drop allocations below this fraction when converting to servers
    /// (avoids spinning up a server for 0.1% of traffic).
    pub min_allocation: f64,
}

impl Default for SpotWebConfig {
    fn default() -> Self {
        SpotWebConfig {
            horizon: 4,
            alpha: 5.0,
            penalty_per_request: 0.02,
            long_running_fraction: 0.0,
            a_min: 1.0,
            a_max_total: 1.6,
            a_max_per_market: 1.0,
            churn_gamma: 0.05,
            interval_secs: 3600.0,
            min_allocation: 5e-3,
        }
    }
}

impl SpotWebConfig {
    /// Validate invariants; call after hand-building a config.
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon == 0 {
            return Err("horizon must be >= 1".into());
        }
        if self.alpha < 0.0 || self.churn_gamma < 0.0 {
            return Err("alpha and churn_gamma must be non-negative".into());
        }
        if !(self.a_min >= 0.0 && self.a_min <= self.a_max_total) {
            return Err("need 0 <= a_min <= a_max_total".into());
        }
        if !(self.a_max_per_market > 0.0 && self.a_max_per_market <= self.a_max_total) {
            return Err("need 0 < a_max_per_market <= a_max_total".into());
        }
        if self.interval_secs <= 0.0 {
            return Err("interval_secs must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.long_running_fraction) {
            return Err("long_running_fraction in [0,1]".into());
        }
        Ok(())
    }

    /// A copy with a different horizon (for the Fig. 6(b)/7(b) sweeps).
    pub fn with_horizon(&self, horizon: usize) -> Self {
        SpotWebConfig {
            horizon,
            ..self.clone()
        }
    }
}

/// Tunables of the policy-zoo competitors (the related-work strategies
/// the tournament ranks against SpotWeb). Grouped separately from
/// [`SpotWebConfig`] because none of them feed the MPO; they
/// parameterize the zoo policies built by
/// [`crate::policy::factory::build_policy`].
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// EWMA gain for the index-tracking policy's smoothed target
    /// weights (see `spotweb_predict::index::IndexWeightTracker`).
    pub index_ewma_beta: f64,
    /// Capacity headroom multiplier the index tracker provisions above
    /// the target rate (it does not over-provision per the CI like the
    /// MPO, so it carries a flat margin instead).
    pub index_headroom: f64,
    /// Absolute-correlation threshold above which two markets share a
    /// failure-domain group (het-spot-groups policy).
    pub group_corr_threshold: f64,
    /// Number of whole correlation groups the het-spot-groups policy
    /// over-provisions to survive losing simultaneously.
    pub group_fault_tolerance: usize,
    /// Number of distinct markets the randomized-market policy samples
    /// each interval.
    pub random_subset: usize,
    /// Cheapness exponent of the randomized selection distribution:
    /// selection weight ∝ (cheapest_cost / cost)^β · (1 − failure).
    /// Integer so the weight is computed by exact multiplications
    /// (`powi`) — byte-stable on every platform, no `exp`.
    pub random_beta: i32,
    /// Capacity headroom multiplier for the randomized policy.
    pub random_headroom: f64,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            index_ewma_beta: 0.2,
            index_headroom: 1.1,
            group_corr_threshold: 0.5,
            group_fault_tolerance: 1,
            random_subset: 2,
            random_beta: 4,
            random_headroom: 1.15,
        }
    }
}

impl ZooConfig {
    /// Validate invariants; call after hand-building a config.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.index_ewma_beta > 0.0 && self.index_ewma_beta <= 1.0) {
            return Err("index_ewma_beta in (0,1]".into());
        }
        if self.index_headroom < 1.0 || self.random_headroom < 1.0 {
            return Err("headroom multipliers must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.group_corr_threshold) {
            return Err("group_corr_threshold in [0,1]".into());
        }
        if self.random_subset == 0 {
            return Err("random_subset must be >= 1".into());
        }
        if self.random_beta < 0 {
            return Err("random_beta must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_config() {
        let c = SpotWebConfig::default();
        assert_eq!(c.alpha, 5.0);
        assert_eq!(c.penalty_per_request, 0.02);
        assert_eq!(c.long_running_fraction, 0.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_bounds() {
        let bad_min = SpotWebConfig {
            a_min: 2.0, // above a_max_total 1.6
            ..SpotWebConfig::default()
        };
        assert!(bad_min.validate().is_err());
        let bad_horizon = SpotWebConfig {
            horizon: 0,
            ..SpotWebConfig::default()
        };
        assert!(bad_horizon.validate().is_err());
        let bad_cap = SpotWebConfig {
            a_max_per_market: 0.0,
            ..SpotWebConfig::default()
        };
        assert!(bad_cap.validate().is_err());
    }

    #[test]
    fn with_horizon_preserves_rest() {
        let c = SpotWebConfig::default().with_horizon(10);
        assert_eq!(c.horizon, 10);
        assert_eq!(c.alpha, SpotWebConfig::default().alpha);
    }

    #[test]
    fn zoo_default_validates() {
        assert!(ZooConfig::default().validate().is_ok());
    }

    #[test]
    fn zoo_validation_catches_bad_values() {
        for bad in [
            ZooConfig {
                index_ewma_beta: 0.0,
                ..ZooConfig::default()
            },
            ZooConfig {
                index_headroom: 0.9,
                ..ZooConfig::default()
            },
            ZooConfig {
                group_corr_threshold: 1.5,
                ..ZooConfig::default()
            },
            ZooConfig {
                random_subset: 0,
                ..ZooConfig::default()
            },
            ZooConfig {
                random_beta: -1,
                ..ZooConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }
}
