//! Interval-level cost evaluation — the simulation harness behind
//! Figs. 5, 6 and 7(a).
//!
//! The paper's long-horizon experiments use a discrete-event simulator
//! at coarse granularity: per decision interval, the policy picks a
//! fleet, the market moves, revocations strike, and the ledger records
//! provisioning cost and SLO-violation penalties. (The fine-grained
//! request-level simulator lives in `spotweb-sim` and backs Fig. 4(a).)
//!
//! Timeline per interval `t`:
//! 1. the cloud advances (prices, failure probabilities),
//! 2. the policy observes interval `t`'s workload + the fresh market
//!    tick and decides the fleet for interval `t+1`,
//! 3. revocations strike the deployed fleet during `t+1` (a revoked
//!    server contributes half the interval in expectation),
//! 4. the ledger charges server-hours at realized prices and penalties
//!    for requests beyond the surviving capacity.

use spotweb_linalg::Matrix;
use spotweb_market::{estimate_correlation, Catalog, CloudSim, Provider};
use spotweb_workload::Trace;

use crate::policy::{OracleView, Policy, PolicyObservation};

/// Options for an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Intervals to simulate (capped by trace length − 1).
    pub intervals: usize,
    /// Market warm-up steps before the run (fills history windows).
    pub cloud_warmup: usize,
    /// RNG seed for the cloud simulation.
    pub seed: u64,
    /// Penalty per dropped request ($). The paper sets its `P` to
    /// twice the *most expensive* per-request serving cost so that
    /// dropping is never cheaper than serving; the priciest market in
    /// our catalog (x1e.16xlarge) serves a request for ≈ 2.9 µ$, so
    /// the default is 6 µ$ per dropped request.
    pub penalty_per_request: f64,
    /// Grant the policy perfect future knowledge (oracle experiments).
    pub oracle: bool,
    /// Oracle look-ahead length (intervals) when `oracle` is set.
    pub oracle_horizon: usize,
    /// Sample random revocations against the deployed fleet.
    pub revocations: bool,
    /// Decision interval in seconds.
    pub interval_secs: f64,
    /// Capacity gap per revoked server: the seconds between losing the
    /// server and its replacement serving at full speed (warning-period
    /// drain + startup + cache warm-up; §6.1 measures ≈ 1 min startup +
    /// 30–90 s warm-up). The controller reprovisions reactively, so the
    /// gap is minutes, not the rest of the interval.
    pub recovery_gap_secs: f64,
    /// Cloud-provider profile (price dynamics, warning period,
    /// preemption rates — §7 "Other Cloud providers").
    pub provider: Provider,
    /// §6.2 reactive provisioning: when the deployed capacity falls
    /// short mid-interval, request on-demand top-up servers "to add
    /// additional capacity to the cluster for the remainder of the
    /// interval". Off by default so the headline figures measure the
    /// proactive system alone.
    pub reactive_topup: bool,
    /// Seconds before top-up capacity serves (request + boot + warm).
    pub topup_reaction_secs: f64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            intervals: 336,
            cloud_warmup: 48,
            seed: 42,
            penalty_per_request: 6e-6,
            oracle: false,
            oracle_horizon: 10,
            revocations: true,
            interval_secs: 3600.0,
            recovery_gap_secs: 180.0,
            provider: Provider::Ec2Spot,
            reactive_topup: false,
            topup_reaction_secs: 300.0,
        }
    }
}

/// Per-interval record (figures plot these series).
#[derive(Debug, Clone)]
pub struct IntervalRecord {
    /// Interval index.
    pub interval: usize,
    /// Workload the fleet had to serve (req/s).
    pub workload: f64,
    /// Deployed server counts per market.
    pub fleet: Vec<u32>,
    /// Provisioning cost for the interval ($).
    pub provisioning_cost: f64,
    /// Penalty cost for the interval ($).
    pub penalty_cost: f64,
    /// Requests dropped in the interval.
    pub dropped_requests: f64,
    /// Capacity after revocations (req/s).
    pub effective_capacity: f64,
    /// Number of servers revoked during the interval.
    pub revoked_servers: u32,
    /// Reactive on-demand top-up servers started this interval (§6.2).
    pub topup_servers: u32,
}

/// Aggregate result of an evaluation run.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Policy name.
    pub policy: String,
    /// Total provisioning cost ($).
    pub provisioning_cost: f64,
    /// Total SLO penalty ($).
    pub penalty_cost: f64,
    /// Total requests offered.
    pub total_requests: f64,
    /// Total requests dropped.
    pub dropped_requests: f64,
    /// Per-interval detail.
    pub records: Vec<IntervalRecord>,
}

impl CostReport {
    /// Provisioning + penalties ($).
    pub fn total_cost(&self) -> f64 {
        self.provisioning_cost + self.penalty_cost
    }

    /// Fraction of requests dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.total_requests == 0.0 {
            0.0
        } else {
            self.dropped_requests / self.total_requests
        }
    }

    /// Cost savings of `self` relative to `other` (positive = cheaper).
    pub fn savings_vs(&self, other: &CostReport) -> f64 {
        if other.total_cost() == 0.0 {
            return 0.0;
        }
        1.0 - self.total_cost() / other.total_cost()
    }
}

/// Run `policy` over `trace` on a fresh cloud built from `catalog`.
///
/// Deterministic for a given `(catalog, trace, options.seed)` triple —
/// competing policies evaluated with the same seed see *identical*
/// price and revocation-probability paths.
pub fn simulate_costs(
    policy: &mut dyn Policy,
    catalog: &Catalog,
    trace: &Trace,
    options: &EvalOptions,
) -> CostReport {
    assert!(trace.len() >= 2, "trace too short to evaluate");
    let mut cloud = options
        .provider
        .cloud(catalog.clone(), options.seed, 24 * 60);
    cloud.warm_up(options.cloud_warmup.max(4));

    let intervals = options.intervals.min(trace.len() - 1);
    let interval_hours = options.interval_secs / 3600.0;
    let mut records = Vec::with_capacity(intervals);
    let mut provisioning_total = 0.0;
    let mut penalty_total = 0.0;
    let mut total_requests = 0.0;
    let mut dropped_total = 0.0;

    for t in 0..intervals {
        let tick = cloud.step();
        // §6: "M is chosen based on correlation between the failure
        // probabilities" — scale-free, so the paper's α = 5 is
        // commensurate with the O(1) cost terms.
        let covariance = estimate_correlation(&cloud.history().failure_matrix(), 0.1);
        let current_workload = trace.get(t);

        // Oracle: clone the cloud to peek at the true future prices.
        let oracle_view = if options.oracle {
            let h = options.oracle_horizon;
            let mut peek = cloud.clone();
            let mut prices = Vec::with_capacity(h);
            for _ in 0..h {
                prices.push(peek.step().prices);
            }
            let workload: Vec<f64> = (0..h)
                .map(|k| trace.get((t + 1 + k).min(trace.len() - 1)))
                .collect();
            Some(OracleView { workload, prices })
        } else {
            None
        };

        let obs = PolicyObservation {
            interval: t,
            current_workload,
            prices: &tick.prices,
            failure_probs: &tick.failure_probs,
            covariance: &covariance,
            oracle: oracle_view.as_ref(),
        };
        let fleet = policy.decide(catalog, &obs);
        assert_eq!(fleet.len(), catalog.len(), "policy fleet length");

        // The fleet serves interval t+1.
        let served_workload = trace.get(t + 1);
        let offered = served_workload * options.interval_secs;
        total_requests += offered;

        // Revocations against the deployed fleet.
        let (revoked, surviving) = if options.revocations {
            let events = cloud.sample_revocations(&fleet);
            let mut surviving = fleet.clone();
            for e in &events {
                if surviving[e.market] > 0 {
                    surviving[e.market] -= 1;
                }
            }
            (events.len() as u32, surviving)
        } else {
            (0, fleet.clone())
        };

        // Capacity: a revoked server is replaced reactively (the
        // controller requests a substitute on the warning, §4.4/§6.2),
        // so the fleet only loses each revoked server's capacity for
        // the recovery gap, amortized over the interval.
        let cap = |counts: &[u32]| -> f64 {
            counts
                .iter()
                .enumerate()
                .map(|(i, &n)| n as f64 * catalog.market(i).capacity_rps())
                .sum()
        };
        let full_cap = cap(&fleet);
        let surv_cap = cap(&surviving);
        let gap_fraction = (options.recovery_gap_secs / options.interval_secs).clamp(0.0, 1.0);
        let effective_capacity = full_cap - gap_fraction * (full_cap - surv_cap);

        let mut unserved_rps = (served_workload - effective_capacity).max(0.0);
        let mut topup_servers = 0u32;
        let mut topup_cost = 0.0;
        if options.reactive_topup && unserved_rps > 0.0 {
            // §6.2: request on-demand capacity for the rest of the
            // interval. Pick the cheapest per-request configuration at
            // on-demand prices; the gap persists for the reaction time.
            let best = catalog
                .markets()
                .iter()
                .min_by(|a, b| {
                    a.instance
                        .on_demand_cost_per_request()
                        .partial_cmp(&b.instance.on_demand_cost_per_request())
                        .expect("finite prices")
                })
                .expect("non-empty catalog");
            topup_servers = (unserved_rps / best.capacity_rps()).ceil() as u32;
            let serving_secs = (options.interval_secs - options.topup_reaction_secs).max(0.0);
            topup_cost =
                topup_servers as f64 * best.instance.on_demand_price * (serving_secs / 3600.0);
            // Only the reaction window still drops requests.
            let reaction_fraction =
                (options.topup_reaction_secs / options.interval_secs).clamp(0.0, 1.0);
            unserved_rps *= reaction_fraction;
        }
        let dropped = unserved_rps * options.interval_secs;
        dropped_total += dropped;
        let penalty = dropped * options.penalty_per_request;
        penalty_total += penalty;

        // Charge realized prices for the full fleet (the revoked server
        // and its replacement together cover the interval; the short
        // recovery gap is not billed). Prices are the decision tick's —
        // identical across competing policies for a given seed.
        let mut provisioning = topup_cost;
        for (i, &n_full) in fleet.iter().enumerate() {
            provisioning += tick.prices[i] * interval_hours * n_full as f64;
        }
        provisioning_total += provisioning;

        records.push(IntervalRecord {
            interval: t,
            workload: served_workload,
            fleet,
            provisioning_cost: provisioning,
            penalty_cost: penalty,
            dropped_requests: dropped,
            effective_capacity,
            revoked_servers: revoked,
            topup_servers,
        });
    }

    CostReport {
        policy: policy.name().to_string(),
        provisioning_cost: provisioning_total,
        penalty_cost: penalty_total,
        total_requests,
        dropped_requests: dropped_total,
        records,
    }
}

/// Risk-matrix helper re-exported for policies/tests that need the same
/// estimator the harness uses (§6: correlation of failure probabilities).
pub fn covariance_from_cloud(cloud: &CloudSim) -> Matrix {
    estimate_correlation(&cloud.history().failure_matrix(), 0.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpotWebConfig;
    use crate::policy::{OnDemandPolicy, SpotWebPolicy};
    use spotweb_workload::wikipedia_like;

    fn short_options() -> EvalOptions {
        EvalOptions {
            intervals: 48,
            cloud_warmup: 24,
            seed: 7,
            ..EvalOptions::default()
        }
    }

    #[test]
    fn report_accounting_consistent() {
        let catalog = Catalog::fig5_three_markets();
        let trace = wikipedia_like(100, 1).with_mean(2000.0);
        let mut policy = OnDemandPolicy::new();
        let r = simulate_costs(&mut policy, &catalog, &trace, &short_options());
        assert_eq!(r.records.len(), 48);
        let sum_prov: f64 = r.records.iter().map(|x| x.provisioning_cost).sum();
        assert!((sum_prov - r.provisioning_cost).abs() < 1e-9);
        let sum_drop: f64 = r.records.iter().map(|x| x.dropped_requests).sum();
        assert!((sum_drop - r.dropped_requests).abs() < 1e-6);
        assert!(r.total_cost() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let catalog = Catalog::fig5_three_markets();
        let trace = wikipedia_like(100, 2).with_mean(2000.0);
        let run = || {
            let mut policy = OnDemandPolicy::new();
            simulate_costs(&mut policy, &catalog, &trace, &short_options()).total_cost()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spot_policy_cheaper_than_on_demand() {
        // The headline §8 claim: transient provisioning is far cheaper
        // than conventional on-demand. Both policies face the same
        // 6-market catalog (3 spot + 3 on-demand twins); the on-demand
        // baseline only buys the non-revocable twins.
        let catalog = Catalog::fig5_three_markets().with_on_demand();
        let n = catalog.len();
        let trace = wikipedia_like(120, 3).with_mean(3000.0);
        let opts = EvalOptions {
            intervals: 72,
            ..short_options()
        };
        let mut sw = SpotWebPolicy::new(SpotWebConfig::default(), n);
        let r_sw = simulate_costs(&mut sw, &catalog, &trace, &opts);
        let mut od = OnDemandPolicy::new();
        let r_od = simulate_costs(&mut od, &catalog, &trace, &opts);
        assert!(
            r_sw.total_cost() < r_od.total_cost(),
            "spotweb {} vs on-demand {}",
            r_sw.total_cost(),
            r_od.total_cost()
        );
        let savings = r_sw.savings_vs(&r_od);
        assert!(savings > 0.3, "savings {savings} too small");
    }

    #[test]
    fn oracle_view_provided_when_requested() {
        let catalog = Catalog::fig5_three_markets();
        let trace = wikipedia_like(100, 4).with_mean(2000.0);

        struct Probe {
            saw_oracle: bool,
        }
        impl Policy for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
                if let Some(v) = obs.oracle {
                    assert_eq!(v.workload.len(), 10);
                    assert_eq!(v.prices.len(), 10);
                    self.saw_oracle = true;
                }
                vec![1; catalog.len()]
            }
        }
        let mut probe = Probe { saw_oracle: false };
        let opts = EvalOptions {
            oracle: true,
            intervals: 4,
            ..short_options()
        };
        simulate_costs(&mut probe, &catalog, &trace, &opts);
        assert!(probe.saw_oracle);
    }

    #[test]
    fn no_revocations_means_no_revoked_servers() {
        let catalog = Catalog::fig5_three_markets();
        let trace = wikipedia_like(60, 5).with_mean(2000.0);
        let opts = EvalOptions {
            revocations: false,
            intervals: 24,
            ..short_options()
        };
        let mut policy = OnDemandPolicy::new();
        let r = simulate_costs(&mut policy, &catalog, &trace, &opts);
        assert!(r.records.iter().all(|rec| rec.revoked_servers == 0));
    }

    #[test]
    fn reactive_topup_trades_drops_for_cost() {
        // An under-provisioning policy: half the needed capacity.
        struct HalfPolicy;
        impl Policy for HalfPolicy {
            fn name(&self) -> &str {
                "half"
            }
            fn decide(&mut self, catalog: &Catalog, obs: &PolicyObservation<'_>) -> Vec<u32> {
                let mut fleet = vec![0u32; catalog.len()];
                let cap = catalog.market(0).capacity_rps();
                fleet[0] = ((obs.current_workload * 0.5) / cap).ceil() as u32;
                fleet
            }
        }
        let catalog = Catalog::fig5_three_markets();
        let trace = wikipedia_like(80, 9).with_mean(4000.0);
        let base = EvalOptions {
            intervals: 48,
            cloud_warmup: 8,
            seed: 5,
            revocations: false,
            ..EvalOptions::default()
        };
        let without = simulate_costs(&mut HalfPolicy, &catalog, &trace, &base);
        let with_topup = simulate_costs(
            &mut HalfPolicy,
            &catalog,
            &trace,
            &EvalOptions {
                reactive_topup: true,
                ..base
            },
        );
        assert!(
            with_topup.drop_fraction() < without.drop_fraction(),
            "topup {} vs bare {}",
            with_topup.drop_fraction(),
            without.drop_fraction()
        );
        assert!(
            with_topup.provisioning_cost > without.provisioning_cost,
            "top-up capacity must cost money"
        );
        assert!(with_topup.records.iter().any(|r| r.topup_servers > 0));
    }
}
