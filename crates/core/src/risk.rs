//! Portfolio risk and diversification diagnostics.

use spotweb_linalg::Matrix;

/// Quadratic portfolio risk `AᵀMA` (Eq. 5, without the α factor).
pub fn portfolio_risk(allocation: &[f64], covariance: &Matrix) -> f64 {
    covariance
        .quadratic_form(allocation)
        .expect("allocation/covariance dimension mismatch")
}

/// Herfindahl–Hirschman index of an allocation: 1.0 = everything in one
/// market, `1/N` = perfectly spread. The diversification metric used in
/// tests and the ablation benches.
pub fn herfindahl(allocation: &[f64]) -> f64 {
    let total: f64 = allocation.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    allocation
        .iter()
        .map(|a| {
            let s = a / total;
            s * s
        })
        .sum()
}

/// Effective number of markets `1 / HHI` (0 for an empty allocation).
pub fn effective_markets(allocation: &[f64]) -> f64 {
    let h = herfindahl(allocation);
    if h == 0.0 {
        0.0
    } else {
        1.0 / h
    }
}

/// Expected fraction of allocation lost to a single revocation event,
/// assuming whole-market reclaims: `Σ_i f_i · share_i`.
pub fn expected_loss_fraction(allocation: &[f64], failure_probs: &[f64]) -> f64 {
    assert_eq!(allocation.len(), failure_probs.len());
    let total: f64 = allocation.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    allocation
        .iter()
        .zip(failure_probs)
        .map(|(a, f)| (a / total) * f)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_of_identity_cov_is_sum_of_squares() {
        let m = Matrix::identity(3);
        assert_eq!(portfolio_risk(&[1.0, 2.0, 3.0], &m), 14.0);
    }

    #[test]
    fn hhi_extremes() {
        assert_eq!(herfindahl(&[1.0, 0.0, 0.0]), 1.0);
        assert!((herfindahl(&[0.25; 4]) - 0.25).abs() < 1e-12);
        assert_eq!(herfindahl(&[0.0; 3]), 0.0);
    }

    #[test]
    fn effective_markets_counts() {
        assert!((effective_markets(&[0.5, 0.5]) - 2.0).abs() < 1e-12);
        assert_eq!(effective_markets(&[0.0]), 0.0);
    }

    #[test]
    fn expected_loss_weights_by_share() {
        let loss = expected_loss_fraction(&[0.8, 0.2], &[0.1, 0.5]);
        assert!((loss - (0.8 * 0.1 + 0.2 * 0.5)).abs() < 1e-12);
        assert_eq!(expected_loss_fraction(&[0.0, 0.0], &[0.1, 0.5]), 0.0);
    }
}
