//! The multi-period portfolio optimizer (receding horizon).
//!
//! Per §4.1: "while all trades over the horizon H are computed, only
//! the first interval portfolio allocation is actually executed to
//! limit error propagation" — [`MpoOptimizer::optimize`] returns the
//! full horizon plan but callers deploy only
//! [`PortfolioDecision::first`]. The optimizer warm-starts each solve
//! from the previous solution, which is why re-optimizing every
//! interval stays cheap (Fig. 7(b)).

// spotweb-lint: allow(wall-clock-quarantine) -- solve wall-time feeds the quarantined MPO_SOLVE_SECS store; never enters decision logic
use std::time::Instant;

use spotweb_linalg::Matrix;
use spotweb_market::Catalog;
use spotweb_solver::{AdmmSolver, QpStatus, Settings};
use spotweb_telemetry::{names, prof};

use crate::config::SpotWebConfig;
use crate::forecast::ForecastBundle;
use crate::portfolio::{build_linear_cost, unpack_plan, PortfolioProblem};
use crate::Result;

/// Output of one optimization run.
#[derive(Debug, Clone)]
pub struct PortfolioDecision {
    /// Planned allocations for each horizon interval: `plan[τ][i]`.
    pub plan: Vec<Vec<f64>>,
    /// QP objective value at the solution.
    pub objective: f64,
    /// ADMM iterations used.
    pub iterations: usize,
    /// Whether the solver reached full tolerance.
    pub solved: bool,
    /// Wall-clock solve time in seconds (problem build + solve).
    pub solve_secs: f64,
    /// Whether the solve started from the previous interval's
    /// primal/dual iterate (vs the zero cold start).
    pub warm_started: bool,
    /// Whether the cached KKT factorization was reused (covariance and
    /// dimensions unchanged — only the linear cost was rebuilt).
    pub factor_reused: bool,
}

impl PortfolioDecision {
    /// The executed (first-interval) allocation.
    pub fn first(&self) -> &[f64] {
        &self.plan[0]
    }

    /// Total fractional allocation of the first interval.
    pub fn first_total(&self) -> f64 {
        self.plan[0].iter().sum()
    }
}

/// A solver kept alive across [`MpoOptimizer::optimize`] calls, with
/// the inputs that shaped its quadratic part and constraints. When the
/// next call arrives with the same dimensions and an identical
/// covariance, `P` and `A` are unchanged — only the linear cost `q`
/// needs rebuilding, and the `O((NH)³)` KKT factorization (plus the
/// Ruiz equilibration) from construction is reused.
struct SolverCache {
    solver: AdmmSolver,
    covariance: Matrix,
    markets: usize,
    horizon: usize,
}

/// The SpotWeb multi-period optimizer.
pub struct MpoOptimizer {
    config: SpotWebConfig,
    settings: Settings,
    /// Previous primal/dual solution for warm starting.
    warm: Option<(Vec<f64>, Vec<f64>)>,
    /// Warm starting on by default; disable to measure the cold cost.
    warm_start_enabled: bool,
    /// Built solver reused while covariance/dimensions are unchanged.
    cache: Option<SolverCache>,
}

impl std::fmt::Debug for MpoOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpoOptimizer")
            .field("config", &self.config)
            .field("settings", &self.settings)
            .field("warm", &self.warm.is_some())
            .field("warm_start_enabled", &self.warm_start_enabled)
            .field("cached_solver", &self.cache.is_some())
            .finish()
    }
}

impl Clone for MpoOptimizer {
    /// Clones carry the configuration and warm-start iterate but not
    /// the built solver (it is rebuilt on the clone's first solve).
    fn clone(&self) -> Self {
        MpoOptimizer {
            config: self.config.clone(),
            settings: self.settings.clone(),
            warm: self.warm.clone(),
            warm_start_enabled: self.warm_start_enabled,
            cache: None,
        }
    }
}

impl MpoOptimizer {
    /// New optimizer with default solver settings.
    pub fn new(config: SpotWebConfig) -> Self {
        Self::with_settings(config, Settings::default())
    }

    /// Override solver settings (tests, scalability bench).
    pub fn with_settings(config: SpotWebConfig, settings: Settings) -> Self {
        MpoOptimizer {
            config,
            settings,
            warm: None,
            warm_start_enabled: true,
            cache: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SpotWebConfig {
        &self.config
    }

    /// Enable or disable warm starting (on by default). Disabling
    /// forces every solve to the zero cold start — the knob behind the
    /// warm-vs-cold numbers in `BENCH_sweep.json`.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_start_enabled = enabled;
        if !enabled {
            self.warm = None;
        }
    }

    /// Drop the warm-start iterate and the cached solver (when the
    /// catalog or horizon changes).
    pub fn reset_warm_start(&mut self) {
        self.warm = None;
        self.cache = None;
    }

    /// Run one optimization. `prev_allocation` is the currently
    /// deployed first-interval allocation (zeros at cold start).
    ///
    /// Two caches cut the per-interval cost of the receding-horizon
    /// loop (Fig. 7(b)):
    /// * **warm start** — the previous interval's primal/dual solution
    ///   seeds the ADMM iteration via `solve_from` whenever the
    ///   problem dimensions are unchanged;
    /// * **factorization reuse** — when the covariance `M` (and the
    ///   dimensions) are identical to the previous call, `P` and the
    ///   constraints are identical too, so only the linear cost `q` is
    ///   rebuilt and the cached KKT factorization is kept.
    pub fn optimize(
        &mut self,
        catalog: &Catalog,
        forecast: &ForecastBundle,
        covariance: &Matrix,
        prev_allocation: &[f64],
    ) -> Result<PortfolioDecision> {
        // spotweb-lint: allow(wall-clock-quarantine) -- solve wall-time feeds the quarantined MPO_SOLVE_SECS store; never enters decision logic
        let started = Instant::now();
        prof::scope!(names::SPAN_MPO_SOLVE);
        let n = catalog.len();
        let h = self.config.horizon;

        let factor_reused = self
            .cache
            .as_ref()
            .is_some_and(|c| c.markets == n && c.horizon == h && c.covariance == *covariance);
        if factor_reused {
            // Fast path: P and A unchanged — rebuild q only.
            let q = build_linear_cost(catalog, forecast, prev_allocation, &self.config)?;
            let cache = self.cache.as_mut().expect("cache checked above");
            cache.solver.update_linear_cost(&q)?;
        } else {
            let problem = PortfolioProblem::build(
                catalog,
                forecast,
                covariance,
                prev_allocation,
                &self.config,
            )?;
            // The portfolio QP is block-tridiagonal in the horizon (risk
            // and constraints are per-period; churn couples neighbours), so
            // a multi-period instance factors blockwise in O(H·N³). Fall
            // back to the dense path if the structure check ever fails.
            let solver = if problem.horizon >= 2 {
                AdmmSolver::with_block_structure(
                    problem.qp.clone(),
                    self.settings.clone(),
                    problem.markets,
                )
                .or_else(|_| AdmmSolver::new(problem.qp.clone(), self.settings.clone()))?
            } else {
                AdmmSolver::new(problem.qp.clone(), self.settings.clone())?
            };
            self.cache = Some(SolverCache {
                solver,
                covariance: covariance.clone(),
                markets: n,
                horizon: h,
            });
        }

        let solver = &mut self.cache.as_mut().expect("cache populated above").solver;
        let nv = solver.num_vars();
        let mc = solver.num_constraints();
        let warm = if self.warm_start_enabled {
            self.warm
                .as_ref()
                .filter(|(x, y)| x.len() == nv && y.len() == mc)
        } else {
            None
        };
        let warm_started = warm.is_some();
        let sol = match warm {
            Some((x, y)) => solver.solve_from(x, y),
            None => solver.solve(),
        };
        if self.warm_start_enabled {
            self.warm = Some((sol.x.clone(), sol.y.clone()));
        }
        Ok(PortfolioDecision {
            plan: unpack_plan(&sol.x, n, h),
            objective: sol.objective,
            iterations: sol.iterations,
            solved: sol.status == QpStatus::Solved,
            solve_secs: started.elapsed().as_secs_f64(),
            warm_started,
            factor_reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_market::Catalog;

    fn identity_cov(n: usize) -> Matrix {
        Matrix::identity(n).scaled(1e-4)
    }

    fn flat_forecast(prices: &[f64], h: usize) -> ForecastBundle {
        let fails = vec![0.04; prices.len()];
        ForecastBundle::flat(1000.0, prices, &fails, h)
    }

    #[test]
    fn covers_demand_and_prefers_cheap_market() {
        let catalog = Catalog::fig5_three_markets();
        // Per-request costs: m0 = 2/1920 ≈ 0.00104 (cheapest),
        // m1 = 1/320 ≈ 0.0031, m2 = 1.2/320 = 0.00375.
        let forecast = flat_forecast(&[2.0, 1.0, 1.2], 4);
        let mut opt = MpoOptimizer::new(SpotWebConfig::default());
        let d = opt
            .optimize(&catalog, &forecast, &identity_cov(3), &[0.0; 3])
            .unwrap();
        assert!(d.solved);
        let total = d.first_total();
        assert!(
            (0.99..=1.61).contains(&total),
            "total allocation {total} outside [A_min, A_max]"
        );
        // The cheapest per-request market takes the largest share.
        let a = d.first();
        assert!(a[0] > a[1] && a[0] > a[2], "allocation {a:?}");
    }

    #[test]
    fn risk_aversion_diversifies() {
        let catalog = Catalog::fig5_three_markets();
        let forecast = flat_forecast(&[2.0, 1.0, 1.2], 1);
        // Strongly correlated markets → high α should spread allocation.
        let mut cov = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                cov[(i, j)] = if i == j { 0.02 } else { 0.015 };
            }
        }
        // Market 0 extra risky on its own.
        cov[(0, 0)] = 0.08;

        let herfindahl = |a: &[f64]| -> f64 {
            let s: f64 = a.iter().sum();
            a.iter().map(|v| (v / s) * (v / s)).sum()
        };

        let mut low = MpoOptimizer::new(SpotWebConfig {
            alpha: 0.0,
            horizon: 1,
            churn_gamma: 0.0,
            ..SpotWebConfig::default()
        });
        let mut high = MpoOptimizer::new(SpotWebConfig {
            alpha: 200.0,
            horizon: 1,
            churn_gamma: 0.0,
            ..SpotWebConfig::default()
        });
        let d_low = low.optimize(&catalog, &forecast, &cov, &[0.0; 3]).unwrap();
        let d_high = high.optimize(&catalog, &forecast, &cov, &[0.0; 3]).unwrap();
        assert!(
            herfindahl(d_high.first()) < herfindahl(d_low.first()),
            "high α must diversify: low {:?} high {:?}",
            d_low.first(),
            d_high.first()
        );
    }

    #[test]
    fn per_market_cap_enforced() {
        let catalog = Catalog::fig5_three_markets();
        let forecast = flat_forecast(&[2.0, 1.0, 1.2], 2);
        let mut opt = MpoOptimizer::new(SpotWebConfig {
            a_max_per_market: 0.5,
            horizon: 2,
            ..SpotWebConfig::default()
        });
        let d = opt
            .optimize(&catalog, &forecast, &identity_cov(3), &[0.0; 3])
            .unwrap();
        for tau in 0..2 {
            for &a in &d.plan[tau] {
                assert!(a <= 0.5 + 1e-3, "cap violated: {a}");
            }
        }
    }

    #[test]
    fn future_price_knowledge_shifts_allocation() {
        // Market 1 is cheapest now but becomes expensive next interval;
        // market 2 is the opposite. With churn cost, MPO should already
        // lean toward market 2 versus what a myopic (H=1) run does.
        let catalog = Catalog::fig5_three_markets();
        let fails = vec![0.04; 3];
        // Per-request: m0 = 9/1920 ≈ 4.7e-3 (always expensive),
        // m1 = 0.7/320 ≈ 2.2e-3 now but 3.5/320 ≈ 10.9e-3 later,
        // m2 = 1.1/320 ≈ 3.4e-3 throughout.
        let myopic_forecast = ForecastBundle::flat(1000.0, &[9.0, 0.7, 1.1], &fails, 1);
        let mpo_forecast = ForecastBundle {
            workload: vec![1000.0; 4],
            prices: vec![
                vec![9.0, 0.7, 1.1],
                vec![9.0, 3.5, 1.1],
                vec![9.0, 3.5, 1.1],
                vec![9.0, 3.5, 1.1],
            ],
            failures: vec![fails.clone(); 4],
        };
        let cfg = SpotWebConfig {
            churn_gamma: 0.3,
            ..SpotWebConfig::default()
        };
        let mut myopic = MpoOptimizer::new(cfg.with_horizon(1));
        let mut mpo = MpoOptimizer::new(cfg.clone());
        let dm = myopic
            .optimize(&catalog, &myopic_forecast, &identity_cov(3), &[0.0; 3])
            .unwrap();
        let dp = mpo
            .optimize(&catalog, &mpo_forecast, &identity_cov(3), &[0.0; 3])
            .unwrap();
        let share2 = |a: &[f64]| a[2] / a.iter().sum::<f64>();
        assert!(
            share2(dp.first()) > share2(dm.first()),
            "MPO {:?} should favor the future-cheap market vs myopic {:?}",
            dp.first(),
            dm.first()
        );
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let catalog = Catalog::ec2_subset(18);
        let prices: Vec<f64> = catalog
            .markets()
            .iter()
            .map(|m| m.instance.on_demand_price * 0.3)
            .collect();
        let fails = vec![0.05; 18];
        let forecast = ForecastBundle::flat(5000.0, &prices, &fails, 4);
        let mut opt = MpoOptimizer::new(SpotWebConfig::default());
        let cov = identity_cov(18);
        let d1 = opt.optimize(&catalog, &forecast, &cov, &[0.0; 18]).unwrap();
        // Slightly perturbed prices next interval.
        let prices2: Vec<f64> = prices.iter().map(|p| p * 1.02).collect();
        let forecast2 = ForecastBundle::flat(5100.0, &prices2, &fails, 4);
        let d2 = opt
            .optimize(&catalog, &forecast2, &cov, d1.first())
            .unwrap();
        assert!(d2.solved);
        assert!(
            d2.iterations <= d1.iterations,
            "warm {} vs cold {}",
            d2.iterations,
            d1.iterations
        );
    }

    #[test]
    fn factor_cache_hits_when_covariance_unchanged() {
        let catalog = Catalog::fig5_three_markets();
        let cov = identity_cov(3);
        let mut opt = MpoOptimizer::new(SpotWebConfig::default());
        let d1 = opt
            .optimize(
                &catalog,
                &flat_forecast(&[2.0, 1.0, 1.2], 4),
                &cov,
                &[0.0; 3],
            )
            .unwrap();
        assert!(!d1.factor_reused && !d1.warm_started, "first solve is cold");
        let d2 = opt
            .optimize(
                &catalog,
                &flat_forecast(&[2.1, 0.9, 1.3], 4),
                &cov,
                d1.first(),
            )
            .unwrap();
        assert!(d2.factor_reused, "same covariance must reuse the factor");
        assert!(d2.warm_started);
        assert!(d2.solved);
        // A changed covariance forces a rebuild.
        let d3 = opt
            .optimize(
                &catalog,
                &flat_forecast(&[2.1, 0.9, 1.3], 4),
                &identity_cov(3).scaled(2.0),
                d2.first(),
            )
            .unwrap();
        assert!(!d3.factor_reused);
    }

    #[test]
    fn factor_cache_matches_full_rebuild() {
        // The fast path must land on the same allocation (within
        // solver tolerance) as a from-scratch rebuild.
        let catalog = Catalog::fig5_three_markets();
        let cov = identity_cov(3);
        let f1 = flat_forecast(&[2.0, 1.0, 1.2], 4);
        let f2 = flat_forecast(&[2.0, 1.4, 0.9], 4);

        let mut cached = MpoOptimizer::new(SpotWebConfig::default());
        cached.optimize(&catalog, &f1, &cov, &[0.0; 3]).unwrap();
        cached.set_warm_start(false); // isolate the factor reuse
        let fast = cached.optimize(&catalog, &f2, &cov, &[0.0; 3]).unwrap();
        assert!(fast.factor_reused && !fast.warm_started);

        let mut fresh = MpoOptimizer::new(SpotWebConfig::default());
        let full = fresh.optimize(&catalog, &f2, &cov, &[0.0; 3]).unwrap();
        assert!(!full.factor_reused);

        for (a, b) in fast.first().iter().zip(full.first()) {
            assert!((a - b).abs() < 1e-4, "fast {a} vs rebuild {b}");
        }
        assert!((fast.objective - full.objective).abs() < 1e-5 * (1.0 + full.objective.abs()));
    }

    #[test]
    fn disabling_warm_start_forces_cold_solves() {
        let catalog = Catalog::fig5_three_markets();
        let cov = identity_cov(3);
        let mut opt = MpoOptimizer::new(SpotWebConfig::default());
        opt.set_warm_start(false);
        let f = flat_forecast(&[2.0, 1.0, 1.2], 4);
        let d1 = opt.optimize(&catalog, &f, &cov, &[0.0; 3]).unwrap();
        let d2 = opt.optimize(&catalog, &f, &cov, d1.first()).unwrap();
        assert!(!d1.warm_started && !d2.warm_started);
    }

    #[test]
    fn reports_solve_time() {
        let catalog = Catalog::fig5_three_markets();
        let forecast = flat_forecast(&[2.0, 1.0, 1.2], 4);
        let mut opt = MpoOptimizer::new(SpotWebConfig::default());
        let d = opt
            .optimize(&catalog, &forecast, &identity_cov(3), &[0.0; 3])
            .unwrap();
        assert!(d.solve_secs > 0.0 && d.solve_secs < 10.0);
    }
}
