//! Single-period portfolio optimization — the ExoSphere baseline.
//!
//! ExoSphere (Sharma et al., SIGMETRICS'17) chooses a portfolio by
//! Markowitz-style single-period optimization over *current* prices and
//! failure statistics (§3.1, §4.1 "Single Point Portfolio
//! Optimization"). We express it as the `H = 1`, zero-churn special
//! case of the same QP, fed flat (reactive) forecasts — exactly how the
//! paper runs "ExoSphere in a loop" for Fig. 6(b).

use spotweb_linalg::Matrix;
use spotweb_market::Catalog;
use spotweb_solver::Settings;

use crate::config::SpotWebConfig;
use crate::forecast::ForecastBundle;
use crate::mpo::{MpoOptimizer, PortfolioDecision};
use crate::Result;

/// A single-period optimizer with the ExoSphere objective.
#[derive(Debug, Clone)]
pub struct SpoOptimizer {
    inner: MpoOptimizer,
}

impl SpoOptimizer {
    /// Build from a SpotWeb config: the horizon is forced to 1 and the
    /// churn term (a multi-period concept) is dropped.
    pub fn new(config: SpotWebConfig) -> Self {
        let spo_config = SpotWebConfig {
            horizon: 1,
            churn_gamma: 0.0,
            ..config
        };
        SpoOptimizer {
            inner: MpoOptimizer::new(spo_config),
        }
    }

    /// Override solver settings.
    pub fn with_settings(config: SpotWebConfig, settings: Settings) -> Self {
        let spo_config = SpotWebConfig {
            horizon: 1,
            churn_gamma: 0.0,
            ..config
        };
        SpoOptimizer {
            inner: MpoOptimizer::with_settings(spo_config, settings),
        }
    }

    /// Optimize for the next interval from *current* observations only.
    pub fn optimize(
        &mut self,
        catalog: &Catalog,
        workload: f64,
        prices: &[f64],
        failures: &[f64],
        covariance: &Matrix,
    ) -> Result<PortfolioDecision> {
        let forecast = ForecastBundle::flat(workload, prices, failures, 1);
        // SPO carries no memory of the previous allocation (no churn
        // term), so prev is irrelevant; pass zeros.
        let zeros = vec![0.0; catalog.len()];
        self.inner.optimize(catalog, &forecast, covariance, &zeros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_market::Catalog;

    #[test]
    fn spo_equals_mpo_with_h1() {
        let catalog = Catalog::fig5_three_markets();
        let prices = [2.0, 1.0, 1.2];
        let failures = [0.04; 3];
        let cov = Matrix::identity(3).scaled(1e-4);

        let mut spo = SpoOptimizer::new(SpotWebConfig::default());
        let d_spo = spo
            .optimize(&catalog, 1000.0, &prices, &failures, &cov)
            .unwrap();

        let mut mpo = MpoOptimizer::new(SpotWebConfig {
            horizon: 1,
            churn_gamma: 0.0,
            ..SpotWebConfig::default()
        });
        let f = ForecastBundle::flat(1000.0, &prices, &failures, 1);
        let d_mpo = mpo.optimize(&catalog, &f, &cov, &[0.0; 3]).unwrap();

        for (a, b) in d_spo.first().iter().zip(d_mpo.first()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spo_is_myopic_to_future_prices() {
        // SPO fed only the current (cheap) price of market 1 allocates
        // to it even if it is about to become expensive — the behavior
        // Fig. 6(b) exploits.
        let catalog = Catalog::fig5_three_markets();
        let cov = Matrix::identity(3).scaled(1e-4);
        let mut spo = SpoOptimizer::new(SpotWebConfig::default());
        let d = spo
            .optimize(&catalog, 1000.0, &[6.5, 0.4, 1.1], &[0.04; 3], &cov)
            .unwrap();
        let a = d.first();
        assert!(
            a[1] > a[0] && a[1] > a[2],
            "myopically picks market 1: {a:?}"
        );
    }

    #[test]
    fn covers_demand() {
        let catalog = Catalog::ec2_subset(9);
        let prices: Vec<f64> = catalog
            .markets()
            .iter()
            .map(|m| m.instance.on_demand_price * 0.3)
            .collect();
        let failures = vec![0.05; 9];
        let cov = Matrix::identity(9).scaled(1e-4);
        let mut spo = SpoOptimizer::new(SpotWebConfig::default());
        let d = spo
            .optimize(&catalog, 2000.0, &prices, &failures, &cov)
            .unwrap();
        assert!(d.solved);
        assert!(d.first_total() >= 0.99);
    }
}
