//! Property tests on the optimizer layer: feasibility and safety of
//! portfolio decisions across randomized market conditions.

use proptest::prelude::*;
use spotweb_core::{
    to_server_counts, total_capacity_rps, ForecastBundle, MpoOptimizer, SpotWebConfig,
};
use spotweb_linalg::Matrix;
use spotweb_market::Catalog;

fn catalog() -> Catalog {
    Catalog::ec2_subset(6)
}

prop_compose! {
    /// Random market conditions: prices 10–100% of on-demand, failure
    /// probabilities up to 0.2, workload 1k–50k req/s.
    fn conditions()(
        discounts in prop::collection::vec(0.1f64..1.0, 6),
        failures in prop::collection::vec(0.0f64..0.2, 6),
        lambda in 1_000.0f64..50_000.0,
    ) -> (Vec<f64>, Vec<f64>, f64) {
        let cat = catalog();
        let prices: Vec<f64> = cat
            .markets()
            .iter()
            .zip(&discounts)
            .map(|(m, d)| m.instance.on_demand_price * d)
            .collect();
        (prices, failures, lambda)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer always returns a feasible allocation: non-negative,
    /// within the per-market cap, total within [A_min, A_max].
    #[test]
    fn decisions_always_feasible((prices, failures, lambda) in conditions()) {
        let cat = catalog();
        let config = SpotWebConfig::default();
        let forecast = ForecastBundle::flat(lambda, &prices, &failures, config.horizon);
        let cov = Matrix::identity(6).scaled(0.5);
        let mut opt = MpoOptimizer::new(config.clone());
        let d = opt.optimize(&cat, &forecast, &cov, &[0.0; 6]).unwrap();
        for tau in 0..config.horizon {
            let total: f64 = d.plan[tau].iter().sum();
            prop_assert!(total >= config.a_min - 1e-2, "total {total} below A_min");
            prop_assert!(total <= config.a_max_total + 1e-2, "total {total} above A_max");
            for &a in &d.plan[tau] {
                prop_assert!(a >= -1e-9);
                prop_assert!(a <= config.a_max_per_market + 1e-2);
            }
        }
    }

    /// Integer conversion never under-provisions the allocated share.
    #[test]
    fn server_counts_cover_allocation(
        (prices, failures, lambda) in conditions(),
    ) {
        let cat = catalog();
        let config = SpotWebConfig::default();
        let forecast = ForecastBundle::flat(lambda, &prices, &failures, config.horizon);
        let cov = Matrix::identity(6).scaled(0.5);
        let mut opt = MpoOptimizer::new(config.clone());
        let d = opt.optimize(&cat, &forecast, &cov, &[0.0; 6]).unwrap();
        let counts = to_server_counts(&cat, d.first(), lambda, config.min_allocation);
        // Dropping sub-threshold slivers loses at most markets·min_allocation.
        let kept_share: f64 = d
            .first()
            .iter()
            .filter(|a| **a >= config.min_allocation)
            .sum();
        let capacity = total_capacity_rps(&cat, &counts);
        prop_assert!(
            capacity >= kept_share * lambda - 1e-6,
            "capacity {capacity} below kept share {kept_share} × λ {lambda}"
        );
    }

    /// More risk aversion never increases portfolio concentration.
    #[test]
    fn alpha_monotone_in_concentration((prices, failures, lambda) in conditions()) {
        let cat = catalog();
        let forecast = ForecastBundle::flat(lambda, &prices, &failures, 1);
        // Correlated risk: family-structured covariance.
        let mut cov = Matrix::identity(6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    cov[(i, j)] = 0.4;
                }
            }
        }
        let hhi = |alpha: f64| -> f64 {
            let mut opt = MpoOptimizer::new(SpotWebConfig {
                alpha,
                horizon: 1,
                churn_gamma: 0.0,
                ..SpotWebConfig::default()
            });
            let d = opt.optimize(&cat, &forecast, &cov, &[0.0; 6]).unwrap();
            spotweb_core::risk::herfindahl(d.first())
        };
        let low = hhi(0.0);
        let high = hhi(50.0);
        prop_assert!(high <= low + 0.05, "α=50 HHI {high} vs α=0 HHI {low}");
    }

    /// Warm-started receding-horizon runs stay solved across steps.
    #[test]
    fn receding_horizon_stays_solved(
        (prices, failures, lambda) in conditions(),
        drift in 0.9f64..1.1,
    ) {
        let cat = catalog();
        let config = SpotWebConfig::default();
        let cov = Matrix::identity(6).scaled(0.5);
        let mut opt = MpoOptimizer::new(config.clone());
        let mut prev = vec![0.0; 6];
        let mut prices = prices;
        for _ in 0..4 {
            let forecast = ForecastBundle::flat(lambda, &prices, &failures, config.horizon);
            let d = opt.optimize(&cat, &forecast, &cov, &prev).unwrap();
            prop_assert!(d.solved, "receding-horizon step failed to converge");
            prev = d.first().to_vec();
            for p in prices.iter_mut() {
                *p *= drift;
            }
        }
    }
}
