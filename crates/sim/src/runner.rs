//! Full-stack runner: provisioning policy + market dynamics + load
//! balancer + request-level simulation, wired together the way the
//! paper's Fig. 2 architecture runs in production.
//!
//! Per decision interval the runner:
//! 1. advances the market (prices, failure probabilities),
//! 2. asks the policy for the next fleet (server counts per market),
//! 3. reconciles the cluster — boots new servers (startup + cache
//!    warm-up), gracefully decommissions surplus ones,
//! 4. programs the balancer's WRR weights from the portfolio,
//! 5. samples revocations; victims get a warning, then die,
//! 6. generates Poisson request traffic at the trace's rate and runs
//!    it through the balancer into per-server service queues,
//! 7. accounts cost (per-second billing at current prices) and
//!    latency/drop metrics.
//!
//! The interval length is configurable; request-level simulation is
//! O(requests), and the request loop is built so the per-request
//! constant stays small enough for day- and week-scale runs at paper
//! rates (§5's 20 krps Wikipedia trace) — see DESIGN.md's "Hot-path
//! architecture". Three things keep the per-arrival cost down, all
//! byte-identical to the straightforward structure they replaced:
//!
//! * **Control-event batching** — pending deaths, flaps, and restores
//!   fire lazily at arrival times, so the loop computes the earliest
//!   pending control timepoint once and runs arrivals up to it in a
//!   tight loop touching only the balancer, the service queues, and
//!   the completion calendar. Control scans, `LoadBalancer::tick`,
//!   and the full invariant sweep run at control timepoints and
//!   interval boundaries (every balancer read the tight loop performs
//!   is time-lazy, so deferring `tick` is unobservable).
//! * **Allocation-free queues** — [`ServiceModel`] runs on a fixed
//!   slot array, and the global completion queue is a
//!   [`crate::calendar::CalendarQueue`] (O(1) push/pop in the old
//!   heap's exact total order).
//! * **Interned counters** — per-request counters use
//!   [`CounterHandle`]s resolved once per run instead of string-keyed
//!   registry lookups per event.
//!
//! Arrivals are drawn from the counter-based, draw-order-free
//! [`crate::rng`] generator, keyed per decision interval — which is
//! what lets [`RunnerConfig::shards`] split one run's arrival
//! generation and metrics fold across cores with byte-identical
//! output at any shard count (see [`crate::shard`] for the pipeline
//! and the invariance argument).

use spotweb_lb::{BackendState, LoadBalancer, LoadBalancerConfig, MonitorWindow, RouteOutcome};
use spotweb_market::billing::{BillingLedger, BillingModel, CostMeter};
use spotweb_market::CloudSim;
use spotweb_telemetry::{names, prof, CounterHandle, TelemetrySink, TraceEvent};
use spotweb_workload::Trace;

use crate::calendar::CalendarQueue;
use crate::faults::{FaultKind, FaultPlan, InvariantChecker};
use crate::metrics::LatencyRecorder;
use crate::service::ServiceModel;
use crate::shard::{
    ArrivalPipeline, ArrivalSupply, DeferredObs, DirectObs, FoldWorker, InlineArrivals, ObsSink,
    PipelineArrivals, WindowArrivals, WindowSpec,
};

/// Abstraction over `spotweb-core`'s policies so this crate does not
/// depend on the optimizer: given current observations, return the
/// desired number of servers per market.
pub trait FleetPolicy {
    /// Decide the fleet for the coming interval.
    fn decide_fleet(
        &mut self,
        interval: usize,
        observed_rps: f64,
        prices: &[f64],
        failure_probs: &[f64],
        failure_history: &[Vec<f64>],
    ) -> Vec<u32>;
}

/// Configuration for a full-stack run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Decision-interval length in seconds (default 600 s; the paper
    /// runs hourly, shortened here because the runner simulates every
    /// request).
    pub interval_secs: f64,
    /// Number of decision intervals to run.
    pub intervals: usize,
    /// Server startup time (s).
    pub startup_secs: f64,
    /// Cache warm-up window (s).
    pub warmup_secs: f64,
    /// Base request service time (s).
    pub service_secs: f64,
    /// Load-balancer configuration.
    pub lb: LoadBalancerConfig,
    /// Distinct user sessions.
    pub sessions: u64,
    /// Provider-imposed maximum instance lifetime (e.g. Google Cloud
    /// terminates preemptible VMs after 24 h). When set, the runner
    /// *proactively relinquishes* servers approaching the cap — a
    /// graceful drain plus replacement, instead of eating the
    /// provider's hard kill (§7 of the paper).
    pub max_lifetime_secs: Option<f64>,
    /// RNG seed (arrivals and revocation sampling share sub-streams).
    pub seed: u64,
    /// Shard count for the run's arrival generation and metrics fold.
    /// `1` (the default) runs fully inline on the calling thread with
    /// lazy arrival generation (no batches materialize — required for
    /// day-scale memory). `K > 1` pre-generates per-interval arrival
    /// batches on `min(K, nproc)` workers and folds latency metrics on
    /// a dedicated thread; the report is byte-identical at any value
    /// (see [`crate::shard`]).
    pub shards: usize,
    /// Optional fault plan (chaos testing). Compiled deterministically
    /// from `seed` at run start. Interval-scoped faults — price
    /// shocks, correlated revocations, startup/warmup stalls — apply
    /// at the start of the interval containing their firing time (the
    /// market itself only evolves per interval); backend flaps fire at
    /// their exact times inside the request loop. `BackendFlap::target`
    /// is interpreted as a *market* index here: the first alive server
    /// of that market flaps.
    pub faults: Option<FaultPlan>,
    /// Telemetry sink. Disabled by default (every hook is a single
    /// branch); when enabled the runner threads the same sink through
    /// the balancer and the market so the whole stack writes one
    /// trace: per-interval spans and summaries, fault injections,
    /// replacement provisioning, drain/death/restore events, and
    /// request latency/drop metrics.
    pub telemetry: TelemetrySink,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            interval_secs: 600.0,
            intervals: 24,
            startup_secs: 55.0,
            warmup_secs: 60.0,
            service_secs: 0.12,
            lb: LoadBalancerConfig::default(),
            sessions: 2000,
            max_lifetime_secs: None,
            seed: 42,
            shards: 1,
            faults: None,
            telemetry: TelemetrySink::disabled(),
        }
    }
}

/// Result of a full-stack run.
#[derive(Debug, Clone)]
pub struct RunnerReport {
    /// Requests served.
    pub served: usize,
    /// Requests dropped.
    pub dropped: u64,
    /// Overall drop fraction.
    pub drop_fraction: f64,
    /// Overall p50 / p90 / p99 latency (s).
    pub p50: f64,
    /// 90th percentile latency (s).
    pub p90: f64,
    /// 99th percentile latency (s).
    pub p99: f64,
    /// Total provisioning spend ($, per-second billing).
    pub cost: f64,
    /// Revocation warnings delivered.
    pub revocations: u32,
    /// Sessions migrated by the balancer.
    pub migrated_sessions: u64,
    /// Servers proactively relinquished at the provider lifetime cap.
    pub lifetime_relinquishments: u32,
    /// Fleet size per interval (total servers).
    pub fleet_sizes: Vec<u32>,
    /// Per-interval latency/drop stats.
    pub buckets: Vec<crate::metrics::BucketStats>,
    /// Compiled faults that fired (0 without a plan).
    pub faults_fired: usize,
    /// Invariant violations the checker observed (empty on a healthy
    /// run; see [`InvariantChecker`]).
    pub invariant_violations: Vec<String>,
}

/// Run `policy` against `cloud` dynamics and `trace` arrivals.
///
/// `trace.rate_at` is sampled at interval boundaries; the Poisson
/// arrival rate is held constant within an interval.
pub fn run_full_stack(
    policy: &mut dyn FleetPolicy,
    cloud: &mut CloudSim,
    trace: &Trace,
    config: &RunnerConfig,
) -> RunnerReport {
    run_full_stack_observed(policy, cloud, trace, config, &mut |_, _| {})
}

/// [`run_full_stack`] with a per-interval observation hook.
///
/// `on_interval(interval, cumulative_arrivals)` is called once at the
/// end of every decision interval with the total arrivals (routed +
/// dropped) seen so far. The hook exists for *host-side* observers —
/// e.g. the bench harness timing wall-clock per simulated hour — and
/// must not feed anything back into the run; the runner's behaviour is
/// identical for any hook.
pub fn run_full_stack_observed(
    policy: &mut dyn FleetPolicy,
    cloud: &mut CloudSim,
    trace: &Trace,
    config: &RunnerConfig,
    on_interval: &mut dyn FnMut(usize, u64),
) -> RunnerReport {
    // Wall-clock profiling span for the whole run (inert unless a
    // prof session is active; distinct from the sim-clock trace spans
    // emitted through `sink` below).
    prof::scope!(names::SPAN_RUNNER_RUN);
    let horizon = config.interval_secs * config.intervals as f64;
    let recorder = LatencyRecorder::new(config.interval_secs, horizon);
    let latency_hist = config
        .telemetry
        .histogram_handle(names::REQUEST_LATENCY_SECONDS);
    if config.shards <= 1 {
        // Inline mode: arrivals generate lazily on this thread (no
        // batch ever materializes — day-scale windows are tens of
        // millions of arrivals) and metrics apply immediately.
        let supply = InlineArrivals {
            seed: config.seed,
            sessions: config.sessions,
        };
        let obs = DirectObs::new(recorder, latency_hist);
        run_loop(policy, cloud, trace, config, on_interval, supply, obs)
    } else {
        // Sharded mode: per-interval window specs are fixed up front
        // (the same boundary rate samples the inline path takes), gen
        // workers pre-compute arrival batches, and the fold thread
        // applies metrics in window order.
        let specs: Vec<WindowSpec> = (0..config.intervals)
            .map(|i| {
                let t0 = i as f64 * config.interval_secs;
                WindowSpec {
                    t0,
                    t_end: t0 + config.interval_secs,
                    rate: trace.rate_at(t0).max(1e-6),
                }
            })
            .collect();
        let pipeline = ArrivalPipeline::spawn(config.seed, config.sessions, specs, config.shards);
        let supply = PipelineArrivals::new(pipeline);
        let obs = DeferredObs::new(FoldWorker::spawn(recorder, latency_hist));
        run_loop(policy, cloud, trace, config, on_interval, supply, obs)
    }
}

/// The control loop, generic over the arrival supply and the metrics
/// sink. The two instantiations — inline/direct at `shards = 1`,
/// pipeline/deferred at `shards > 1` — execute the same counter-RNG
/// draws, the same routing sequence, and the same metrics fold order,
/// so their reports are byte-identical by construction.
fn run_loop<S: ArrivalSupply, O: ObsSink>(
    policy: &mut dyn FleetPolicy,
    cloud: &mut CloudSim,
    trace: &Trace,
    config: &RunnerConfig,
    on_interval: &mut dyn FnMut(usize, u64),
    mut arrivals: S,
    mut obs: O,
) -> RunnerReport {
    let n_markets = cloud.catalog().len();
    let sink = config.telemetry.clone();
    let mut lb = LoadBalancer::new(config.lb.clone());
    lb.set_telemetry(sink.clone());
    cloud.set_telemetry(sink.clone());
    let mut services: Vec<ServiceModel> = Vec::new();
    // Latest death ever per backend (never cleared; classifies
    // in-flight work that spans a death even across a restore).
    let mut last_death: Vec<Option<f64>> = Vec::new();
    // Backends per market currently alive (ids into lb).
    let mut alive: Vec<Vec<usize>> = vec![Vec::new(); n_markets];
    let horizon = config.interval_secs * config.intervals as f64;
    // Chaos: the plan compiles once, up front, from the run seed.
    let timeline = config
        .faults
        .as_ref()
        .map(|p| p.compile(config.seed, horizon))
        .unwrap_or_default();
    let mut fault_cursor = 0usize;
    let mut faults_fired = 0usize;
    let mut extra_startup = 0.0f64;
    let mut extra_warmup = 0.0f64;
    // In-flight flaps: (fire_time, market, down_secs) and scheduled
    // recoveries (restore_time, backend, market).
    let mut pending_flaps: Vec<(f64, usize, f64)> = Vec::new();
    let mut pending_restores: Vec<(f64, usize, usize)> = Vec::new();
    let mut checker = InvariantChecker::new();
    let mut meter = CostMeter::new(n_markets, BillingModel::PerSecond);
    // Event-driven cost accounting: backends enter the ledger when
    // bought, move to its died list when their death *fires*, and each
    // interval settles in O(live + died this interval) — same charge
    // sequence as the old all-backends scan (see `BillingLedger`).
    let mut billing = BillingLedger::new();
    let mut revocations = 0u32;
    let mut relinquished = 0u32;
    // Birth time per backend, for the provider lifetime cap.
    let mut born_at: Vec<f64> = Vec::new();
    let mut fleet_sizes = Vec::with_capacity(config.intervals);
    // Deferred deaths: (deadline, backend).
    let mut pending_deaths: Vec<(f64, usize)> = Vec::new();
    // (completion_time, backend, arrival_time) in a bucketed calendar
    // queue popping in the exact min-heap order the runner always used
    // — persists across intervals so work spanning a boundary resolves.
    // Bucket width: half a base service time, comfortably under the
    // queue's no-late-insert bound (every completion is scheduled at
    // least one service time ahead of the clock).
    let mut completions = CalendarQueue::new(config.service_secs * 0.5);
    // Interned per-request counters: resolved once here, O(1) in the
    // hot loop (see spotweb_telemetry::CounterHandle).
    let served_counter = sink.counter_handle(names::REQUESTS_SERVED_TOTAL);
    let killed_counter = sink.counter_handle(names::REQUESTS_KILLED_IN_FLIGHT_TOTAL);
    // Application-level monitoring (§5.2): the policy sees the arrival
    // rate the balancer *measured*, not the generator's ground truth.
    let mut monitor = MonitorWindow::new(config.interval_secs);
    #[allow(clippy::too_many_arguments)]
    fn drain_completions<O: ObsSink>(
        upto: f64,
        completions: &mut CalendarQueue,
        lb: &mut LoadBalancer,
        last_death: &[Option<f64>],
        obs: &mut O,
        monitor: &mut MonitorWindow,
        checker: &mut InvariantChecker,
        served_counter: &CounterHandle,
        killed_counter: &CounterHandle,
    ) {
        while let Some(done) = completions.peek_done() {
            if done > upto {
                break;
            }
            let (done, b, arrived) = completions.pop().expect("peeked entry");
            match last_death[b] {
                // The server died while this request was in flight (a
                // later restore does not save it).
                Some(d) if d < done && d >= arrived => {
                    obs.dropped(arrived);
                    monitor.record_dropped(arrived);
                    checker.on_dropped_in_flight();
                    killed_counter.inc();
                }
                _ => {
                    obs.served(arrived, done - arrived);
                    monitor.record_served(arrived, done - arrived);
                    lb.complete(b, None);
                    checker.on_served();
                    served_counter.inc();
                }
            }
        }
    }

    for interval in 0..config.intervals {
        let t0 = interval as f64 * config.interval_secs;
        let t_end = t0 + config.interval_secs;
        sink.set_clock(t0);
        let span = sink.span_start("interval");
        prof::scope!(names::SPAN_RUNNER_INTERVAL);
        // Interval-head control work — fault application, policy
        // decide (the mpo.solve span nests here), fleet reconcile,
        // revocation sampling — profiles as one control batch; the
        // guard is dropped just before the arrival loop starts.
        let prof_control = prof::ScopeGuard::enter(names::SPAN_RUNNER_CONTROL_BATCH);

        // Apply this interval's compiled faults. Price shocks land
        // before the market steps so the tick already quotes them;
        // forced revocations queue up for the revocation section below
        // (they need the reconciled fleet); flaps fire at their exact
        // times inside the request loop.
        let mut forced_revocations: Vec<(Vec<usize>, Option<f64>)> = Vec::new();
        while fault_cursor < timeline.len() && timeline[fault_cursor].at_secs < t_end {
            faults_fired += 1;
            // Price shocks trace themselves inside the market façade.
            if sink.is_enabled() {
                let (fault, detail) = match &timeline[fault_cursor].kind {
                    FaultKind::PriceShock { .. } => (None, String::new()),
                    FaultKind::CorrelatedRevocation {
                        markets,
                        warning_secs,
                    } => (
                        Some("correlated_revocation"),
                        match warning_secs {
                            Some(w) => format!("markets {markets:?} warning {w}s"),
                            None => format!("markets {markets:?} default warning"),
                        },
                    ),
                    FaultKind::StartupDelay { extra_secs } => {
                        (Some("startup_delay"), format!("+{extra_secs}s boot"))
                    }
                    FaultKind::WarmupStall { extra_secs } => {
                        (Some("warmup_stall"), format!("+{extra_secs}s warmup"))
                    }
                    FaultKind::BackendFlap { target, down_secs } => (
                        Some("backend_flap"),
                        format!("market {target} down {down_secs}s"),
                    ),
                };
                if let Some(fault) = fault {
                    sink.emit_at(
                        timeline[fault_cursor].at_secs.max(t0),
                        TraceEvent::FaultInjected {
                            fault: fault.to_string(),
                            detail,
                        },
                    );
                }
            }
            match &timeline[fault_cursor].kind {
                FaultKind::PriceShock {
                    market,
                    multiplier,
                    hold_intervals,
                } => {
                    cloud.inject_price_shock(*market, *multiplier, *hold_intervals);
                }
                FaultKind::CorrelatedRevocation {
                    markets,
                    warning_secs,
                } => {
                    forced_revocations.push((markets.clone(), *warning_secs));
                }
                FaultKind::StartupDelay { extra_secs } => {
                    extra_startup += extra_secs;
                }
                FaultKind::WarmupStall { extra_secs } => {
                    extra_warmup += extra_secs;
                }
                FaultKind::BackendFlap { target, down_secs } => {
                    pending_flaps.push((
                        timeline[fault_cursor].at_secs.max(t0),
                        *target,
                        *down_secs,
                    ));
                }
            }
            fault_cursor += 1;
        }

        let tick = cloud.step();
        // Interval 0 has no measurements yet; afterwards the policy is
        // fed the balancer-monitored rate.
        let observed_rps = if interval == 0 {
            trace.rate_at(t0)
        } else {
            // O(1) rolling rates — same float as the full snapshot's
            // `arrival_rate`, without sorting the window's latencies.
            monitor.rates(t0).arrival_rate
        };
        let desired = policy.decide_fleet(
            interval,
            observed_rps,
            &tick.prices,
            &tick.failure_probs,
            &cloud.history().failure_matrix(),
        );
        assert_eq!(desired.len(), n_markets, "policy fleet length");

        // Reconcile the cluster.
        for m in 0..n_markets {
            let have = alive[m].len() as u32;
            let want = desired[m];
            if want > have {
                for _ in 0..(want - have) {
                    let cap = cloud.catalog().market(m).capacity_rps();
                    let startup = config.startup_secs + extra_startup;
                    let warmup = config.warmup_secs + extra_warmup;
                    let id = if interval == 0 {
                        // Bootstrap instantly so the run starts serving.
                        lb.add_backend_up(m, cap)
                    } else {
                        lb.add_backend(m, cap, t0, startup, warmup)
                    };
                    let warm_until = if interval == 0 {
                        0.0
                    } else {
                        t0 + startup + warmup
                    };
                    services.push(ServiceModel::new(cap, config.service_secs, warm_until));
                    last_death.push(None);
                    born_at.push(t0);
                    billing.add(id, m);
                    alive[m].push(id);
                }
            } else if have > want {
                for _ in 0..(have - want) {
                    if let Some(id) = alive[m].pop() {
                        lb.decommission(id, t0);
                        // A decommissioned server keeps serving (as a
                        // drain-fallback) until any replacement capacity
                        // started this interval is warmed up — releasing
                        // it earlier would open a gap on market switches.
                        let linger = t0
                            + config.startup_secs
                            + config.warmup_secs
                            + 50.0 * config.service_secs;
                        pending_deaths.push((linger, id));
                    }
                }
            }
        }

        // Program WRR weights proportional to per-market capacity share.
        let cap_share: Vec<f64> = {
            let caps: Vec<f64> = (0..n_markets)
                .map(|m| alive[m].len() as f64 * cloud.catalog().market(m).capacity_rps())
                .collect();
            let total: f64 = caps.iter().sum();
            if total > 0.0 {
                caps.iter().map(|c| c / total).collect()
            } else {
                vec![0.0; n_markets]
            }
        };
        lb.update_portfolio_weights(&cap_share, t0);

        // Provider lifetime cap (§7): relinquish servers that would hit
        // the cap this interval, replacing them proactively so the
        // graceful drain overlaps the replacement's startup.
        if let Some(cap_secs) = config.max_lifetime_secs {
            for (m, alive_m) in alive.iter_mut().enumerate() {
                let mut idx = 0;
                while idx < alive_m.len() {
                    let id = alive_m[idx];
                    if t0 + config.interval_secs - born_at[id] >= cap_secs {
                        alive_m.remove(idx);
                        relinquished += 1;
                        lb.decommission(id, t0);
                        let linger = t0
                            + config.startup_secs
                            + config.warmup_secs
                            + 50.0 * config.service_secs;
                        pending_deaths.push((linger, id));
                        let cap_rps = cloud.catalog().market(m).capacity_rps();
                        let startup = config.startup_secs + extra_startup;
                        let warmup = config.warmup_secs + extra_warmup;
                        let new_id = lb.add_backend(m, cap_rps, t0, startup, warmup);
                        sink.emit_at(
                            t0,
                            TraceEvent::ReplacementStarted {
                                replaces: id,
                                backend: new_id,
                                market: m,
                                ready_at: t0 + startup + warmup,
                            },
                        );
                        services.push(ServiceModel::new(
                            cap_rps,
                            config.service_secs,
                            t0 + startup + warmup,
                        ));
                        last_death.push(None);
                        born_at.push(t0);
                        billing.add(new_id, m);
                        alive_m.push(new_id);
                    } else {
                        idx += 1;
                    }
                }
            }
        }

        // Sample revocations for this interval; victims drain then die.
        let fleet: Vec<u32> = alive.iter().map(|v| v.len() as u32).collect();
        fleet_sizes.push(fleet.iter().sum());
        let events = cloud.sample_revocations(&fleet);
        let warning = cloud.warning_secs();
        for e in &events {
            if alive[e.market].is_empty() {
                continue;
            }
            let pos = e.server_index % alive[e.market].len();
            let id = alive[e.market].remove(pos);
            revocations += 1;
            lb.revocation_warning(id, t0, warning);
            pending_deaths.push((t0 + warning, id));
            // Reactive reprovisioning (§4.4): request a same-capacity
            // replacement the moment the warning arrives, so it is
            // serving before (or shortly after) the victim dies.
            let cap = cloud.catalog().market(e.market).capacity_rps();
            let startup = config.startup_secs + extra_startup;
            let warmup = config.warmup_secs + extra_warmup;
            let new_id = lb.add_backend(e.market, cap, t0, startup, warmup);
            sink.emit_at(
                t0,
                TraceEvent::ReplacementStarted {
                    replaces: id,
                    backend: new_id,
                    market: e.market,
                    ready_at: t0 + startup + warmup,
                },
            );
            services.push(ServiceModel::new(
                cap,
                config.service_secs,
                t0 + startup + warmup,
            ));
            last_death.push(None);
            born_at.push(t0);
            billing.add(new_id, e.market);
            alive[e.market].push(new_id);
        }

        // Injected correlated revocations (chaos): every alive server
        // in the targeted markets gets a warning — optionally shorter
        // than the provider default — plus a reactive replacement, same
        // as a sampled revocation.
        for (markets, w_opt) in forced_revocations.drain(..) {
            let w = w_opt.unwrap_or(warning);
            for &m in &markets {
                for id in std::mem::take(&mut alive[m]) {
                    revocations += 1;
                    lb.revocation_warning(id, t0, w);
                    pending_deaths.push((t0 + w, id));
                    let cap = cloud.catalog().market(m).capacity_rps();
                    let startup = config.startup_secs + extra_startup;
                    let warmup = config.warmup_secs + extra_warmup;
                    let new_id = lb.add_backend(m, cap, t0, startup, warmup);
                    sink.emit_at(
                        t0,
                        TraceEvent::ReplacementStarted {
                            replaces: id,
                            backend: new_id,
                            market: m,
                            ready_at: t0 + startup + warmup,
                        },
                    );
                    services.push(ServiceModel::new(
                        cap,
                        config.service_secs,
                        t0 + startup + warmup,
                    ));
                    last_death.push(None);
                    born_at.push(t0);
                    billing.add(new_id, m);
                    alive[m].push(new_id);
                }
            }
        }

        // Request-level simulation of the interval. Completions are
        // real events so the balancer's in-flight counts (and with
        // them saturation detection, least-utilized fallback and
        // admission control) reflect genuine queue depth.
        //
        // Control events — deaths, flaps, restores — have always fired
        // lazily at arrival times, so instead of scanning the pending
        // lists per arrival the loop computes the earliest pending
        // control timepoint and runs arrivals up to it in a tight loop
        // that touches only the balancer, the service queues, and the
        // completion calendar. The control scans, `lb.tick`, and the
        // full invariant sweep run when an arrival crosses that
        // timepoint (every balancer read below is time-lazy, so the
        // deferred `tick` is unobservable — states promote on read).
        //
        // Arrivals follow the *true* trace rate (the generator is the
        // outside world; only the policy sees measurements); the rate
        // is constant within the interval, so it is sampled once. The
        // supply yields the interval's arrivals in time order — the
        // identical counter-RNG walk whether generated lazily here
        // (`shards = 1`) or pre-computed by the gen pool.
        drop(prof_control);
        let rate = trace.rate_at(t0).max(1e-6);
        let mut window = arrivals.window(interval, WindowSpec { t0, t_end, rate });
        let mut next_arrival = window.next();
        while next_arrival.is_some() {
            // Earliest pending control timepoint in this interval.
            let mut next_control = t_end;
            for &(deadline, _) in &pending_deaths {
                next_control = next_control.min(deadline);
            }
            for &(fire_time, _, _) in &pending_flaps {
                next_control = next_control.min(fire_time);
            }
            for &(restore_time, _, _) in &pending_restores {
                next_control = next_control.min(restore_time);
            }

            // The tight arrival run: no control is due before
            // `next_control`, so the per-arrival scans would all no-op.
            // One profiling span per batch (not per arrival): in-loop
            // completion drains are accounted to the batch, and the
            // per-request `lb.route` span nests inside it. The block
            // closes the span before the control-timepoint work below.
            {
                prof::scope!(names::SPAN_RUNNER_ARRIVAL_LOOP);
                while let Some((now, session)) = next_arrival {
                    if now >= next_control {
                        break;
                    }
                    drain_completions(
                        now,
                        &mut completions,
                        &mut lb,
                        &last_death,
                        &mut obs,
                        &mut monitor,
                        &mut checker,
                        &served_counter,
                        &killed_counter,
                    );
                    checker.on_arrival();
                    match lb.route(Some(session), now) {
                        RouteOutcome::Routed(b) => {
                            checker.on_route(&lb, b, now);
                            let done = services[b].admit(now);
                            completions.push(done, b, now);
                        }
                        RouteOutcome::Dropped => {
                            checker.on_dropped_at_admission();
                            obs.dropped(now);
                            monitor.record_dropped(now);
                        }
                    }
                    next_arrival = window.next();
                }
            }
            let Some((now, _)) = next_arrival else {
                break;
            };

            // Control timepoint crossed by the next arrival: fire
            // everything due, in the order the per-arrival scans
            // always used (deaths, then flaps, then restores).
            prof::scope!(names::SPAN_RUNNER_CONTROL_BATCH);
            pending_deaths.retain(|&(deadline, id)| {
                if deadline <= now {
                    lb.server_died(id, deadline);
                    services[id].kill(deadline);
                    last_death[id] = Some(deadline);
                    billing.mark_died(id, deadline);
                    // Permanent death: compact the corpse out of the
                    // balancer and free its service queues. Every
                    // arrival routed to `id` precedes the deadline (the
                    // arrival loop breaks at the control timepoint), so
                    // nothing live references the row; completions
                    // still in the calendar resolve through the
                    // retire-safe `lb.complete`.
                    prof::scope!(names::SPAN_RUNNER_COMPACT);
                    lb.retire(id);
                    services[id].release();
                    false
                } else {
                    true
                }
            });
            // Chaos flaps: the first alive server of the target market
            // crashes without warning, then restores after down_secs.
            pending_flaps.retain(|&(fire_time, market, down_secs)| {
                if fire_time <= now {
                    if market < n_markets && !alive[market].is_empty() {
                        let id = alive[market].remove(0);
                        lb.server_died(id, fire_time);
                        services[id].kill(fire_time);
                        last_death[id] = Some(fire_time);
                        // A flap is a temporary death: the backend is
                        // NOT retired (its restore is already
                        // scheduled), but billing stops at fire time
                        // unless the restore lands in the same interval.
                        billing.mark_died(id, fire_time);
                        pending_restores.push((fire_time + down_secs, id, market));
                    }
                    false
                } else {
                    true
                }
            });
            let mut restored: Vec<(f64, usize, usize)> = Vec::new();
            pending_restores.retain(|&(restore_time, id, market)| {
                if restore_time <= now {
                    restored.push((restore_time, id, market));
                    false
                } else {
                    true
                }
            });
            for (restore_time, id, market) in restored {
                let warmup = config.warmup_secs + extra_warmup;
                lb.restore_backend(id, restore_time, warmup);
                billing.restore(id, market);
                let cap = cloud.catalog().market(market).capacity_rps();
                services[id] = ServiceModel::new(cap, config.service_secs, restore_time + warmup);
                alive[market].push(id);
            }
            lb.tick(now);
            checker.check_tick(&lb, now);
        }
        lb.tick(t_end);
        checker.check_tick(&lb, t_end);
        // End-of-interval (and end-of-run) completion drains profile
        // as `runner.drain`; the guard closes before billing/rollup.
        let prof_drain = prof::ScopeGuard::enter(names::SPAN_RUNNER_DRAIN);
        drain_completions(
            t_end,
            &mut completions,
            &mut lb,
            &last_death,
            &mut obs,
            &mut monitor,
            &mut checker,
            &served_counter,
            &killed_counter,
        );
        // Whatever still runs past the interval end resolves at the top
        // of the next interval (or here if the run is over).
        if interval + 1 == config.intervals {
            drain_completions(
                f64::INFINITY,
                &mut completions,
                &mut lb,
                &last_death,
                &mut obs,
                &mut monitor,
                &mut checker,
                &served_counter,
                &killed_counter,
            );
        }
        drop(prof_drain);
        // Flush this window's buffered observations to the fold (a
        // no-op in inline mode).
        obs.end_window(interval);

        // Bill every backend that existed during any part of the
        // interval — including draining/decommissioned servers still
        // finishing work — at this tick's price (per-second model).
        // The ledger replays the old ascending-id scan's exact charge
        // sequence in O(live + died-this-interval).
        {
            prof::scope!(names::SPAN_RUNNER_BILLING);
            billing.settle(t0, config.interval_secs, &tick.prices, &mut meter);
        }

        // End-of-interval rollup: O(1) monitor rates, in place. The
        // eviction this performs at `t_end` is idempotent with the one
        // the next interval's policy read performs at the same
        // timepoint, so a telemetry-enabled run still replays the
        // exact same decisions as a disabled one. (The old full-window
        // clone + snapshot copied and sorted ~rate × window records
        // per interval — at day scale, 72 M — purely to shield the
        // next read; the span now measures the rollup itself, not
        // instrumentation overhead.)
        if sink.is_enabled() {
            prof::scope!(names::SPAN_RUNNER_ROLLUP);
            let rates = monitor.rates(t_end);
            let stats = obs.bucket_stats(interval);
            sink.gauge(names::FLEET_SIZE, fleet_sizes[interval] as f64);
            sink.emit_at(
                t_end,
                TraceEvent::IntervalSummary {
                    interval: interval as u64,
                    observed_rps,
                    fleet_size: fleet_sizes[interval],
                    arrival_rate: rates.arrival_rate,
                    throughput: rates.throughput,
                    drop_rate: rates.drop_rate,
                    p50_latency: stats.p50,
                    p99_latency: stats.p99,
                },
            );
        }
        sink.set_clock(t_end);
        sink.span_end(span, "interval");
        on_interval(interval, lb.stats().routed + lb.stats().dropped);
    }

    checker.check_drained();
    let recorder = obs.finish();
    let (served, dropped) = recorder.totals();
    RunnerReport {
        served,
        dropped,
        drop_fraction: recorder.drop_fraction(),
        p50: recorder.overall_percentile(50.0),
        p90: recorder.overall_percentile(90.0),
        p99: recorder.overall_percentile(99.0),
        cost: meter.total(),
        revocations,
        migrated_sessions: lb.stats().migrations,
        lifetime_relinquishments: relinquished,
        fleet_sizes,
        buckets: recorder.all_stats(),
        faults_fired,
        invariant_violations: checker.violations().to_vec(),
    }
}

/// Simple reactive fleet policy for tests and as a reference: size the
/// cheapest-per-request market for the observed rate with headroom.
#[derive(Debug, Clone)]
pub struct ReactiveCheapestPolicy {
    /// Headroom multiplier on the observed rate.
    pub headroom: f64,
    /// Serving capacities per market (req/s).
    pub capacities: Vec<f64>,
}

impl FleetPolicy for ReactiveCheapestPolicy {
    fn decide_fleet(
        &mut self,
        _interval: usize,
        observed_rps: f64,
        prices: &[f64],
        _failure_probs: &[f64],
        _failure_history: &[Vec<f64>],
    ) -> Vec<u32> {
        let per_req: Vec<f64> = prices
            .iter()
            .zip(&self.capacities)
            .map(|(p, c)| p / c)
            .collect();
        let best = per_req
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite prices"))
            .map(|(i, _)| i)
            .expect("non-empty catalog");
        let mut fleet = vec![0u32; prices.len()];
        fleet[best] = ((observed_rps * self.headroom) / self.capacities[best]).ceil() as u32;
        fleet
    }
}

/// Expose backend states for assertions in tests.
pub fn is_down(state: BackendState) -> bool {
    state == BackendState::Down
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_market::Catalog;
    use spotweb_workload::Trace;

    fn flat_trace(rate: f64, config: &RunnerConfig) -> Trace {
        let samples = config.intervals + 2;
        Trace::new(config.interval_secs, vec![rate; samples])
    }

    fn policy(catalog: &Catalog) -> ReactiveCheapestPolicy {
        ReactiveCheapestPolicy {
            headroom: 1.3,
            capacities: catalog.markets().iter().map(|m| m.capacity_rps()).collect(),
        }
    }

    #[test]
    fn steady_run_serves_with_low_latency() {
        let catalog = Catalog::fig4_testbed();
        let config = RunnerConfig {
            intervals: 6,
            seed: 3,
            ..RunnerConfig::default()
        };
        let mut cloud = CloudSim::new(catalog.clone(), 5, 100);
        cloud.warm_up(8);
        let trace = flat_trace(300.0, &config);
        let mut p = policy(&catalog);
        let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
        assert!(r.served > 1000, "served {}", r.served);
        assert!(r.drop_fraction < 0.05, "drops {}", r.drop_fraction);
        assert!(r.p90 < 1.0, "p90 {}", r.p90);
        assert!(r.cost > 0.0);
        assert_eq!(r.fleet_sizes.len(), 6);
    }

    #[test]
    fn deterministic() {
        let catalog = Catalog::fig4_testbed();
        let config = RunnerConfig {
            intervals: 4,
            seed: 9,
            ..RunnerConfig::default()
        };
        let run = || {
            let mut cloud = CloudSim::new(catalog.clone(), 7, 100);
            cloud.warm_up(8);
            let trace = flat_trace(250.0, &config);
            let mut p = policy(&catalog);
            let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
            (r.served, r.dropped, r.cost.to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lifetime_cap_relinquishes_gracefully() {
        // GCP-style 24 h cap compressed: servers older than 3 intervals
        // are proactively replaced, and the rotation costs no requests.
        let catalog = Catalog::fig4_testbed();
        let config = RunnerConfig {
            intervals: 8,
            seed: 6,
            max_lifetime_secs: Some(3.0 * 600.0),
            ..RunnerConfig::default()
        };
        let mut cloud = CloudSim::new(catalog.clone(), 11, 100);
        cloud.warm_up(8);
        let trace = flat_trace(250.0, &config);
        let mut p = policy(&catalog);
        let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
        assert!(
            r.lifetime_relinquishments > 0,
            "cap must rotate servers out"
        );
        assert!(
            r.drop_fraction < 0.01,
            "graceful rotation must not drop requests: {}",
            r.drop_fraction
        );
    }

    #[test]
    fn faulted_run_is_deterministic_and_invariant_clean() {
        use crate::faults::{FaultKind, FaultPlan};
        let catalog = Catalog::fig4_testbed();
        let plan = FaultPlan::new()
            .at(
                700.0,
                FaultKind::PriceShock {
                    market: None,
                    multiplier: 3.0,
                    hold_intervals: 2,
                },
            )
            .at(
                1300.0,
                FaultKind::CorrelatedRevocation {
                    // All markets: the reactive policy may have parked
                    // the whole fleet in any one of them.
                    markets: (0..catalog.len()).collect(),
                    warning_secs: None,
                },
            );
        let config = RunnerConfig {
            intervals: 5,
            seed: 11,
            faults: Some(plan),
            ..RunnerConfig::default()
        };
        let run = || {
            let mut cloud = CloudSim::new(catalog.clone(), 5, 100);
            cloud.warm_up(8);
            let trace = flat_trace(250.0, &config);
            let mut p = policy(&catalog);
            run_full_stack(&mut p, &mut cloud, &trace, &config)
        };
        let a = run();
        let b = run();
        assert!(a.faults_fired >= 2, "faults fired {}", a.faults_fired);
        assert!(a.revocations > 0, "forced revocation must deliver warnings");
        assert!(
            a.invariant_violations.is_empty(),
            "violations: {:?}",
            a.invariant_violations
        );
        assert_eq!(
            (a.served, a.dropped, a.cost.to_bits()),
            (b.served, b.dropped, b.cost.to_bits())
        );
    }

    #[test]
    fn sharded_run_is_byte_identical() {
        // The invariance contract in miniature (tests/shard.rs proves
        // it across all scenarios × seeds): the full canonical report
        // rendering must not depend on the shard count, including with
        // faults in play and telemetry enabled.
        use crate::faults::{FaultKind, FaultPlan};
        let catalog = Catalog::fig4_testbed();
        let plan = FaultPlan::new().at(
            700.0,
            FaultKind::CorrelatedRevocation {
                markets: (0..catalog.len()).collect(),
                warning_secs: Some(30.0),
            },
        );
        let run = |shards: usize| {
            let config = RunnerConfig {
                intervals: 4,
                seed: 1234,
                shards,
                faults: Some(plan.clone()),
                telemetry: TelemetrySink::enabled(),
                ..RunnerConfig::default()
            };
            let mut cloud = CloudSim::new(catalog.clone(), 7, 100);
            cloud.warm_up(8);
            let trace = flat_trace(250.0, &config);
            let mut p = policy(&catalog);
            let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
            crate::shard::report_json(&r)
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "shards 4 must match shards 1");
        assert_eq!(serial, run(3), "shards 3 must match shards 1");
    }

    #[test]
    fn runner_flap_drops_then_recovers() {
        use crate::faults::{FaultKind, FaultPlan};
        let catalog = Catalog::fig4_testbed();
        // Flap one backend in every market mid-run (the policy
        // concentrates the fleet in whichever market is cheapest, so
        // hitting all of them guarantees a serving backend crashes);
        // the run must absorb the crash and the restored backend must
        // leave the conservation law intact.
        let mut plan = FaultPlan::new();
        for m in 0..catalog.len() {
            plan = plan.at(
                900.0,
                FaultKind::BackendFlap {
                    target: m,
                    down_secs: 60.0,
                },
            );
        }
        let config = RunnerConfig {
            intervals: 4,
            seed: 5,
            faults: Some(plan),
            ..RunnerConfig::default()
        };
        let mut cloud = CloudSim::new(catalog.clone(), 5, 100);
        cloud.warm_up(8);
        let trace = flat_trace(250.0, &config);
        let mut p = policy(&catalog);
        let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
        assert_eq!(r.faults_fired, catalog.len());
        assert!(
            r.invariant_violations.is_empty(),
            "violations: {:?}",
            r.invariant_violations
        );
        assert!(r.served > 1000, "served {}", r.served);
        // The final interval is past the restore; it must be healthy.
        let last = r.buckets.last().expect("buckets");
        assert_eq!(last.dropped, 0, "post-restore interval still dropping");
    }

    #[test]
    fn telemetry_neither_perturbs_nor_misses_the_run() {
        // A telemetry-enabled run must replay the exact same requests
        // and dollars as a disabled one (the sink only observes), and
        // the trace must carry the per-interval story.
        let catalog = Catalog::fig4_testbed();
        let run = |sink: TelemetrySink| {
            let config = RunnerConfig {
                intervals: 4,
                seed: 9,
                telemetry: sink,
                ..RunnerConfig::default()
            };
            let mut cloud = CloudSim::new(catalog.clone(), 7, 100);
            cloud.warm_up(8);
            let trace = flat_trace(250.0, &config);
            let mut p = policy(&catalog);
            let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
            (r.served, r.dropped, r.cost.to_bits())
        };
        let quiet = run(TelemetrySink::disabled());
        let sink = TelemetrySink::enabled();
        let traced = run(sink.clone());
        assert_eq!(quiet, traced, "telemetry must be a pure observer");
        let events = sink.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == "interval_summary").count(),
            4
        );
        assert_eq!(kinds.iter().filter(|k| **k == "span_start").count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == "span_end").count(), 4);
        assert!(kinds.contains(&"market_tick"));
        assert!(sink.counter("spotweb_requests_served_total") > 0);
        // Same seed, same config: the export is byte-identical.
        let again = TelemetrySink::enabled();
        run(again.clone());
        assert_eq!(sink.export_jsonl(), again.export_jsonl());
    }

    #[test]
    fn fleet_tracks_load_changes() {
        let catalog = Catalog::fig4_testbed();
        let config = RunnerConfig {
            intervals: 6,
            seed: 2,
            ..RunnerConfig::default()
        };
        let mut cloud = CloudSim::new(catalog.clone(), 3, 100);
        cloud.warm_up(8);
        // Load doubles halfway.
        let mut values = vec![200.0; 3];
        values.extend(vec![500.0; 5]);
        let trace = Trace::new(config.interval_secs, values);
        let mut p = policy(&catalog);
        let r = run_full_stack(&mut p, &mut cloud, &trace, &config);
        assert!(
            r.fleet_sizes.last().unwrap() > r.fleet_sizes.first().unwrap(),
            "fleet {:?} should grow with load",
            r.fleet_sizes
        );
    }
}
