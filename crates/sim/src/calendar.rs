//! A calendar queue for request completions.
//!
//! The request-level runner used to keep every in-flight completion in
//! one global `BinaryHeap`, paying two `O(log n)` sift passes per
//! simulated request. This queue exploits what the heap cannot: the
//! service model only ever schedules completions at least one service
//! time *ahead* of the simulation clock, so time can be divided into
//! fixed-width buckets that are each fully populated **before** the
//! clock reaches them. Pushes append to a bucket in O(1); each bucket
//! is sorted exactly once, when the drain cursor enters it; pops are
//! O(1) from the sorted bucket tail.
//!
//! Ordering is the total order the old heap used — ascending
//! `(done.to_bits(), backend, arrived.to_bits())` — so replacing the
//! heap with this queue is byte-invisible to every consumer
//! (IEEE-754 bit order equals numeric order for the non-negative
//! times the simulator produces), including the order ties are
//! resolved in.
//!
//! The no-late-insert invariant: callers must pick `width` no larger
//! than the minimum completion delay (the base service time — every
//! push satisfies `done ≥ now + service_secs` while drains never pass
//! `now`), which guarantees a push never lands in the bucket the
//! cursor currently occupies. The queue stays *correct* even if that
//! is violated — a late insert binary-searches into the sorted current
//! bucket — it is just no longer O(1).
//!
//! Buckets live in a fixed ring (`RING_BUCKETS` slots); entries beyond
//! the ring horizon — possible only under extreme queueing backlog —
//! overflow into a `far` vector that is folded back in as the cursor
//! advances.

/// Ring size: how many bucket-widths of future the queue covers
/// without touching the overflow path. At the default width (half a
/// service time) this is ~60 s of simulated future — queueing delays
/// past that exist only in pathological overload.
const RING_BUCKETS: usize = 1024;

/// One scheduled completion.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Sort key: `(done.to_bits(), backend, arrived.to_bits())` —
    /// the old global heap's exact total order.
    key: (u64, u64, u64),
    done: f64,
    arrived: f64,
}

/// Bucketed completion queue; see the module docs for the invariant
/// that makes it O(1) per operation.
#[derive(Debug)]
pub struct CalendarQueue {
    width: f64,
    /// `ring[b % RING_BUCKETS]` holds bucket `b`'s entries, unsorted
    /// until the cursor enters `b` (then sorted descending, popped
    /// from the back).
    ring: Vec<Vec<Entry>>,
    /// Absolute index of the bucket the cursor occupies.
    cursor: u64,
    /// Whether the cursor bucket has been sorted yet.
    sorted: bool,
    /// Entries at least `RING_BUCKETS` buckets ahead of the cursor.
    far: Vec<Entry>,
    len: usize,
}

impl CalendarQueue {
    /// A queue with buckets `width` seconds wide. `width` must not
    /// exceed the minimum scheduling delay for O(1) operation (see
    /// module docs).
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "bucket width: {width}");
        CalendarQueue {
            width,
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            sorted: false,
            far: Vec::new(),
            len: 0,
        }
    }

    /// Scheduled completions not yet popped.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, done: f64) -> u64 {
        debug_assert!(done >= 0.0 && done.is_finite());
        (done / self.width) as u64
    }

    /// Schedule the completion of a request that arrived at `arrived`
    /// and finishes at `done` on `backend`.
    pub fn push(&mut self, done: f64, backend: usize, arrived: f64) {
        let entry = Entry {
            key: (done.to_bits(), backend as u64, arrived.to_bits()),
            done,
            arrived,
        };
        let b = self.bucket_of(done).max(self.cursor);
        self.len += 1;
        if b >= self.cursor + RING_BUCKETS as u64 {
            self.far.push(entry);
            return;
        }
        let slot = &mut self.ring[(b % RING_BUCKETS as u64) as usize];
        if b == self.cursor && self.sorted {
            // Invariant violation path (still exact): place the late
            // entry where the descending sort order wants it.
            let pos = slot.partition_point(|e| e.key > entry.key);
            slot.insert(pos, entry);
        } else {
            slot.push(entry);
        }
    }

    /// Fold overflow entries that now fit in the ring back into it.
    fn refill_from_far(&mut self) {
        let horizon = self.cursor + RING_BUCKETS as u64;
        let mut i = 0;
        while i < self.far.len() {
            let b = self.bucket_of(self.far[i].done).max(self.cursor);
            if b < horizon {
                let entry = self.far.swap_remove(i);
                self.ring[(b % RING_BUCKETS as u64) as usize].push(entry);
            } else {
                i += 1;
            }
        }
    }

    /// Advance the cursor to the next non-empty bucket and sort it.
    /// Caller guarantees `len > 0`.
    fn settle(&mut self) {
        loop {
            let slot = (self.cursor % RING_BUCKETS as u64) as usize;
            if !self.ring[slot].is_empty() {
                if !self.sorted {
                    // Descending, so ascending pops come off the back.
                    self.ring[slot].sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
                    self.sorted = true;
                }
                return;
            }
            self.cursor += 1;
            self.sorted = false;
            if self.cursor.is_multiple_of(RING_BUCKETS as u64) && !self.far.is_empty() {
                // Once per ring revolution: any overflow entry within
                // RING_BUCKETS of the cursor is folded in before its
                // ring slot could be reused for a later epoch.
                self.refill_from_far();
            }
        }
    }

    /// Earliest scheduled completion time, if any.
    pub fn peek_done(&mut self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let slot = (self.cursor % RING_BUCKETS as u64) as usize;
        Some(
            self.ring[slot]
                .last()
                .expect("settled bucket nonempty")
                .done,
        )
    }

    /// Pop the earliest completion as `(done, backend, arrived)`.
    pub fn pop(&mut self) -> Option<(f64, usize, f64)> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let slot = (self.cursor % RING_BUCKETS as u64) as usize;
        let e = self.ring[slot].pop().expect("settled bucket nonempty");
        self.len -= 1;
        Some((e.done, e.key.1 as usize, e.arrived))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference order: the old global heap's ascending tuple order.
    fn reference_sort(entries: &mut [(f64, usize, f64)]) {
        entries.sort_by_key(|&(d, b, a)| (d.to_bits(), b, a.to_bits()));
    }

    #[test]
    fn pops_in_heap_order_with_exact_tie_breaks() {
        let mut q = CalendarQueue::new(0.06);
        // Same done on different backends, same (done, backend) with
        // different arrivals, plus spread-out times.
        let mut items = vec![
            (0.5, 2, 0.38),
            (0.5, 1, 0.40),
            (0.5, 1, 0.39),
            (0.12, 0, 0.0),
            (7.3, 4, 7.18),
            (0.5000000001, 0, 0.38),
        ];
        for &(d, b, a) in &items {
            q.push(d, b, a);
        }
        reference_sort(&mut items);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, items);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_heap_semantics() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Drive both structures with the runner's access pattern:
        // drain everything ≤ now, then push completions ≥ now + svc.
        let svc = 0.12;
        let mut q = CalendarQueue::new(svc * 0.5);
        let mut heap: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
        let mut now = 0.0;
        let mut x: u64 = 42;
        for step in 0..5000 {
            // xorshift: cheap deterministic pseudo-times.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += (x % 97) as f64 * 0.001;
            while let Some(done) = q.peek_done() {
                if done > now {
                    break;
                }
                let mine = q.pop().unwrap();
                let Reverse((d, b, a)) = heap.pop().expect("heap has it too");
                assert_eq!(
                    (mine.0.to_bits(), mine.1, mine.2.to_bits()),
                    (d, b, a),
                    "divergence at step {step}"
                );
            }
            let backlog = (x % 5) as f64 * svc;
            let done = now + svc + backlog;
            let backend = (x % 7) as usize;
            q.push(done, backend, now);
            heap.push(Reverse((done.to_bits(), backend, now.to_bits())));
        }
        // Final drain (the runner's end-of-run INFINITY drain).
        while let Some(mine) = q.pop() {
            let Reverse((d, b, a)) = heap.pop().expect("heap has it too");
            assert_eq!((mine.0.to_bits(), mine.1, mine.2.to_bits()), (d, b, a));
        }
        assert!(heap.is_empty());
    }

    #[test]
    fn far_overflow_survives_ring_wraparound() {
        let mut q = CalendarQueue::new(0.01);
        // One entry far beyond the ring horizon (1024 × 0.01 s), then
        // a stream of near entries to walk the cursor past it.
        q.push(100.0, 9, 0.0);
        for k in 0..2000 {
            q.push(0.02 + k as f64 * 0.05, 1, 0.0);
        }
        let mut last = f64::NEG_INFINITY;
        let mut seen_far = false;
        while let Some((done, backend, _)) = q.pop() {
            assert!(done >= last, "order violated: {done} after {last}");
            last = done;
            if backend == 9 {
                seen_far = true;
                assert_eq!(done, 100.0);
            }
        }
        assert!(seen_far, "overflow entry must come back out");
    }

    #[test]
    fn late_insert_into_current_bucket_stays_exact() {
        let mut q = CalendarQueue::new(10.0); // deliberately too wide
        q.push(1.0, 0, 0.0);
        q.push(9.0, 0, 0.0);
        assert_eq!(q.pop(), Some((1.0, 0, 0.0)));
        // The cursor bucket [0, 10) is sorted now; these land in it.
        q.push(3.0, 0, 0.0);
        q.push(5.0, 1, 0.0);
        q.push(3.0, 0, 0.0);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(d, _, _)| d)).collect();
        assert_eq!(order, vec![3.0, 3.0, 5.0, 9.0]);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = CalendarQueue::new(0.06);
        assert!(q.is_empty());
        assert_eq!(q.peek_done(), None);
        assert_eq!(q.pop(), None);
        q.push(0.2, 0, 0.1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_done(), Some(0.2));
        assert_eq!(q.pop(), Some((0.2, 0, 0.1)));
        assert_eq!(q.pop(), None);
    }
}
