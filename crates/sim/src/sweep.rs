//! Deterministic parallel sweep engine.
//!
//! The paper's evaluation (§6) is a grid of *policy × scenario × seed*
//! runs. Each run is independent: it owns its seeded RNG, its own
//! [`TelemetrySink`](crate::TelemetrySink), its own cloud simulator —
//! nothing is shared, so the grid parallelizes embarrassingly. What
//! must **not** change with parallelism is the output:
//!
//! # Determinism contract
//!
//! * **Seed per run** — every run derives all randomness from its own
//!   spec (scenario + seed). No run reads a shared RNG, the ambient
//!   clock, or another run's state.
//! * **Stable collection order** — results are written into a slot
//!   indexed by the run's position in the input grid, and returned in
//!   that order. Which *worker* executes a run is scheduling noise;
//!   where its result lands is not.
//! * **No shared mutable state** — workers communicate only through
//!   their dedicated result slot.
//!
//! Under this contract the rendered output of a sweep is byte-identical
//! at any `jobs` count — the property `figures sweep` checks on every
//! invocation and the golden test `tests/sweep.rs` locks in.
//!
//! Wall-clock timings are collected *around* each run (for
//! `BENCH_sweep.json`) but live outside [`RunSummary`], so they can
//! never leak into the deterministic output — the same quarantine the
//! telemetry crate applies to solver timings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use spotweb_telemetry::json::{json_f64, json_string};
use spotweb_telemetry::{names, prof};

/// Map `f` over `tasks` on up to `jobs` worker threads, returning the
/// results **in input order** regardless of which worker ran what.
///
/// At most `min(jobs, tasks.len(), nproc)` workers are spawned — the
/// `nproc` clamp stops an oversubscribed `--jobs` from timesharing
/// against itself on small containers (the PR 7 phantom-regression
/// diagnosis: `--jobs 4` on a 1-core box measured 0.96x "speedup"
/// that was pure context-switch overhead). `jobs == 1` (or a single
/// task, or a 1-core box) runs inline with no threads at all — a
/// single-task sweep never pays `thread::scope` setup. Workers pull
/// tasks from a shared atomic cursor — run `i`'s result always lands
/// in slot `i`, so the output is independent of scheduling. If `f`
/// panics on any task the panic propagates out of the scope.
///
/// When a [`prof`] session is active, each worker records a
/// `sweep.worker` span (labelled `worker-0..`) containing one
/// `sweep.task` span per task it claimed, so per-worker task counts
/// and wall-time skew land in `BENCH_profile.json`; the inline path
/// records the same structure on the calling thread. The merged span
/// *structure* (worker count = workers spawned, task count = tasks)
/// stays deterministic even though the task→worker split is not.
///
/// # Examples
///
/// ```
/// use spotweb_sim::sweep::parallel_map;
///
/// let squares = parallel_map(4, (0u64..32).collect(), |i, n| {
///     assert_eq!(i as u64, n); // index matches input order
///     n * n
/// });
/// // Results are in input order, whatever the worker interleaving.
/// assert_eq!(squares, parallel_map(1, (0u64..32).collect(), |_, n| n * n));
/// ```
pub fn parallel_map<T, R, F>(jobs: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    let workers = jobs.max(1).min(n.max(1)).min(crate::shard::nproc());
    if workers <= 1 {
        prof::scope!(names::SPAN_SWEEP_WORKER);
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                prof::scope!(names::SPAN_SWEEP_TASK);
                f(i, t)
            })
            .collect();
    }

    // Task slots (taken once each) and result slots (written once
    // each), both indexed by input position.
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let task_slots = &task_slots;
        let result_slots = &result_slots;
        let cursor = &cursor;
        let f = &f;
        for w in 0..workers {
            scope.spawn(move || {
                prof::set_thread_label(&format!("worker-{w}"));
                {
                    prof::scope!(names::SPAN_SWEEP_WORKER);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        prof::scope!(names::SPAN_SWEEP_TASK);
                        let wait = prof::lock_timer();
                        let mut slot = task_slots[i].lock().expect("sweep task slot");
                        wait.done();
                        let task = slot.take().expect("each task is taken exactly once");
                        drop(slot);
                        let result = f(i, task);
                        let wait = prof::lock_timer();
                        let mut out = result_slots[i].lock().expect("sweep result slot");
                        wait.done();
                        *out = Some(result);
                    }
                }
                // `thread::scope` only waits for this closure, not for
                // TLS destructors — flush explicitly so the tree cannot
                // race the session's `finish`.
                prof::flush_thread();
            });
        }
    });

    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep result slot")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// The deterministic per-run record of a sweep: what one
/// (policy, scenario, seed) simulation did. Contains **no wall-clock
/// data** — rendering a `RunSummary` is a pure function of the run's
/// spec, so sweeps at different `--jobs` counts (or on different
/// machines) produce byte-identical summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Policy name (e.g. `spotweb` or `reactive`).
    pub policy: String,
    /// Chaos scenario the run replayed.
    pub scenario: String,
    /// Seed all of the run's randomness derived from.
    pub seed: u64,
    /// Requests served.
    pub served: u64,
    /// Requests dropped.
    pub dropped: u64,
    /// Dropped / offered.
    pub drop_fraction: f64,
    /// Median request latency (seconds).
    pub p50: f64,
    /// 99th-percentile request latency (seconds).
    pub p99: f64,
    /// Provisioning spend over the run ($).
    pub cost: f64,
    /// Revocation warnings delivered.
    pub revocations: u64,
    /// Sessions the balancer migrated off draining backends.
    pub migrated_sessions: u64,
    /// MPO solves performed (0 for non-optimizing policies).
    pub mpo_solves: u64,
    /// Cumulative ADMM iterations across those solves.
    pub admm_iterations: u64,
}

impl RunSummary {
    /// Grid label `policy/scenario/seed` used in logs and BENCH output.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.policy, self.scenario, self.seed)
    }

    /// Render as one byte-stable JSON object (single line, fixed key
    /// order, canonical number formatting via
    /// [`spotweb_telemetry::json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"policy\":{},\"scenario\":{},\"seed\":{},",
                "\"served\":{},\"dropped\":{},\"drop_fraction\":{},",
                "\"p50\":{},\"p99\":{},\"cost\":{},",
                "\"revocations\":{},\"migrated_sessions\":{},",
                "\"mpo_solves\":{},\"admm_iterations\":{}}}"
            ),
            json_string(&self.policy),
            json_string(&self.scenario),
            self.seed,
            self.served,
            self.dropped,
            json_f64(self.drop_fraction),
            json_f64(self.p50),
            json_f64(self.p99),
            json_f64(self.cost),
            self.revocations,
            self.migrated_sessions,
            self.mpo_solves,
            self.admm_iterations,
        )
    }
}

/// One sweep run's outcome: the deterministic summary plus the
/// wall-clock seconds the run took (quarantined here, outside
/// [`RunSummary`], so timing can never perturb deterministic output).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Deterministic per-run record.
    pub summary: RunSummary,
    /// Wall-clock duration of this run (seconds) — BENCH data only.
    pub wall_secs: f64,
}

/// Run every spec in `specs` through `run` on up to `jobs` workers,
/// timing each run, and return the results in input order.
///
/// `run` receives the run's grid index and spec; it must derive all
/// of the run's state from the spec alone (see the module-level
/// determinism contract).
pub fn run_sweep<T, F>(jobs: usize, specs: Vec<T>, run: F) -> Vec<SweepResult>
where
    T: Send,
    F: Fn(usize, T) -> RunSummary + Sync,
{
    parallel_map(jobs, specs, |i, spec| {
        let started = Instant::now();
        let summary = run(i, spec);
        SweepResult {
            summary,
            wall_secs: started.elapsed().as_secs_f64(),
        }
    })
}

/// FNV-1a 64-bit digest (hex) over the rendered summaries — the cheap
/// fingerprint `figures sweep` compares across `--jobs` counts to
/// prove byte-identical output.
pub fn digest(summaries: &[RunSummary]) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for s in summaries {
        for b in s.to_json().as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(seed: u64) -> RunSummary {
        RunSummary {
            policy: "p".into(),
            scenario: "s".into(),
            seed,
            served: 100 * seed,
            dropped: seed,
            drop_fraction: seed as f64 / 100.0,
            p50: 0.05,
            p99: 0.2,
            cost: 1.25,
            revocations: 2,
            migrated_sessions: 3,
            mpo_solves: 4,
            admm_iterations: 200,
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let serial = parallel_map(1, (0..100u64).collect(), |_, n| n * 3);
        let parallel = parallel_map(7, (0..100u64).collect(), |_, n| n * 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[41], 123);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |_, n| n);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(4, vec![9u64], |i, n| n + i as u64), vec![9]);
    }

    #[test]
    fn parallel_map_clamps_workers_to_task_count() {
        fn worker_labels(profile: &prof::Profile) -> Vec<&str> {
            profile
                .threads
                .iter()
                .map(|t| t.label.as_str())
                .filter(|l| l.starts_with("worker-"))
                .collect()
        }
        // One task, eight requested jobs: the single-worker clamp
        // takes the inline path — no thread is spawned at all.
        let session = prof::begin();
        let out = parallel_map(8, vec![21u64], |_, n| n * 2);
        let profile = session.finish();
        assert_eq!(out, vec![42]);
        assert!(
            worker_labels(&profile).is_empty(),
            "one task runs inline on the caller"
        );
        // Three tasks, eight requested jobs: exactly
        // min(jobs, tasks, nproc) workers — observed through the
        // profiler's per-thread trees. On a 1-core box the clamp
        // collapses to the inline path (no threads at all).
        let expected = 3.min(crate::shard::nproc());
        let session = prof::begin();
        let out = parallel_map(8, (0..3u64).collect(), |_, n| n);
        let profile = session.finish();
        assert_eq!(out, vec![0, 1, 2]);
        if expected <= 1 {
            assert!(
                worker_labels(&profile).is_empty(),
                "nproc == 1 must run inline"
            );
        } else {
            let want: Vec<String> = (0..expected).map(|w| format!("worker-{w}")).collect();
            assert_eq!(
                worker_labels(&profile),
                want,
                "min(jobs, tasks, nproc) workers"
            );
        }
    }

    #[test]
    fn parallel_map_records_per_worker_task_counts() {
        let session = prof::begin();
        let out = parallel_map(2, (0..5u64).collect(), |_, n| n);
        let profile = session.finish();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        // Every task shows up in exactly one sweep.task span — on
        // worker threads when min(jobs, nproc) > 1, on the calling
        // thread when the nproc clamp forces the inline path. The
        // split between workers is scheduling-dependent, the sum is
        // not.
        let expected_workers = 2.min(crate::shard::nproc());
        let worker_threads = profile
            .threads
            .iter()
            .filter(|t| t.label.starts_with("worker-"))
            .count();
        if expected_workers <= 1 {
            assert_eq!(worker_threads, 0, "nproc == 1 must run inline");
        } else {
            assert_eq!(worker_threads, 2, "two workers for five tasks");
        }
        let total_tasks: u64 = profile
            .threads
            .iter()
            .flat_map(|t| &t.nodes)
            .filter(|n| n.name == names::SPAN_SWEEP_TASK)
            .map(|n| n.count)
            .sum();
        assert_eq!(total_tasks, 5);
    }

    #[test]
    fn run_sweep_is_deterministic_across_job_counts() {
        let run = |_: usize, seed: u64| summary(seed);
        let one = run_sweep(1, (0..16).collect(), run);
        let four = run_sweep(4, (0..16).collect(), run);
        let s1: Vec<RunSummary> = one.into_iter().map(|r| r.summary).collect();
        let s4: Vec<RunSummary> = four.into_iter().map(|r| r.summary).collect();
        assert_eq!(s1, s4);
        assert_eq!(digest(&s1), digest(&s4));
        let j1: Vec<String> = s1.iter().map(RunSummary::to_json).collect();
        let j4: Vec<String> = s4.iter().map(RunSummary::to_json).collect();
        assert_eq!(j1, j4, "rendered summaries must be byte-identical");
    }

    #[test]
    fn json_is_single_line_and_stable() {
        let s = summary(7);
        let j = s.to_json();
        assert!(!j.contains('\n'));
        assert_eq!(j, s.clone().to_json());
        assert!(j.starts_with("{\"policy\":\"p\""));
        assert!(j.contains("\"drop_fraction\":0.07"));
    }

    #[test]
    fn digest_distinguishes_different_grids() {
        let a = [summary(1), summary(2)];
        let b = [summary(1), summary(3)];
        assert_ne!(digest(&a), digest(&b));
        // Order matters: the digest fingerprints the collection order.
        let swapped = [summary(2), summary(1)];
        assert_ne!(digest(&a), digest(&swapped));
    }
}
