//! End-to-end cluster scenarios.
//!
//! [`FailoverScenario`] reproduces the paper's Fig. 4(a) testbed
//! experiment: a heterogeneous six-server cluster at 70–95% utilization
//! serving ~600 req/s; three minutes in, correlated revocations take
//! out four of the six servers; the transiency-aware balancer reacts to
//! the warning (drain + migrate + reactively start replacements that
//! come up within the warning period), while the vanilla balancer keeps
//! routing to the doomed servers and loses everything in flight when
//! they die.

use spotweb_lb::{LoadBalancer, LoadBalancerConfig, RouteOutcome};

use crate::engine::{Event, EventQueue};
use crate::metrics::{BucketStats, LatencyRecorder};
use crate::rng::{stream_id, CounterStream, DOMAIN_SCENARIO_GAP};
use crate::service::ServiceModel;

/// One server in the initial cluster.
#[derive(Debug, Clone, Copy)]
pub struct ServerSpec {
    /// Market/pool identifier (victim selection keys on this).
    pub market: usize,
    /// Serving capacity (req/s).
    pub capacity_rps: f64,
}

/// Scenario parameters. Defaults reproduce Fig. 4(a).
#[derive(Debug, Clone)]
pub struct FailoverScenario {
    /// Initial cluster.
    pub servers: Vec<ServerSpec>,
    /// Poisson arrival rate (req/s).
    pub arrival_rps: f64,
    /// Total simulated time (seconds).
    pub duration_secs: f64,
    /// Induce correlated revocations at this time (None = no failures).
    pub revocation_at: Option<f64>,
    /// Markets whose servers are revoked at `revocation_at`.
    pub victim_markets: Vec<usize>,
    /// Advance warning before termination (seconds).
    pub warning_secs: f64,
    /// Replacement VM startup time (seconds).
    pub startup_secs: f64,
    /// Cache warm-up window after startup (seconds).
    pub warmup_secs: f64,
    /// Base request service time (seconds).
    pub service_secs: f64,
    /// Transiency-aware (SpotWeb) or vanilla balancer.
    pub transiency_aware: bool,
    /// Distinct concurrent user sessions.
    pub sessions: u64,
    /// Metrics bucket width (seconds).
    pub bucket_secs: f64,
    /// RNG seed (arrival process).
    pub seed: u64,
}

impl Default for FailoverScenario {
    fn default() -> Self {
        FailoverScenario {
            // 2× m4.xlarge (80 rps), 2× m4.2xlarge (160), 2× m4.4xlarge
            // (320) — 1120 rps total, ≈ 600 rps offered → util rises to
            // ~95% on survivors after the revocation.
            servers: vec![
                ServerSpec {
                    market: 0,
                    capacity_rps: 80.0,
                },
                ServerSpec {
                    market: 0,
                    capacity_rps: 80.0,
                },
                ServerSpec {
                    market: 1,
                    capacity_rps: 160.0,
                },
                ServerSpec {
                    market: 1,
                    capacity_rps: 160.0,
                },
                ServerSpec {
                    market: 2,
                    capacity_rps: 320.0,
                },
                ServerSpec {
                    market: 2,
                    capacity_rps: 320.0,
                },
            ],
            arrival_rps: 600.0,
            duration_secs: 600.0,
            revocation_at: Some(180.0),
            victim_markets: vec![1, 2],
            warning_secs: 120.0,
            startup_secs: 55.0,
            warmup_secs: 60.0,
            service_secs: 0.12,
            transiency_aware: true,
            sessions: 2000,
            bucket_secs: 60.0,
            seed: 42,
        }
    }
}

/// Result of a scenario run.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Per-bucket latency stats (the Fig. 4(a) boxplot series).
    pub buckets: Vec<BucketStats>,
    /// Requests served.
    pub served: usize,
    /// Requests dropped.
    pub dropped: u64,
    /// Overall drop fraction.
    pub drop_fraction: f64,
    /// Overall p90 latency (seconds).
    pub p90: f64,
    /// Overall p99 latency (seconds).
    pub p99: f64,
    /// Sessions migrated by warnings.
    pub migrated_sessions: u64,
    /// Sessions lost to abrupt death.
    pub lost_sessions: u64,
}

impl FailoverScenario {
    /// Run the scenario to completion.
    pub fn run(&self) -> FailoverReport {
        assert!(!self.servers.is_empty(), "need at least one server");
        assert!(self.arrival_rps > 0.0 && self.duration_secs > 0.0);

        // Counter-based gaps (draw-order-free): gap `k` belongs to
        // request `k`, so the arrival process is a pure function of
        // the seed — see `crate::rng`.
        let gaps = CounterStream::new(self.seed, stream_id(DOMAIN_SCENARIO_GAP, 0));
        let mut lb = LoadBalancer::new(LoadBalancerConfig {
            transiency_aware: self.transiency_aware,
            admission_control: true,
            max_utilization: 0.98,
            max_delay_secs: 2.0,
            service_secs: self.service_secs,
        });
        let mut services: Vec<ServiceModel> = Vec::new();
        let mut death_time: Vec<Option<f64>> = Vec::new();
        for s in &self.servers {
            lb.add_backend_up(s.market, s.capacity_rps);
            services.push(ServiceModel::new(s.capacity_rps, self.service_secs, 0.0));
            death_time.push(None);
        }

        let mut queue = EventQueue::new();
        let mut recorder = LatencyRecorder::new(self.bucket_secs, self.duration_secs);
        let mut next_request: u64 = 0;
        let mut migrated: u64 = 0;
        let mut lost: u64 = 0;

        // Seed the arrival stream.
        let first = gaps.exp_at(0, self.arrival_rps);
        queue.schedule(
            first,
            Event::Arrival {
                request: 0,
                session: 0,
            },
        );
        next_request += 1;

        // Schedule the induced correlated revocations.
        if let Some(t_rev) = self.revocation_at {
            for (id, s) in self.servers.iter().enumerate() {
                if self.victim_markets.contains(&s.market) {
                    queue.schedule(
                        t_rev,
                        Event::RevocationWarning {
                            backend: id,
                            warning_secs: self.warning_secs,
                        },
                    );
                }
            }
        }

        // The run drains the queue completely: arrivals stop at
        // `duration_secs`, after which the backlog finishes serving so
        // every request gets its latency (or drop) recorded.
        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Arrival { request, session } => {
                    lb.tick(now);
                    match lb.route(Some(session), now) {
                        RouteOutcome::Routed(b) => {
                            let done = services[b].admit(now);
                            queue.schedule(
                                done,
                                Event::Completion {
                                    request,
                                    backend: b,
                                    arrived: now,
                                },
                            );
                        }
                        RouteOutcome::Dropped => {
                            recorder.record_drop(now);
                        }
                    }
                    // Self-scheduling generator: only the newest arrival
                    // spawns the next one.
                    if request + 1 == next_request {
                        let t_next = now + gaps.exp_at(next_request, self.arrival_rps);
                        if t_next <= self.duration_secs {
                            let session = next_request % self.sessions;
                            queue.schedule(
                                t_next,
                                Event::Arrival {
                                    request: next_request,
                                    session,
                                },
                            );
                            next_request += 1;
                        }
                    }
                }
                Event::Completion {
                    request: _,
                    backend,
                    arrived,
                } => {
                    match death_time[backend] {
                        // The server died before finishing this request.
                        Some(d) if d < now => {
                            recorder.record_drop(arrived);
                        }
                        _ => {
                            recorder.record(arrived, now - arrived);
                            lb.complete(backend, None);
                        }
                    }
                }
                Event::RevocationWarning {
                    backend,
                    warning_secs,
                } => {
                    let report = lb.revocation_warning(backend, now, warning_secs);
                    migrated += report.migrated_sessions as u64;
                    let _ = report.stayed_sessions; // re-homed lazily

                    queue.schedule(now + warning_secs, Event::ServerDeath { backend });
                    if self.transiency_aware {
                        // Reactive reprovisioning on the warning: start a
                        // replacement of the same capacity immediately.
                        self.spawn_replacement(
                            backend,
                            now,
                            &mut lb,
                            &mut services,
                            &mut death_time,
                            &mut queue,
                        );
                    }
                }
                Event::ServerDeath { backend } => {
                    lost += lb.server_died(backend, now) as u64;
                    death_time[backend] = Some(now);
                    // In-flight requests die with the server; their
                    // Completion events turn into drops (handled above).
                    services[backend].kill(now);
                    if !self.transiency_aware {
                        // Vanilla reacts only once health checks see the
                        // dead server.
                        self.spawn_replacement(
                            backend,
                            now,
                            &mut lb,
                            &mut services,
                            &mut death_time,
                            &mut queue,
                        );
                    }
                }
                Event::ServerReady { backend } => {
                    lb.tick(now);
                    let _ = backend;
                }
                Event::FaultTrigger { .. } | Event::BackendRestore { .. } => {
                    // Chaos events belong to `faults::ChaosScenario`;
                    // the plain failover scenario never schedules them.
                    unreachable!("chaos event in FailoverScenario")
                }
            }
        }

        let (served, dropped) = recorder.totals();
        FailoverReport {
            drop_fraction: recorder.drop_fraction(),
            p90: recorder.overall_percentile(90.0),
            p99: recorder.overall_percentile(99.0),
            buckets: recorder.all_stats(),
            served,
            dropped,
            migrated_sessions: migrated,
            lost_sessions: lost,
        }
    }

    fn spawn_replacement(
        &self,
        dying: usize,
        now: f64,
        lb: &mut LoadBalancer,
        services: &mut Vec<ServiceModel>,
        death_time: &mut Vec<Option<f64>>,
        queue: &mut EventQueue,
    ) {
        let market = lb.backends()[dying].market;
        let capacity = lb.backends()[dying].capacity_rps;
        let id = lb.add_backend(market, capacity, now, self.startup_secs, self.warmup_secs);
        services.push(ServiceModel::new(
            capacity,
            self.service_secs,
            now + self.startup_secs + self.warmup_secs,
        ));
        death_time.push(None);
        queue.schedule(now + self.startup_secs, Event::ServerReady { backend: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(aware: bool, revoke: bool) -> FailoverReport {
        FailoverScenario {
            duration_secs: 420.0,
            revocation_at: revoke.then_some(120.0),
            transiency_aware: aware,
            arrival_rps: 400.0,
            seed: 7,
            ..FailoverScenario::default()
        }
        .run()
    }

    #[test]
    fn steady_state_low_latency_no_drops() {
        let r = quick(true, false);
        assert_eq!(r.dropped, 0, "no failures → no drops");
        assert!(r.p90 < 0.3, "p90 {} too high in steady state", r.p90);
        assert!(r.served > 100_000, "served {}", r.served);
    }

    #[test]
    fn aware_beats_vanilla_on_drops() {
        let aware = quick(true, true);
        let vanilla = quick(false, true);
        assert!(
            aware.drop_fraction < vanilla.drop_fraction,
            "aware {} vs vanilla {}",
            aware.drop_fraction,
            vanilla.drop_fraction
        );
        // The paper's numbers: SpotWeb ~0 drops, vanilla drops massively
        // right after the revocation. Shape assertions:
        assert!(
            aware.drop_fraction < 0.01,
            "aware drops {}",
            aware.drop_fraction
        );
        assert!(
            vanilla.drop_fraction > 0.02,
            "vanilla drops {}",
            vanilla.drop_fraction
        );
    }

    #[test]
    fn aware_migrates_vanilla_loses_sessions() {
        let aware = quick(true, true);
        let vanilla = quick(false, true);
        assert!(aware.migrated_sessions > 0);
        assert_eq!(vanilla.migrated_sessions, 0);
        assert!(vanilla.lost_sessions > aware.lost_sessions);
    }

    #[test]
    fn latency_rises_then_recovers() {
        let r = quick(true, true);
        // Bucket index 2 covers [120, 180): the revocation minute.
        let before = &r.buckets[1];
        let recovery = r.buckets.last().unwrap();
        assert!(before.count > 0 && recovery.count > 0);
        // After replacements warm up, p90 returns near pre-failure level.
        assert!(
            recovery.p90 < 3.0 * before.p90.max(0.05),
            "no recovery: before {} after {}",
            before.p90,
            recovery.p90
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(true, true);
        let b = quick(true, true);
        assert_eq!(a.served, b.served);
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn slow_startup_triggers_admission_control() {
        // §6.1 scenario 3: "system utilization is high, and new
        // instances can not be started within the warning period.
        // Load will be migrated to the other running instances, or
        // dropped until the new instances are available." Replacements
        // take 300 s against a 120 s warning, and the survivors
        // (2 × 80 req/s) cannot carry 400 req/s — the admission
        // controller must shed load without melting the survivors.
        let r = FailoverScenario {
            duration_secs: 600.0,
            revocation_at: Some(120.0),
            transiency_aware: true,
            arrival_rps: 400.0,
            startup_secs: 300.0,
            seed: 7,
            ..FailoverScenario::default()
        }
        .run();
        // Some requests are necessarily dropped during the gap…
        assert!(r.dropped > 0, "gap must force drops");
        // …but the served ones keep bounded latency (protection works;
        // the admission budget is 2 s of queueing).
        assert!(r.p99 < 4.0, "p99 {} — survivors melted", r.p99);
        // And the cluster recovers once replacements warm up: the last
        // minute is clean.
        let last = r.buckets.last().unwrap();
        assert_eq!(last.dropped, 0, "no drops after recovery");
        assert!(last.p90 < 0.7, "recovered p90 {}", last.p90);
    }
}
