//! Discrete-event web-cluster simulator.
//!
//! The paper's testbed experiments (Fig. 4(a)) run MediaWiki on EC2
//! behind a modified HAProxy and measure request latencies around
//! induced revocations. This crate replaces that testbed with a
//! request-level discrete-event simulation:
//!
//! * [`engine`] — the event queue (time-ordered, deterministic
//!   tie-breaking).
//! * [`service`] — the backend service model: each server is an
//!   `M/D/c`-style multi-slot FIFO queue with concurrency
//!   `c = capacity × service_time`, a base service time calibrated to
//!   the paper's MediaWiki measurements (mean response well under
//!   200 ms at moderate load), doubled service times during the cache
//!   warm-up window, and hard kill on revocation deadline.
//! * [`metrics`] — per-time-bucket latency distributions (quartiles /
//!   p90 / p99), drop and migration counters — the data behind the
//!   Fig. 4(a) boxplot.
//! * [`scenario`] — end-to-end scenarios driving `spotweb-lb`:
//!   [`scenario::FailoverScenario`] reproduces the Fig. 4(a)
//!   experiment (6-server heterogeneous cluster, ~600 req/s, induced
//!   correlated revocation at t ≈ 3 min, reactive replacement within
//!   the warning window) for both the transiency-aware and vanilla
//!   balancers.
//! * [`faults`] — the deterministic fault-injection harness:
//!   seed-compiled [`faults::FaultPlan`]s (correlated revocations,
//!   zero-warning kills, backend flaps, price shocks, startup/warmup
//!   stalls), the invariant-audited [`faults::ChaosScenario`] runner,
//!   and the named chaos scenarios the regression suite replays.
//! * [`sweep`] — the deterministic parallel sweep engine: fan a grid
//!   of independent (policy, scenario, seed) runs across
//!   `std::thread::scope` workers with byte-identical output at any
//!   jobs count (seed-per-run, stable collection order, no shared
//!   state — see the module docs for the determinism contract).
//! * [`rng`] — the counter-based, draw-order-free generator
//!   (`sample(seed, stream, counter)`): the only sanctioned RNG in
//!   shard-parallel paths, because a stateful sequential stream would
//!   force the arrival loop to stay serial.
//! * [`shard`] — sharded execution of a single run
//!   ([`runner::RunnerConfig::shards`]): per-interval arrival
//!   generation fans out across cores and latency metrics fold in
//!   window order, with reports byte-identical at any shard count;
//!   also the canonical [`shard::report_json`] / [`shard::report_digest`]
//!   renderings that invariance proofs compare.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod shard;
pub mod sweep;

pub use calendar::CalendarQueue;
pub use engine::{Event, EventQueue};
pub use faults::{
    ChaosReport, ChaosScenario, FaultKind, FaultPlan, FaultSpec, InvariantChecker, RandomFault,
    Replacement, NAMED_SCENARIOS,
};
pub use metrics::{BucketStats, LatencyRecorder};
pub use runner::{
    run_full_stack, run_full_stack_observed, FleetPolicy, RunnerConfig, RunnerReport,
};
pub use scenario::{FailoverReport, FailoverScenario};
pub use service::ServiceModel;
pub use shard::{nproc, report_digest, report_json};
pub use spotweb_telemetry::{TelemetrySink, TraceEvent};
pub use sweep::{parallel_map, run_sweep, RunSummary, SweepResult};
