//! Sharded execution for the full-stack runner.
//!
//! `RunnerConfig::shards > 1` splits one simulation across cores
//! without changing a single byte of its output. The design follows
//! from what the serial loop actually spends its time on: the arrival
//! process (counter-RNG draws, exponential gaps) and the metrics fold
//! (latency histograms) are both free of feedback into the control
//! loop, while everything between them — balancer routing, service
//! queues, policy decisions, billing — is a serial dependency chain
//! (interval `i+1`'s policy reads interval `i`'s monitor). So the run
//! becomes a three-stage pipeline:
//!
//! 1. **Generation shards** (this module, `ArrivalPipeline`): a pool
//!    of `min(shards, nproc, intervals)` workers pre-generates each
//!    decision interval's arrival batch `(time, session)` from the
//!    counter-based `sim::rng` streams keyed by interval. Because the
//!    generator is draw-order-free, window `w`'s batch never depends
//!    on windows `0..w` — any worker can produce any window, bounded
//!    by a lookahead so memory stays O(shards × window).
//! 2. **The simulation thread**: the unchanged control loop consumes
//!    batches in interval order through `ArrivalSupply`. At
//!    `shards = 1` the same generator runs inline and lazily
//!    (`InlineArrivals`) — no batch materialization, which is what
//!    keeps day-scale runs inside the memory gate.
//! 3. **The metrics fold** (`FoldWorker`): latency/drop recording is
//!    buffered per window and applied by one worker in ascending
//!    window order — the exact call sequence the serial run makes, so
//!    float accumulation order (histogram sums are not associative)
//!    is invariant in the shard count.
//!
//! Byte-identity between `--shards 1` and `--shards K` is therefore
//! structural, not approximate: both paths execute the same draws, the
//! same routing, and the same fold sequence. `tests/shard.rs` locks it
//! in across all five chaos scenarios and three seeds, and
//! [`report_json`] / [`report_digest`] are the canonical renderings
//! the proof compares.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use spotweb_telemetry::json::{json_f64, json_string, json_u32_array};
use spotweb_telemetry::HistogramHandle;

use crate::metrics::{BucketStats, LatencyRecorder};
use crate::rng::{stream_id, CounterStream, DOMAIN_ARRIVAL_GAP, DOMAIN_ARRIVAL_SESSION};
use crate::runner::RunnerReport;

/// Number of logical cores the runtime reports. Centralized here so
/// the runner, the sweep pool, and the bench reports all agree on the
/// figure they record (satellite: `nproc` lands in every BENCH file).
pub fn nproc() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Arrival generation
// ---------------------------------------------------------------------------

/// One decision interval's arrival parameters, fixed at run start
/// (the trace rate is sampled at the interval boundary, exactly as the
/// serial loop samples it).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowSpec {
    pub t0: f64,
    pub t_end: f64,
    pub rate: f64,
}

/// The arrival generator for one window: a lazy walk of the
/// counter-RNG streams keyed by the interval index. Both execution
/// modes use this exact type — the inline path iterates it on the
/// simulation thread, the pipeline path iterates it on a gen worker —
/// so the draw sequence is identical by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowGen {
    gaps: CounterStream,
    sessions_stream: CounterStream,
    sessions: u64,
    t: f64,
    t_end: f64,
    rate: f64,
    k: u64,
}

impl WindowGen {
    pub(crate) fn new(seed: u64, interval: usize, sessions: u64, spec: WindowSpec) -> Self {
        WindowGen {
            gaps: CounterStream::new(seed, stream_id(DOMAIN_ARRIVAL_GAP, interval as u64)),
            sessions_stream: CounterStream::new(
                seed,
                stream_id(DOMAIN_ARRIVAL_SESSION, interval as u64),
            ),
            sessions,
            t: spec.t0,
            t_end: spec.t_end,
            rate: spec.rate,
            k: 0,
        }
    }

    /// Next arrival `(time, session)` strictly before the window end,
    /// or `None` once the gap walk crosses it. Draw `k` of the gap
    /// stream and draw `k` of the session stream belong to arrival
    /// `k`; the counter advances only on yielded arrivals, so the
    /// sequence is a pure function of `(seed, interval)`.
    pub(crate) fn next(&mut self) -> Option<(f64, u64)> {
        let t = self.t + self.gaps.exp_at(self.k, self.rate);
        if t >= self.t_end {
            return None;
        }
        let session = self.sessions_stream.range_at(self.k, self.sessions);
        self.t = t;
        self.k += 1;
        Some((t, session))
    }
}

/// A window's arrivals, consumed in time order by the control loop.
pub(crate) trait WindowArrivals {
    /// Next arrival `(time, session)` in this window, if any.
    fn next(&mut self) -> Option<(f64, u64)>;
}

impl WindowArrivals for WindowGen {
    fn next(&mut self) -> Option<(f64, u64)> {
        WindowGen::next(self)
    }
}

/// Source of per-interval arrival windows. The control loop requests
/// windows strictly in interval order.
pub(crate) trait ArrivalSupply {
    /// The window iterator type this supply hands out.
    type Window: WindowArrivals;
    /// Open interval `interval`'s arrival window.
    fn window(&mut self, interval: usize, spec: WindowSpec) -> Self::Window;
}

/// `shards = 1`: generate arrivals lazily on the simulation thread.
/// No batch is ever materialized — at day scale a single window is
/// tens of millions of arrivals, and the serial path must stay inside
/// the memory gate.
pub(crate) struct InlineArrivals {
    pub(crate) seed: u64,
    pub(crate) sessions: u64,
}

impl ArrivalSupply for InlineArrivals {
    type Window = WindowGen;
    fn window(&mut self, interval: usize, spec: WindowSpec) -> WindowGen {
        WindowGen::new(self.seed, interval, self.sessions, spec)
    }
}

struct GenState {
    /// Next window index a worker may claim.
    next_claim: usize,
    /// Windows the simulation thread has consumed (`take` watermark).
    consumed: usize,
    /// Finished batches, indexed by window.
    ready: Vec<Option<Vec<(f64, u64)>>>,
    abort: bool,
}

struct GenShared {
    state: Mutex<GenState>,
    /// Workers wait here for lookahead room.
    gen_cv: Condvar,
    /// The simulation thread waits here for its next batch.
    ready_cv: Condvar,
}

/// The generation worker pool: pre-computes per-window arrival batches
/// ahead of the simulation thread, bounded by a lookahead of
/// `2 × shards` windows so memory stays proportional to the shard
/// count rather than the horizon.
pub(crate) struct ArrivalPipeline {
    shared: Arc<GenShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ArrivalPipeline {
    /// Spawn `min(shards, nproc, windows)` workers over `specs`.
    pub(crate) fn spawn(seed: u64, sessions: u64, specs: Vec<WindowSpec>, shards: usize) -> Self {
        let n = specs.len();
        let lookahead = (2 * shards).max(2);
        let shared = Arc::new(GenShared {
            state: Mutex::new(GenState {
                next_claim: 0,
                consumed: 0,
                ready: (0..n).map(|_| None).collect(),
                abort: false,
            }),
            gen_cv: Condvar::new(),
            ready_cv: Condvar::new(),
        });
        let specs = Arc::new(specs);
        let n_workers = shards.min(nproc()).min(n.max(1)).max(1);
        let workers = (0..n_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let specs = Arc::clone(&specs);
                std::thread::Builder::new()
                    .name(format!("shard-gen-{w}"))
                    .spawn(move || loop {
                        let claimed = {
                            let mut st = shared.state.lock().expect("gen pool lock");
                            loop {
                                if st.abort || st.next_claim >= n {
                                    return;
                                }
                                if st.next_claim < st.consumed + lookahead {
                                    let c = st.next_claim;
                                    st.next_claim += 1;
                                    break c;
                                }
                                st = shared.gen_cv.wait(st).expect("gen pool lock");
                            }
                        };
                        // Generation is pure arithmetic over the
                        // counter streams: no locks held, no panics.
                        let mut gen = WindowGen::new(seed, claimed, sessions, specs[claimed]);
                        let mut batch = Vec::new();
                        while let Some(a) = gen.next() {
                            batch.push(a);
                        }
                        let mut st = shared.state.lock().expect("gen pool lock");
                        st.ready[claimed] = Some(batch);
                        shared.ready_cv.notify_all();
                    })
                    .expect("spawn shard-gen worker")
            })
            .collect();
        ArrivalPipeline { shared, workers }
    }

    /// Block until window `w`'s batch is ready and take it. Windows
    /// must be taken in ascending order (the control loop's order).
    fn take(&self, w: usize) -> Vec<(f64, u64)> {
        let mut st = self.shared.state.lock().expect("gen pool lock");
        debug_assert_eq!(st.consumed, w, "windows must be taken in order");
        loop {
            if let Some(batch) = st.ready[w].take() {
                st.consumed = w + 1;
                self.shared.gen_cv.notify_all();
                return batch;
            }
            st = self.shared.ready_cv.wait(st).expect("gen pool lock");
        }
    }
}

impl Drop for ArrivalPipeline {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("gen pool lock");
            st.abort = true;
        }
        self.shared.gen_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// `shards > 1`: windows come pre-generated from the pipeline.
pub(crate) struct PipelineArrivals {
    pipeline: ArrivalPipeline,
}

impl PipelineArrivals {
    pub(crate) fn new(pipeline: ArrivalPipeline) -> Self {
        PipelineArrivals { pipeline }
    }
}

/// A materialized window batch, replayed in generation order.
pub(crate) struct BatchWindow {
    batch: Vec<(f64, u64)>,
    idx: usize,
}

impl WindowArrivals for BatchWindow {
    fn next(&mut self) -> Option<(f64, u64)> {
        let a = self.batch.get(self.idx).copied();
        self.idx += 1;
        a
    }
}

impl ArrivalSupply for PipelineArrivals {
    type Window = BatchWindow;
    fn window(&mut self, interval: usize, _spec: WindowSpec) -> BatchWindow {
        BatchWindow {
            batch: self.pipeline.take(interval),
            idx: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics fold
// ---------------------------------------------------------------------------

/// One latency/drop observation, buffered per window when the fold is
/// deferred. Only the recorder-bound effects are deferred; monitor,
/// invariant checker, and balancer bookkeeping are control-loop state
/// and stay inline.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ObsEvent {
    /// A request served: bucket by arrival, record `latency` seconds.
    Served { arrived: f64, latency: f64 },
    /// A request dropped (admission or killed in flight).
    Dropped { arrived: f64 },
}

/// Destination for latency/drop observations. The control loop calls
/// it identically in both modes; the implementations differ only in
/// *when* the recorder mutation happens, never in what order.
pub(crate) trait ObsSink {
    /// A request was served.
    fn served(&mut self, arrived: f64, latency: f64);
    /// A request was dropped.
    fn dropped(&mut self, arrived: f64);
    /// Interval `interval`'s control work is complete; flush.
    fn end_window(&mut self, interval: usize);
    /// Interval stats for the telemetry rollup (synchronizes the fold
    /// up to `interval` first when deferred).
    fn bucket_stats(&mut self, interval: usize) -> BucketStats;
    /// Tear down and hand back the recorder for report assembly.
    fn finish(self) -> LatencyRecorder;
}

/// `shards = 1`: apply observations immediately, exactly as the
/// pre-shard runner did.
pub(crate) struct DirectObs {
    recorder: LatencyRecorder,
    latency_hist: HistogramHandle,
}

impl DirectObs {
    pub(crate) fn new(recorder: LatencyRecorder, latency_hist: HistogramHandle) -> Self {
        DirectObs {
            recorder,
            latency_hist,
        }
    }
}

impl ObsSink for DirectObs {
    fn served(&mut self, arrived: f64, latency: f64) {
        self.recorder.record(arrived, latency);
        self.latency_hist.observe(latency);
    }
    fn dropped(&mut self, arrived: f64) {
        self.recorder.record_drop(arrived);
    }
    fn end_window(&mut self, _interval: usize) {}
    fn bucket_stats(&mut self, interval: usize) -> BucketStats {
        self.recorder.bucket_stats(interval)
    }
    fn finish(self) -> LatencyRecorder {
        self.recorder
    }
}

struct FoldQueue {
    batches: VecDeque<Vec<ObsEvent>>,
    closed: bool,
    /// Window batches the fold worker has fully applied.
    folded: usize,
}

struct FoldShared {
    q: Mutex<FoldQueue>,
    /// The fold worker waits here for batches.
    work_cv: Condvar,
    /// The simulation thread waits here for `folded` to advance.
    done_cv: Condvar,
    recorder: Mutex<LatencyRecorder>,
}

/// The single fold worker: applies buffered observation batches to the
/// recorder (and the telemetry latency histogram) strictly in window
/// order. One worker, ascending windows ⇒ the recorder sees the exact
/// call sequence the serial run makes, so non-associative float
/// accumulation cannot diverge with the shard count.
pub(crate) struct FoldWorker {
    shared: Arc<FoldShared>,
    handle: Option<JoinHandle<()>>,
}

/// Bound on unapplied window batches before the simulation thread
/// blocks in `submit` (the fold is cheap; this only matters if a
/// profiler stalls the worker).
const FOLD_MAX_PENDING: usize = 8;

impl FoldWorker {
    pub(crate) fn spawn(recorder: LatencyRecorder, latency_hist: HistogramHandle) -> Self {
        let shared = Arc::new(FoldShared {
            q: Mutex::new(FoldQueue {
                batches: VecDeque::new(),
                closed: false,
                folded: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            recorder: Mutex::new(recorder),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("shard-fold".to_string())
            .spawn(move || loop {
                let batch = {
                    let mut q = worker_shared.q.lock().expect("fold lock");
                    loop {
                        if let Some(b) = q.batches.pop_front() {
                            break b;
                        }
                        if q.closed {
                            return;
                        }
                        q = worker_shared.work_cv.wait(q).expect("fold lock");
                    }
                };
                {
                    let mut rec = worker_shared.recorder.lock().expect("fold recorder lock");
                    for ev in &batch {
                        match *ev {
                            ObsEvent::Served { arrived, latency } => {
                                rec.record(arrived, latency);
                                latency_hist.observe(latency);
                            }
                            ObsEvent::Dropped { arrived } => rec.record_drop(arrived),
                        }
                    }
                }
                let mut q = worker_shared.q.lock().expect("fold lock");
                q.folded += 1;
                worker_shared.done_cv.notify_all();
            })
            .expect("spawn shard-fold worker");
        FoldWorker {
            shared,
            handle: Some(handle),
        }
    }

    fn submit(&self, batch: Vec<ObsEvent>) {
        let mut q = self.shared.q.lock().expect("fold lock");
        while q.batches.len() >= FOLD_MAX_PENDING {
            q = self.shared.done_cv.wait(q).expect("fold lock");
        }
        q.batches.push_back(batch);
        self.shared.work_cv.notify_all();
    }

    /// Block until at least `windows` batches have been applied.
    fn sync(&self, windows: usize) {
        let mut q = self.shared.q.lock().expect("fold lock");
        while q.folded < windows {
            q = self.shared.done_cv.wait(q).expect("fold lock");
        }
    }

    fn finish(mut self) -> LatencyRecorder {
        {
            let mut q = self.shared.q.lock().expect("fold lock");
            q.closed = true;
        }
        self.shared.work_cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // `Drop` is a no-op now (handle taken); release self's Arc so
        // the unwrap below holds the only reference.
        let shared = Arc::clone(&self.shared);
        drop(self);
        let shared = Arc::try_unwrap(shared)
            .ok()
            .expect("fold worker joined; no other refs");
        shared.recorder.into_inner().expect("fold recorder lock")
    }
}

impl Drop for FoldWorker {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            {
                let mut q = self.shared.q.lock().expect("fold lock");
                q.closed = true;
            }
            self.shared.work_cv.notify_all();
            let _ = h.join();
        }
    }
}

/// `shards > 1`: buffer observations per window, flush at window end.
pub(crate) struct DeferredObs {
    fold: FoldWorker,
    buf: Vec<ObsEvent>,
    windows_ended: usize,
}

impl DeferredObs {
    pub(crate) fn new(fold: FoldWorker) -> Self {
        DeferredObs {
            fold,
            buf: Vec::new(),
            windows_ended: 0,
        }
    }
}

impl ObsSink for DeferredObs {
    fn served(&mut self, arrived: f64, latency: f64) {
        self.buf.push(ObsEvent::Served { arrived, latency });
    }
    fn dropped(&mut self, arrived: f64) {
        self.buf.push(ObsEvent::Dropped { arrived });
    }
    fn end_window(&mut self, _interval: usize) {
        self.fold.submit(std::mem::take(&mut self.buf));
        self.windows_ended += 1;
    }
    fn bucket_stats(&mut self, interval: usize) -> BucketStats {
        self.fold.sync(self.windows_ended);
        let rec = self
            .fold
            .shared
            .recorder
            .lock()
            .expect("fold recorder lock");
        rec.bucket_stats(interval)
    }
    fn finish(mut self) -> LatencyRecorder {
        if !self.buf.is_empty() {
            self.fold.submit(std::mem::take(&mut self.buf));
        }
        self.fold.finish()
    }
}

// ---------------------------------------------------------------------------
// Canonical report rendering
// ---------------------------------------------------------------------------

fn bucket_json(b: &BucketStats) -> String {
    format!(
        concat!(
            "{{\"start\":{},\"count\":{},\"mean\":{},\"min\":{},",
            "\"p25\":{},\"p50\":{},\"p75\":{},\"p90\":{},\"p99\":{},",
            "\"max\":{},\"dropped\":{}}}"
        ),
        json_f64(b.start),
        b.count,
        json_f64(b.mean),
        json_f64(b.min),
        json_f64(b.p25),
        json_f64(b.p50),
        json_f64(b.p75),
        json_f64(b.p90),
        json_f64(b.p99),
        json_f64(b.max),
        b.dropped,
    )
}

/// Canonical single-line JSON rendering of a [`RunnerReport`] — every
/// field, hand-rolled through the workspace's byte-stable float
/// helpers. String equality of two renderings is the shard-invariance
/// proof (`--shards 1` vs `--shards K`), so this is the only sanctioned
/// serialization of a report.
pub fn report_json(r: &RunnerReport) -> String {
    let buckets: Vec<String> = r.buckets.iter().map(bucket_json).collect();
    let violations: Vec<String> = r
        .invariant_violations
        .iter()
        .map(|v| json_string(v))
        .collect();
    format!(
        concat!(
            "{{\"served\":{},\"dropped\":{},\"drop_fraction\":{},",
            "\"p50\":{},\"p90\":{},\"p99\":{},\"cost\":{},",
            "\"revocations\":{},\"migrated_sessions\":{},",
            "\"lifetime_relinquishments\":{},\"fleet_sizes\":{},",
            "\"buckets\":[{}],\"faults_fired\":{},",
            "\"invariant_violations\":[{}]}}"
        ),
        r.served,
        r.dropped,
        json_f64(r.drop_fraction),
        json_f64(r.p50),
        json_f64(r.p90),
        json_f64(r.p99),
        json_f64(r.cost),
        r.revocations,
        r.migrated_sessions,
        r.lifetime_relinquishments,
        json_u32_array(&r.fleet_sizes),
        buckets.join(","),
        r.faults_fired,
        violations.join(","),
    )
}

/// FNV-1a 64 digest of a report's canonical JSON (the same hash the
/// sweep digests use), newline-terminated so digests of concatenated
/// reports compose.
pub fn report_digest(r: &RunnerReport) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for b in report_json(r).as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash ^= u64::from(b'\n');
    hash = hash.wrapping_mul(FNV_PRIME);
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotweb_telemetry::TelemetrySink;

    fn specs(n: usize, interval_secs: f64, rate: f64) -> Vec<WindowSpec> {
        (0..n)
            .map(|i| {
                let t0 = i as f64 * interval_secs;
                WindowSpec {
                    t0,
                    t_end: t0 + interval_secs,
                    rate,
                }
            })
            .collect()
    }

    #[test]
    fn pipeline_batches_match_inline_generation() {
        let specs = specs(6, 50.0, 80.0);
        for shards in [2usize, 3, 8] {
            let pipeline = ArrivalPipeline::spawn(1234, 500, specs.clone(), shards);
            for (i, spec) in specs.iter().enumerate() {
                let mut inline = WindowGen::new(1234, i, 500, *spec);
                let batch = pipeline.take(i);
                let mut expect = Vec::new();
                while let Some(a) = inline.next() {
                    expect.push(a);
                }
                assert_eq!(batch, expect, "window {i} at {shards} shards");
            }
        }
    }

    #[test]
    fn pipeline_drop_mid_run_joins_cleanly() {
        let specs = specs(64, 10.0, 200.0);
        let pipeline = ArrivalPipeline::spawn(7, 100, specs, 4);
        let _ = pipeline.take(0);
        drop(pipeline); // 63 windows unconsumed: abort must unblock workers
    }

    #[test]
    fn fold_matches_direct_application() {
        let sink = TelemetrySink::disabled();
        let hist = sink.histogram_handle("test_latency");
        let mut direct = LatencyRecorder::new(10.0, 40.0);
        let fold = FoldWorker::spawn(LatencyRecorder::new(10.0, 40.0), hist.clone());
        let mut deferred = DeferredObs::new(fold);
        let events: Vec<(usize, ObsEvent)> = vec![
            (
                0,
                ObsEvent::Served {
                    arrived: 1.0,
                    latency: 0.25,
                },
            ),
            (0, ObsEvent::Dropped { arrived: 2.0 }),
            (
                1,
                ObsEvent::Served {
                    arrived: 12.0,
                    latency: 0.125,
                },
            ),
            (
                3,
                ObsEvent::Served {
                    arrived: 31.0,
                    latency: 0.5,
                },
            ),
        ];
        let mut window = 0usize;
        for (w, ev) in events {
            while window < w {
                deferred.end_window(window);
                window += 1;
            }
            match ev {
                ObsEvent::Served { arrived, latency } => {
                    direct.record(arrived, latency);
                    deferred.served(arrived, latency);
                }
                ObsEvent::Dropped { arrived } => {
                    direct.record_drop(arrived);
                    deferred.dropped(arrived);
                }
            }
        }
        let folded = deferred.finish();
        assert_eq!(folded.totals(), direct.totals());
        assert_eq!(
            folded.overall_percentile(50.0).to_bits(),
            direct.overall_percentile(50.0).to_bits()
        );
    }

    #[test]
    fn report_json_is_byte_stable() {
        let r = RunnerReport {
            served: 10,
            dropped: 2,
            drop_fraction: 1.0 / 6.0,
            p50: 0.125,
            p90: 0.25,
            p99: 0.5,
            cost: 3.0,
            revocations: 1,
            migrated_sessions: 4,
            lifetime_relinquishments: 0,
            fleet_sizes: vec![2, 3],
            buckets: Vec::new(),
            faults_fired: 1,
            invariant_violations: vec!["x".to_string()],
        };
        let a = report_json(&r);
        assert_eq!(a, report_json(&r.clone()));
        assert!(a.starts_with("{\"served\":10,\"dropped\":2,"));
        assert!(a.contains("\"fleet_sizes\":[2,3]"));
        assert!(a.contains("\"invariant_violations\":[\"x\"]"));
        assert_eq!(report_digest(&r), report_digest(&r.clone()));
    }
}
