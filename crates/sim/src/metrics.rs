//! Latency and loss metrics.
//!
//! Fig. 4(a) is a per-minute boxplot of response latencies around a
//! revocation. [`LatencyRecorder`] folds samples into one streaming
//! histogram per fixed time bucket (see
//! [`spotweb_telemetry::StreamingHistogram`]) and reduces each to
//! quartiles/percentiles on demand. Unlike the original
//! store-every-sample design, memory is `O(buckets × hist_buckets)`
//! — constant in the number of requests — so million-request runs no
//! longer retain every latency. `count`, `mean`, `min`, and `max` are
//! exact; percentiles carry the histogram's ~0.5% relative error.
//!
//! Edge cases are well-defined: an empty bucket reports NaN
//! percentiles with zero count, and a single-sample bucket reports
//! that sample exactly at every percentile (the old sorted-vector
//! quartile interpolation was NaN-prone here).

use spotweb_telemetry::StreamingHistogram;

/// Summary of one time bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketStats {
    /// Bucket start time (seconds).
    pub start: f64,
    /// Sample count.
    pub count: usize,
    /// Mean latency (s).
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Requests dropped in this bucket.
    pub dropped: u64,
}

/// Collects latency samples and drop events into time buckets, one
/// mergeable streaming histogram per bucket.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    bucket_secs: f64,
    hists: Vec<StreamingHistogram>,
    dropped: Vec<u64>,
}

impl LatencyRecorder {
    /// Recorder with buckets of `bucket_secs` covering `[0, horizon)`.
    pub fn new(bucket_secs: f64, horizon_secs: f64) -> Self {
        assert!(bucket_secs > 0.0 && horizon_secs > 0.0);
        let n = (horizon_secs / bucket_secs).ceil() as usize;
        LatencyRecorder {
            bucket_secs,
            hists: vec![StreamingHistogram::new(); n],
            dropped: vec![0; n],
        }
    }

    fn bucket(&self, t: f64) -> Option<usize> {
        if t < 0.0 {
            return None;
        }
        let b = (t / self.bucket_secs) as usize;
        (b < self.hists.len()).then_some(b)
    }

    /// Record a served request: arrival time and latency.
    pub fn record(&mut self, arrival: f64, latency: f64) {
        if let Some(b) = self.bucket(arrival) {
            self.hists[b].record(latency);
        }
    }

    /// Record a dropped request at its arrival time.
    pub fn record_drop(&mut self, arrival: f64) {
        if let Some(b) = self.bucket(arrival) {
            self.dropped[b] += 1;
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.hists.len()
    }

    /// Total served / dropped counts.
    pub fn totals(&self) -> (usize, u64) {
        (
            self.hists.iter().map(|h| h.count() as usize).sum(),
            self.dropped.iter().sum(),
        )
    }

    /// Overall drop fraction.
    pub fn drop_fraction(&self) -> f64 {
        let (served, dropped) = self.totals();
        let total = served as f64 + dropped as f64;
        if total == 0.0 {
            0.0
        } else {
            dropped as f64 / total
        }
    }

    /// Merge every bucket's histogram into one (the whole run).
    pub fn overall_histogram(&self) -> StreamingHistogram {
        let mut all = StreamingHistogram::new();
        for h in &self.hists {
            all.merge(h);
        }
        all
    }

    /// Percentile over *all* samples.
    pub fn overall_percentile(&self, p: f64) -> f64 {
        self.overall_histogram().percentile(p)
    }

    /// Reduce bucket `b` to stats. Empty buckets give NaN percentiles
    /// and zero count; a single-sample bucket reports that sample
    /// exactly at every percentile.
    pub fn bucket_stats(&self, b: usize) -> BucketStats {
        let h = &self.hists[b];
        BucketStats {
            start: b as f64 * self.bucket_secs,
            count: h.count() as usize,
            mean: h.mean(),
            min: h.min(),
            p25: h.percentile(25.0),
            p50: h.percentile(50.0),
            p75: h.percentile(75.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            max: h.max(),
            dropped: self.dropped[b],
        }
    }

    /// Stats for every bucket.
    pub fn all_stats(&self) -> Vec<BucketStats> {
        (0..self.buckets()).map(|b| self.bucket_stats(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_arrival_time() {
        let mut r = LatencyRecorder::new(60.0, 180.0);
        r.record(10.0, 0.1);
        r.record(70.0, 0.2);
        r.record(70.5, 0.4);
        assert_eq!(r.buckets(), 3);
        assert_eq!(r.bucket_stats(0).count, 1);
        let b1 = r.bucket_stats(1);
        assert_eq!(b1.count, 2);
        assert!((b1.mean - 0.3).abs() < 1e-12);
        assert_eq!(r.bucket_stats(2).count, 0);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut r = LatencyRecorder::new(60.0, 120.0);
        r.record(500.0, 0.1);
        r.record(-5.0, 0.1);
        assert_eq!(r.totals().0, 0);
    }

    #[test]
    fn drop_fraction() {
        let mut r = LatencyRecorder::new(60.0, 60.0);
        r.record(1.0, 0.1);
        r.record(2.0, 0.1);
        r.record_drop(3.0);
        r.record_drop(4.0);
        assert!((r.drop_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.bucket_stats(0).dropped, 2);
    }

    #[test]
    fn percentiles_ordered() {
        let mut r = LatencyRecorder::new(60.0, 60.0);
        for k in 1..=100 {
            r.record(1.0, k as f64 / 100.0);
        }
        let s = r.bucket_stats(0);
        assert!(s.min <= s.p25 && s.p25 <= s.p50 && s.p50 <= s.p75);
        assert!(s.p75 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((r.overall_percentile(50.0) - s.p50).abs() < 1e-9);
        // Streaming percentiles stay within 1% of the exact values.
        assert!((s.p50 - 0.5).abs() / 0.5 < 0.01);
        assert!((s.p90 - 0.9).abs() / 0.9 < 0.01);
    }

    #[test]
    fn empty_recorder_is_sane() {
        let r = LatencyRecorder::new(10.0, 100.0);
        assert_eq!(r.drop_fraction(), 0.0);
        assert_eq!(r.totals(), (0, 0));
        assert!(r.bucket_stats(0).p50.is_nan());
    }

    /// The NaN-prone edge the old sorted-vector quartiles had: a
    /// single-sample bucket must report that sample exactly at every
    /// percentile, and an empty bucket must be all-NaN with count 0.
    #[test]
    fn single_sample_bucket_is_exact_everywhere() {
        let mut r = LatencyRecorder::new(60.0, 120.0);
        r.record(5.0, 0.37);
        let s = r.bucket_stats(0);
        assert_eq!(s.count, 1);
        for v in [s.mean, s.min, s.p25, s.p50, s.p75, s.p90, s.p99, s.max] {
            assert_eq!(v, 0.37, "single-sample bucket must be exact");
        }
        let empty = r.bucket_stats(1);
        assert_eq!(empty.count, 0);
        for v in [
            empty.mean, empty.min, empty.p25, empty.p50, empty.p75, empty.p90, empty.p99, empty.max,
        ] {
            assert!(v.is_nan(), "empty bucket stats must be NaN");
        }
    }

    /// Memory stays flat as samples pour in (the point of the
    /// streaming migration).
    #[test]
    fn recorder_memory_constant_in_samples() {
        let mut r = LatencyRecorder::new(60.0, 60.0);
        for i in 0..10_000 {
            r.record(1.0, 0.05 + (i % 100) as f64 * 0.01);
        }
        let baseline = r.overall_histogram().memory_bytes();
        for i in 0..100_000 {
            r.record(1.0, 0.05 + (i % 100) as f64 * 0.01);
        }
        assert_eq!(r.overall_histogram().memory_bytes(), baseline);
    }
}
