//! Latency and loss metrics.
//!
//! Fig. 4(a) is a per-minute boxplot of response latencies around a
//! revocation. [`LatencyRecorder`] collects raw samples into fixed
//! time buckets and reduces each to quartiles/percentiles on demand.

use spotweb_linalg::vector;

/// Summary of one time bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketStats {
    /// Bucket start time (seconds).
    pub start: f64,
    /// Sample count.
    pub count: usize,
    /// Mean latency (s).
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Requests dropped in this bucket.
    pub dropped: u64,
}

/// Collects latency samples and drop events into time buckets.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    bucket_secs: f64,
    samples: Vec<Vec<f64>>,
    dropped: Vec<u64>,
}

impl LatencyRecorder {
    /// Recorder with buckets of `bucket_secs` covering `[0, horizon)`.
    pub fn new(bucket_secs: f64, horizon_secs: f64) -> Self {
        assert!(bucket_secs > 0.0 && horizon_secs > 0.0);
        let n = (horizon_secs / bucket_secs).ceil() as usize;
        LatencyRecorder {
            bucket_secs,
            samples: vec![Vec::new(); n],
            dropped: vec![0; n],
        }
    }

    fn bucket(&self, t: f64) -> Option<usize> {
        if t < 0.0 {
            return None;
        }
        let b = (t / self.bucket_secs) as usize;
        (b < self.samples.len()).then_some(b)
    }

    /// Record a served request: arrival time and latency.
    pub fn record(&mut self, arrival: f64, latency: f64) {
        if let Some(b) = self.bucket(arrival) {
            self.samples[b].push(latency);
        }
    }

    /// Record a dropped request at its arrival time.
    pub fn record_drop(&mut self, arrival: f64) {
        if let Some(b) = self.bucket(arrival) {
            self.dropped[b] += 1;
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.samples.len()
    }

    /// Total served / dropped counts.
    pub fn totals(&self) -> (usize, u64) {
        (
            self.samples.iter().map(|s| s.len()).sum(),
            self.dropped.iter().sum(),
        )
    }

    /// Overall drop fraction.
    pub fn drop_fraction(&self) -> f64 {
        let (served, dropped) = self.totals();
        let total = served as f64 + dropped as f64;
        if total == 0.0 {
            0.0
        } else {
            dropped as f64 / total
        }
    }

    /// Percentile over *all* samples.
    pub fn overall_percentile(&self, p: f64) -> f64 {
        let mut all: Vec<f64> = self.samples.iter().flatten().copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        vector::percentile_sorted(&all, p)
    }

    /// Reduce bucket `b` to stats (empty buckets give NaN percentiles,
    /// zero count).
    pub fn bucket_stats(&self, b: usize) -> BucketStats {
        let mut s = self.samples[b].clone();
        s.sort_by(|a, c| a.partial_cmp(c).expect("finite latencies"));
        BucketStats {
            start: b as f64 * self.bucket_secs,
            count: s.len(),
            mean: vector::mean(&s),
            min: s.first().copied().unwrap_or(f64::NAN),
            p25: vector::percentile_sorted(&s, 25.0),
            p50: vector::percentile_sorted(&s, 50.0),
            p75: vector::percentile_sorted(&s, 75.0),
            p90: vector::percentile_sorted(&s, 90.0),
            p99: vector::percentile_sorted(&s, 99.0),
            max: s.last().copied().unwrap_or(f64::NAN),
            dropped: self.dropped[b],
        }
    }

    /// Stats for every bucket.
    pub fn all_stats(&self) -> Vec<BucketStats> {
        (0..self.buckets()).map(|b| self.bucket_stats(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_arrival_time() {
        let mut r = LatencyRecorder::new(60.0, 180.0);
        r.record(10.0, 0.1);
        r.record(70.0, 0.2);
        r.record(70.5, 0.4);
        assert_eq!(r.buckets(), 3);
        assert_eq!(r.bucket_stats(0).count, 1);
        let b1 = r.bucket_stats(1);
        assert_eq!(b1.count, 2);
        assert!((b1.mean - 0.3).abs() < 1e-12);
        assert_eq!(r.bucket_stats(2).count, 0);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut r = LatencyRecorder::new(60.0, 120.0);
        r.record(500.0, 0.1);
        r.record(-5.0, 0.1);
        assert_eq!(r.totals().0, 0);
    }

    #[test]
    fn drop_fraction() {
        let mut r = LatencyRecorder::new(60.0, 60.0);
        r.record(1.0, 0.1);
        r.record(2.0, 0.1);
        r.record_drop(3.0);
        r.record_drop(4.0);
        assert!((r.drop_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.bucket_stats(0).dropped, 2);
    }

    #[test]
    fn percentiles_ordered() {
        let mut r = LatencyRecorder::new(60.0, 60.0);
        for k in 1..=100 {
            r.record(1.0, k as f64 / 100.0);
        }
        let s = r.bucket_stats(0);
        assert!(s.min <= s.p25 && s.p25 <= s.p50 && s.p50 <= s.p75);
        assert!(s.p75 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((r.overall_percentile(50.0) - s.p50).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_is_sane() {
        let r = LatencyRecorder::new(10.0, 100.0);
        assert_eq!(r.drop_fraction(), 0.0);
        assert_eq!(r.totals(), (0, 0));
        assert!(r.bucket_stats(0).p50.is_nan());
    }
}
