//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use spotweb_telemetry::{names, CounterHandle, TelemetrySink};

/// Events the cluster simulation processes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request arrives at the load balancer.
    Arrival {
        /// Request id.
        request: u64,
        /// Session the request belongs to.
        session: u64,
    },
    /// A request finishes on a backend.
    Completion {
        /// Request id.
        request: u64,
        /// Backend that served it.
        backend: usize,
        /// Arrival time (latency bookkeeping).
        arrived: f64,
    },
    /// The cloud issues a revocation warning for a backend.
    RevocationWarning {
        /// Backend losing its server.
        backend: usize,
        /// Advance notice in seconds.
        warning_secs: f64,
    },
    /// The cloud terminates a backend (end of warning period).
    ServerDeath {
        /// Backend being terminated.
        backend: usize,
    },
    /// A replacement server becomes ready to serve.
    ServerReady {
        /// Backend coming online.
        backend: usize,
    },
    /// A compiled fault fires (index into a chaos timeline; see
    /// [`crate::faults`]).
    FaultTrigger {
        /// Position of the injection in the compiled fault timeline.
        fault: usize,
    },
    /// A flapped backend comes back up (fault-injection recovery).
    BackendRestore {
        /// Backend returning to service.
        backend: usize,
    },
}

/// A scheduled event; ordered by time with a sequence tiebreaker so
/// simultaneous events process in insertion order (determinism).
#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: f64,
    scheduled_counter: CounterHandle,
    processed_counter: CounterHandle,
}

impl EventQueue {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry sink; the queue counts scheduled and
    /// processed events (`spotweb_sim_events_*_total`). The counter
    /// names are resolved to interned [`CounterHandle`]s up front so
    /// the per-event increments skip the string lookup.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.scheduled_counter = sink.counter_handle(names::SIM_EVENTS_SCHEDULED_TOTAL);
        self.processed_counter = sink.counter_handle(names::SIM_EVENTS_PROCESSED_TOTAL);
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics on non-finite times or times before `now` (causality).
    pub fn schedule(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now - 1e-9,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.scheduled_counter.inc();
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            self.processed_counter.inc();
            (s.time, s.event)
        })
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(r: u64) -> Event {
        Event::Arrival {
            request: r,
            session: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, arrival(3));
        q.schedule(1.0, arrival(1));
        q.schedule(2.0, arrival(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, arrival(10));
        q.schedule(1.0, arrival(20));
        q.schedule(1.0, arrival(30));
        let ids: Vec<u64> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrival { request, .. } => request,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(5.0, arrival(1));
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, arrival(1));
        q.pop();
        q.schedule(1.0, arrival(2));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(2.0, arrival(1));
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
    }
}
