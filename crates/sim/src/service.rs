//! Backend service model.
//!
//! Each server is modeled as a multi-slot FIFO queue (`M/D/c`-like):
//! concurrency `c = capacity_rps × service_secs` worker slots, each
//! taking `service_secs` per request (doubled while the cache is cold,
//! matching the paper's 30–90 s Memcached warm-up). A request arriving
//! when all slots are busy waits for the earliest slot — latency =
//! wait + service. The model reproduces the paper's testbed behaviour:
//! mean latency well under 200 ms below saturation and sharply growing
//! queueing delay beyond it.
//!
//! Both internal queues are allocation-free after construction — this
//! model sits inside the request-level hot loop and is exercised once
//! per simulated request (see `benches/hot_path.rs`). The worker slots
//! are a fixed-size implicit min-heap (`admit` is a replace-root +
//! sift-down, never a push/pop pair on a growable heap), and the
//! outstanding-completions queue is a sorted `VecDeque` that exploits
//! the near-sorted order deterministic service times generate.

use std::collections::VecDeque;

/// The service queue of one backend server.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// Earliest-free times of the worker slots: a fixed-length
    /// implicit min-heap (`slots[0]` is the earliest), one entry per
    /// slot for the life of the model. `NEG_INFINITY` marks a slot
    /// that has never served (free since forever), so stale past
    /// free-times need no draining — `max(earliest, now)` is the
    /// start time either way.
    slots: Vec<f64>,
    /// Completion times of every request not yet known to be finished
    /// (drained lazily against the query clock) — the source of truth
    /// for in-flight accounting and [`ServiceModel::kill`]. Kept
    /// ascending; inserts scan from the back, which is O(1) amortized
    /// because completions are generated near-sorted (out-of-order
    /// pairs only straddle the cold→warm service-time boundary).
    outstanding: VecDeque<f64>,
    /// Base per-request service time (seconds).
    pub service_secs: f64,
    /// Until this time the cache is cold and service takes
    /// `service_secs × cold_factor`.
    pub warm_until: f64,
    /// Cold-cache service-time multiplier.
    pub cold_factor: f64,
}

impl ServiceModel {
    /// Model a server of `capacity_rps` with base service time
    /// `service_secs`; it is cold (slower) until `warm_until`.
    pub fn new(capacity_rps: f64, service_secs: f64, warm_until: f64) -> Self {
        assert!(capacity_rps > 0.0 && service_secs > 0.0);
        let concurrency = (capacity_rps * service_secs).round().max(1.0) as usize;
        ServiceModel {
            slots: vec![f64::NEG_INFINITY; concurrency],
            outstanding: VecDeque::new(),
            service_secs,
            warm_until,
            cold_factor: 2.0,
        }
    }

    /// Forget outstanding requests that completed by `now`.
    fn drain_outstanding(&mut self, now: f64) {
        while let Some(t) = self.outstanding.front() {
            if *t <= now {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
    }

    /// Replace the earliest slot free-time with `done` and restore the
    /// min-heap property (one sift-down, no allocation).
    fn occupy_earliest(&mut self, done: f64) {
        let n = self.slots.len();
        self.slots[0] = done;
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut m = i;
            if l < n && self.slots[l] < self.slots[m] {
                m = l;
            }
            if r < n && self.slots[r] < self.slots[m] {
                m = r;
            }
            if m == i {
                break;
            }
            self.slots.swap(i, m);
            i = m;
        }
    }

    /// Record `done` in the outstanding queue, keeping it sorted.
    fn push_outstanding(&mut self, done: f64) {
        let mut idx = self.outstanding.len();
        while idx > 0 && self.outstanding[idx - 1] > done {
            idx -= 1;
        }
        if idx == self.outstanding.len() {
            self.outstanding.push_back(done);
        } else {
            self.outstanding.insert(idx, done);
        }
    }

    /// Worker-slot count.
    pub fn concurrency(&self) -> usize {
        self.slots.len()
    }

    /// Requests queued or in service as of `now`.
    pub fn in_system_at(&mut self, now: f64) -> usize {
        self.drain_outstanding(now);
        self.outstanding.len()
    }

    /// Requests not yet known finished (upper bound; see
    /// [`ServiceModel::in_system_at`] for the time-accurate count).
    pub fn in_system(&self) -> usize {
        self.outstanding.len()
    }

    /// Admit a request at `now`; returns its completion time.
    pub fn admit(&mut self, now: f64) -> f64 {
        // A free slot (free-time ≤ now, including the never-used
        // NEG_INFINITY sentinel) starts service immediately; otherwise
        // the request waits for the earliest slot.
        let earliest = self.slots[0];
        let start = if earliest > now { earliest } else { now };
        let service = if start < self.warm_until {
            self.service_secs * self.cold_factor
        } else {
            self.service_secs
        };
        let done = start + service;
        self.occupy_earliest(done);
        self.drain_outstanding(now);
        self.push_outstanding(done);
        done
    }

    /// Kill the server at `now`: all requests completing after `now`
    /// are lost. Returns how many were dropped (queued requests
    /// included).
    pub fn kill(&mut self, now: f64) -> usize {
        self.drain_outstanding(now);
        let dropped = self.outstanding.len();
        self.outstanding.clear();
        self.slots.fill(f64::NEG_INFINITY);
        dropped
    }

    /// Release the model's memory after its server was permanently
    /// retired (compacted out of the balancer). The model keeps its
    /// index in the per-backend array — external backend ids are never
    /// reused — but a retired server can never [`admit`](Self::admit)
    /// or [`kill`](Self::kill) again, so the slot heap and outstanding
    /// queue are freed rather than carried for the rest of a week-scale
    /// run.
    pub fn release(&mut self) {
        self.slots = Vec::new();
        self.outstanding = VecDeque::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_service_time() {
        let mut s = ServiceModel::new(100.0, 0.2, 0.0);
        let done = s.admit(10.0);
        assert!((done - 10.2).abs() < 1e-12);
    }

    #[test]
    fn concurrency_derives_from_capacity() {
        let s = ServiceModel::new(100.0, 0.25, 0.0);
        assert_eq!(s.concurrency(), 25);
        // A tiny server still has one slot.
        assert_eq!(ServiceModel::new(1.0, 0.1, 0.0).concurrency(), 1);
    }

    #[test]
    fn queueing_delay_when_saturated() {
        let mut s = ServiceModel::new(10.0, 0.1, 0.0); // 1 slot
        let d1 = s.admit(0.0);
        let d2 = s.admit(0.0);
        assert!((d1 - 0.1).abs() < 1e-12);
        assert!((d2 - 0.2).abs() < 1e-12, "second waits for the first");
    }

    #[test]
    fn sustained_overload_grows_queue() {
        let mut s = ServiceModel::new(10.0, 0.1, 0.0);
        // Offered 20 rps against capacity 10 rps for 1 s.
        let mut worst: f64 = 0.0;
        for k in 0..20 {
            let t = k as f64 / 20.0;
            worst = worst.max(s.admit(t) - t);
        }
        assert!(worst > 0.5, "latency must blow up under overload: {worst}");
    }

    #[test]
    fn cold_cache_doubles_service() {
        let mut s = ServiceModel::new(100.0, 0.2, 100.0);
        let d_cold = s.admit(10.0);
        assert!((d_cold - 10.4).abs() < 1e-12);
        let d_warm = s.admit(200.0);
        assert!((d_warm - 200.2).abs() < 1e-12);
    }

    #[test]
    fn kill_drops_in_flight() {
        let mut s = ServiceModel::new(10.0, 1.0, 0.0); // 10 slots, 1 s each
        for _ in 0..5 {
            s.admit(0.0);
        }
        // At t = 0.5 all five are still in flight.
        assert_eq!(s.kill(0.5), 5);
        assert_eq!(s.in_system(), 0);
    }

    #[test]
    fn kill_counts_queued_requests_too() {
        // 1 slot, 12 admissions: 11 still unfinished at t = 0.5.
        let mut s = ServiceModel::new(10.0, 0.1, 0.0);
        for _ in 0..12 {
            s.admit(0.0);
        }
        assert_eq!(s.in_system_at(0.05), 12);
        assert_eq!(s.kill(0.15), 11, "one completed at 0.1, rest dropped");
    }

    #[test]
    fn kill_spares_completed() {
        let mut s = ServiceModel::new(10.0, 1.0, 0.0);
        s.admit(0.0); // completes at 1.0
        assert_eq!(s.kill(2.0), 0);
    }
}
