//! The sanctioned generator for shard-parallel simulation paths.
//!
//! This module is a documented re-export of
//! [`spotweb_workload::rng`] — the counter-based, draw-order-free
//! generator (`sample(seed, stream, counter) -> u64`, a pure
//! function). The primitive lives in the workload crate because the
//! trace generators sit *below* the simulator in the dependency graph
//! and draw from the same keyspace; `sim::rng` is the import path the
//! simulator's own modules (and the `spotweb-lint` `seeded-rng-only`
//! / `determinism-taint` rules) treat as canonical.
//!
//! # Why not `ChaCha8Rng` here?
//!
//! A stateful sequential generator makes draw `n` depend on draws
//! `0..n`, which forces the arrival loop to be serial: no time window
//! can be generated without generating every window before it. Inside
//! the sharded runner (`sim::runner` with `RunnerConfig::shards > 1`)
//! that is a correctness bug, not a style choice — per-window workers
//! would race for the shared stream and the run would stop being
//! deterministic. `spotweb-lint` therefore flags stateful sequential
//! RNG types in shard-parallel modules (`shard-parallel` registry in
//! `LintConfig`); [`CounterStream`] and [`sample`] are the only
//! sanctioned draws there.
//!
//! Stream keys are built with [`stream_id`] from the `DOMAIN_*`
//! registry documented in [`spotweb_workload::rng`]; the per-domain
//! index (decision interval, fault ordinal, …) makes every use site's
//! draws independent of every other's, so shards never contend for a
//! sequence.

pub use spotweb_workload::rng::{
    sample, stream_id, CounterStream, DOMAIN_ARRIVAL_GAP, DOMAIN_ARRIVAL_SESSION, DOMAIN_BUMP,
    DOMAIN_FAULT_COIN, DOMAIN_NOISE, DOMAIN_SCENARIO_GAP, DOMAIN_SPIKE_HALF, DOMAIN_SPIKE_MAG,
    DOMAIN_SPIKE_OCCUR, DOMAIN_SPIKE_RAMP,
};
