//! Deterministic fault injection — the chaos harness.
//!
//! A [`FaultPlan`] scripts *what goes wrong and when*: correlated
//! multi-market revocations (with per-fault warning overrides, down to
//! zero warning), single-backend flaps, price-spike regimes, and
//! delayed startup / cache-warmup stalls for replacement servers.
//! Plans mix timed faults with probabilistic ones;
//! [`FaultPlan::compile`] expands both into one deterministic,
//! time-sorted timeline from a seed, so the same `(plan, seed)` always
//! replays the same failure history.
//!
//! [`ChaosScenario`] runs a compiled plan against the request-level
//! cluster simulation (the Fig. 4(a) event loop), while
//! [`crate::runner::run_full_stack`] accepts a plan through
//! [`crate::runner::RunnerConfig`] for interval-granular injections
//! (price shocks need a live market). Both paths drive an
//! [`InvariantChecker`] every tick: requests are conserved
//! (`arrived = served + dropped + in-flight`), no request is ever
//! routed to a `Down` backend, and drain deadlines are honored.

use spotweb_lb::{BackendState, LoadBalancer, LoadBalancerConfig, RouteOutcome};
use spotweb_telemetry::json::{json_f64, json_string};
use spotweb_telemetry::{names, TelemetrySink, TraceEvent};

use crate::engine::{Event, EventQueue};
use crate::metrics::{BucketStats, LatencyRecorder};
use crate::rng::{stream_id, CounterStream, DOMAIN_FAULT_COIN, DOMAIN_SCENARIO_GAP};
use crate::scenario::ServerSpec;
use crate::service::ServiceModel;

/// One kind of injected failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Revoke every serving (or booting) server in the listed markets
    /// at once — the paper's correlated capacity-loss event.
    /// `warning_secs` overrides the scenario's default warning window
    /// for this event only; `Some(0.0)` models a no-warning kill.
    CorrelatedRevocation {
        /// Markets whose servers are revoked.
        markets: Vec<usize>,
        /// Per-event warning override (`None` = scenario default).
        warning_secs: Option<f64>,
    },
    /// One backend falls out of the cluster for `down_secs` (crash,
    /// network partition, wedged health check), then returns cold.
    /// In [`ChaosScenario`] `target` is a backend id; in
    /// [`crate::runner::run_full_stack`] it is a market index (the
    /// first alive server of that market flaps).
    BackendFlap {
        /// Backend id (cluster scenarios) or market id (full stack).
        target: usize,
        /// Outage length in seconds.
        down_secs: f64,
    },
    /// Spot prices in `market` (all spot markets when `None`) jump by
    /// `multiplier` and the surge regime is pinned for
    /// `hold_intervals` market steps. Only meaningful in full-stack
    /// runs, where a live [`spotweb_market::CloudSim`] quotes prices;
    /// [`ChaosScenario`] ignores it (its cluster has no market).
    PriceShock {
        /// Shocked market (`None` = every spot market).
        market: Option<usize>,
        /// Price multiplier (> 1 spikes, < 1 crashes).
        multiplier: f64,
        /// Market steps the injected regime is pinned for.
        hold_intervals: u32,
    },
    /// From this point on, newly provisioned servers take `extra_secs`
    /// longer to boot (capacity crunch at the provider).
    StartupDelay {
        /// Additional boot time in seconds.
        extra_secs: f64,
    },
    /// From this point on, newly provisioned servers take `extra_secs`
    /// longer to warm their caches (cold upstream data tier).
    WarmupStall {
        /// Additional warm-up time in seconds.
        extra_secs: f64,
    },
}

/// A fault that fires at a known time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// When the fault fires (seconds into the run).
    pub at_secs: f64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A fault that *may* fire: a Bernoulli coin is tossed every
/// `every_secs` across the run; each success schedules one copy of
/// `kind` at that toss time. [`FaultPlan::compile`] resolves the coins
/// deterministically from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomFault {
    /// Per-toss firing probability.
    pub probability: f64,
    /// Toss spacing in seconds.
    pub every_secs: f64,
    /// The fault template scheduled on success.
    pub kind: FaultKind,
}

/// A scriptable fault plan: timed plus probabilistic injections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Faults with fixed firing times.
    pub timed: Vec<FaultSpec>,
    /// Faults fired by seeded Bernoulli coins.
    pub random: Vec<RandomFault>,
}

impl FaultPlan {
    /// An empty plan (nothing goes wrong).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: add a fault firing at `at_secs`.
    pub fn at(mut self, at_secs: f64, kind: FaultKind) -> Self {
        assert!(at_secs.is_finite() && at_secs >= 0.0);
        self.timed.push(FaultSpec { at_secs, kind });
        self
    }

    /// Builder: add a probabilistic fault (see [`RandomFault`]).
    pub fn random(mut self, probability: f64, every_secs: f64, kind: FaultKind) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability in [0,1]");
        assert!(every_secs > 0.0 && every_secs.is_finite());
        self.random.push(RandomFault {
            probability,
            every_secs,
            kind,
        });
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.timed.is_empty() && self.random.is_empty()
    }

    /// Expand the plan into a deterministic timeline over
    /// `[0, duration_secs)`: timed faults verbatim, plus one resolved
    /// coin toss per window for each probabilistic fault, all drawn
    /// from dedicated counter-RNG streams of `seed` (one stream per
    /// probabilistic fault, counter = firing-window ordinal — see
    /// `crate::rng`). The result is sorted by firing time (stable —
    /// ties keep declaration order), so the same
    /// `(plan, seed, duration)` always yields the same failures.
    pub fn compile(&self, seed: u64, duration_secs: f64) -> Vec<FaultSpec> {
        let mut timeline: Vec<FaultSpec> = self
            .timed
            .iter()
            .filter(|f| f.at_secs < duration_secs)
            .cloned()
            .collect();
        // Dedicated sub-streams: the fault coins never perturb the
        // arrival process draws (same seed, disjoint stream domain).
        for (rf_index, rf) in self.random.iter().enumerate() {
            let coins = CounterStream::new(seed, stream_id(DOMAIN_FAULT_COIN, rf_index as u64));
            let mut t = rf.every_secs;
            let mut window: u64 = 0;
            while t < duration_secs {
                if coins.unit_f64_at(window) < rf.probability {
                    timeline.push(FaultSpec {
                        at_secs: t,
                        kind: rf.kind.clone(),
                    });
                }
                t += rf.every_secs;
                window += 1;
            }
        }
        timeline.sort_by(|a, b| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .expect("finite fault times")
        });
        timeline
    }
}

/// Cap on recorded violation messages (counts keep accumulating).
const MAX_RECORDED_VIOLATIONS: usize = 16;

/// Checks the simulator's conservation and routing-safety laws.
///
/// The harness reports every request event to the checker, which keeps
/// its own ledger independent of the balancer's counters:
///
/// * **conservation** — `arrived = served + dropped + in-flight` at
///   every tick, with `in-flight = 0` once the run drains;
/// * **ledger agreement** — the balancer's own `routed + dropped`
///   stats must match the arrivals the harness fed it;
/// * **routing safety** — no request is ever routed to a `Down`
///   backend, to a draining backend at/past its drain deadline, or to
///   a booting backend before it is ready.
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    /// Requests that entered the system.
    pub arrived: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests dropped (at admission or killed in flight).
    pub dropped: u64,
    in_flight: i64,
    violation_count: u64,
    violations: Vec<String>,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    fn violate(&mut self, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    /// A request arrived at the balancer.
    pub fn on_arrival(&mut self) {
        self.arrived += 1;
    }

    /// A request was routed to `backend`; validates routing safety
    /// against the backend's current state.
    pub fn on_route(&mut self, lb: &LoadBalancer, backend: usize, now: f64) {
        self.in_flight += 1;
        let Some(b) = lb.backend(backend) else {
            // A retired backend is deader than Down: routing to it is
            // impossible by construction, so treat it as the same
            // violation if it ever happens.
            // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
            self.violate(format!("t={now:.3}: routed to retired backend {backend}"));
            return;
        };
        match b.state {
            BackendState::Down => {
                // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
                self.violate(format!("t={now:.3}: routed to down backend {backend}"));
            }
            BackendState::Draining { deadline } if now >= deadline => {
                self.violate(format!(
                    // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
                    "t={now:.3}: routed to backend {backend} past drain deadline {deadline:.3}"
                ));
            }
            BackendState::Starting { ready_at } if now < ready_at => {
                self.violate(format!(
                    // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
                    "t={now:.3}: routed to backend {backend} before ready_at {ready_at:.3}"
                ));
            }
            _ => {}
        }
    }

    /// A routed request completed successfully.
    pub fn on_served(&mut self) {
        self.served += 1;
        self.in_flight -= 1;
    }

    /// A request was rejected at admission (never routed).
    pub fn on_dropped_at_admission(&mut self) {
        self.dropped += 1;
    }

    /// A routed request died in flight (its server was killed).
    pub fn on_dropped_in_flight(&mut self) {
        self.dropped += 1;
        self.in_flight -= 1;
    }

    /// Requests currently in flight according to the checker's ledger.
    pub fn in_flight(&self) -> i64 {
        self.in_flight
    }

    /// Run the per-tick checks: ledger conservation and agreement with
    /// the balancer's counters.
    pub fn check_tick(&mut self, lb: &LoadBalancer, now: f64) {
        if self.in_flight < 0 {
            // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
            self.violate(format!("t={now:.3}: negative in-flight {}", self.in_flight));
        }
        let accounted = self.served + self.dropped + self.in_flight.max(0) as u64;
        if self.arrived != accounted {
            self.violate(format!(
                // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
                "t={now:.3}: conservation broken: arrived {} != served {} + dropped {} + in-flight {}",
                self.arrived, self.served, self.dropped, self.in_flight
            ));
        }
        let stats = lb.stats();
        if stats.routed + stats.dropped != self.arrived {
            self.violate(format!(
                // spotweb-lint: allow(no-float-display-in-renderers) -- fixed-precision diagnostic, deterministic and golden-locked
                "t={now:.3}: balancer ledger disagrees: routed {} + dropped {} != arrived {}",
                stats.routed, stats.dropped, self.arrived
            ));
        }
    }

    /// Final check once the event queue drains: nothing may remain in
    /// flight.
    pub fn check_drained(&mut self) {
        if self.in_flight != 0 {
            self.violate(format!(
                "run drained with {} requests still in flight",
                self.in_flight
            ));
        }
    }

    /// Recorded violation messages (capped; see
    /// [`InvariantChecker::violation_count`]).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total violations observed, including ones past the message cap.
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }
}

/// When replacements for lost servers are provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// At the revocation warning (the transiency-aware reaction).
    OnWarning,
    /// Once the server actually dies (vanilla health-check reaction).
    OnDeath,
    /// Never — lost capacity stays lost.
    None,
}

/// A fault-scripted cluster scenario: the Fig. 4(a) event loop driven
/// by a [`FaultPlan`] and audited by an [`InvariantChecker`].
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario label (propagated into the report / JSON).
    pub name: String,
    /// Initial cluster.
    pub servers: Vec<ServerSpec>,
    /// Poisson arrival rate (req/s).
    pub arrival_rps: f64,
    /// Total simulated time (seconds).
    pub duration_secs: f64,
    /// Default revocation warning (seconds); individual faults may
    /// override it.
    pub warning_secs: f64,
    /// Replacement VM startup time (seconds).
    pub startup_secs: f64,
    /// Cache warm-up window after startup (seconds).
    pub warmup_secs: f64,
    /// Base request service time (seconds).
    pub service_secs: f64,
    /// Transiency-aware (SpotWeb) or vanilla balancer.
    pub transiency_aware: bool,
    /// Replacement provisioning policy.
    pub replacement: Replacement,
    /// Distinct concurrent user sessions.
    pub sessions: u64,
    /// Metrics bucket width (seconds).
    pub bucket_secs: f64,
    /// RNG seed (arrival process and fault coins).
    pub seed: u64,
    /// What goes wrong.
    pub plan: FaultPlan,
    /// Telemetry sink threaded through the balancer and event queue
    /// (disabled by default). An enabled sink records fault
    /// injections, drains, deaths, restores, and replacement
    /// provisioning into one byte-stable trace.
    pub telemetry: TelemetrySink,
}

impl Default for ChaosScenario {
    fn default() -> Self {
        ChaosScenario {
            name: "custom".to_string(),
            // The Fig. 4(a) testbed cluster: 1120 rps capacity at
            // ~600 rps offered.
            servers: vec![
                ServerSpec {
                    market: 0,
                    capacity_rps: 80.0,
                },
                ServerSpec {
                    market: 0,
                    capacity_rps: 80.0,
                },
                ServerSpec {
                    market: 1,
                    capacity_rps: 160.0,
                },
                ServerSpec {
                    market: 1,
                    capacity_rps: 160.0,
                },
                ServerSpec {
                    market: 2,
                    capacity_rps: 320.0,
                },
                ServerSpec {
                    market: 2,
                    capacity_rps: 320.0,
                },
            ],
            arrival_rps: 600.0,
            duration_secs: 660.0,
            warning_secs: 120.0,
            startup_secs: 55.0,
            warmup_secs: 60.0,
            service_secs: 0.12,
            transiency_aware: true,
            replacement: Replacement::OnWarning,
            sessions: 2000,
            bucket_secs: 60.0,
            seed: 42,
            plan: FaultPlan::new(),
            telemetry: TelemetrySink::disabled(),
        }
    }
}

/// Named scenarios replayed by `figures chaos` and the regression
/// tests. See [`ChaosScenario::named`].
pub const NAMED_SCENARIOS: &[&str] = &[
    "revocation-storm",
    "revocation-storm-vanilla",
    "zero-warning",
    "backend-flaps",
    "slow-start-storm",
];

impl ChaosScenario {
    /// One of the [`NAMED_SCENARIOS`] (panics on an unknown name):
    ///
    /// * `revocation-storm` — correlated revocation of markets 1 and 2
    ///   (86% of capacity) one minute in, default 120 s warning, aware
    ///   balancer reprovisioning on the warning.
    /// * `revocation-storm-vanilla` — the same storm against a
    ///   transiency-oblivious balancer that never reprovisions.
    /// * `zero-warning` — the same correlated loss with *no* warning:
    ///   admission control must shed load until replacements warm up.
    /// * `backend-flaps` — repeated single-backend flaps (timed plus
    ///   probabilistic) with no revocations.
    /// * `slow-start-storm` — a storm whose replacements boot 245 s
    ///   late and warm 60 s slow (provider capacity crunch).
    pub fn named(name: &str) -> ChaosScenario {
        let base = ChaosScenario::default();
        match name {
            "revocation-storm" => ChaosScenario {
                name: name.to_string(),
                plan: FaultPlan::new().at(
                    60.0,
                    FaultKind::CorrelatedRevocation {
                        markets: vec![1, 2],
                        warning_secs: None,
                    },
                ),
                ..base
            },
            "revocation-storm-vanilla" => ChaosScenario {
                name: name.to_string(),
                transiency_aware: false,
                replacement: Replacement::None,
                plan: FaultPlan::new().at(
                    60.0,
                    FaultKind::CorrelatedRevocation {
                        markets: vec![1, 2],
                        warning_secs: None,
                    },
                ),
                ..base
            },
            "zero-warning" => ChaosScenario {
                name: name.to_string(),
                plan: FaultPlan::new().at(
                    120.0,
                    FaultKind::CorrelatedRevocation {
                        markets: vec![1, 2],
                        warning_secs: Some(0.0),
                    },
                ),
                ..base
            },
            "backend-flaps" => ChaosScenario {
                name: name.to_string(),
                plan: FaultPlan::new()
                    .at(
                        100.0,
                        FaultKind::BackendFlap {
                            target: 4,
                            down_secs: 45.0,
                        },
                    )
                    .at(
                        240.0,
                        FaultKind::BackendFlap {
                            target: 5,
                            down_secs: 45.0,
                        },
                    )
                    .random(
                        0.08,
                        30.0,
                        FaultKind::BackendFlap {
                            target: 2,
                            down_secs: 20.0,
                        },
                    ),
                ..base
            },
            "slow-start-storm" => ChaosScenario {
                name: name.to_string(),
                plan: FaultPlan::new()
                    .at(30.0, FaultKind::StartupDelay { extra_secs: 245.0 })
                    .at(30.0, FaultKind::WarmupStall { extra_secs: 60.0 })
                    .at(
                        60.0,
                        FaultKind::CorrelatedRevocation {
                            markets: vec![1, 2],
                            warning_secs: None,
                        },
                    ),
                ..base
            },
            other => panic!("unknown chaos scenario {other:?}; known: {NAMED_SCENARIOS:?}"),
        }
    }

    /// Run the scenario to completion.
    pub fn run(&self) -> ChaosReport {
        assert!(!self.servers.is_empty(), "need at least one server");
        assert!(self.arrival_rps > 0.0 && self.duration_secs > 0.0);

        let timeline = self.plan.compile(self.seed, self.duration_secs);
        // Counter-based gaps: gap `k` belongs to request `k`, so the
        // arrival process is draw-order-free (see `crate::rng`).
        let gaps = CounterStream::new(self.seed, stream_id(DOMAIN_SCENARIO_GAP, 0));
        let sink = self.telemetry.clone();
        let mut lb = LoadBalancer::new(LoadBalancerConfig {
            transiency_aware: self.transiency_aware,
            admission_control: true,
            max_utilization: 0.98,
            max_delay_secs: 2.0,
            service_secs: self.service_secs,
        });
        lb.set_telemetry(sink.clone());
        let mut services: Vec<ServiceModel> = Vec::new();
        // Latest death time of each backend slot (flapped backends may
        // resurrect; the completion handler needs the last death to
        // classify in-flight work that spans it).
        let mut death_time: Vec<Option<f64>> = Vec::new();
        for s in &self.servers {
            lb.add_backend_up(s.market, s.capacity_rps);
            services.push(ServiceModel::new(s.capacity_rps, self.service_secs, 0.0));
            death_time.push(None);
        }

        let mut queue = EventQueue::new();
        queue.set_telemetry(sink.clone());
        let mut recorder = LatencyRecorder::new(self.bucket_secs, self.duration_secs);
        let mut checker = InvariantChecker::new();
        let mut next_request: u64 = 0;
        let mut migrated: u64 = 0;
        let mut lost: u64 = 0;
        let mut warnings: u32 = 0;
        let mut deaths: u32 = 0;
        let mut flaps: u32 = 0;
        let mut faults_fired: usize = 0;
        // StartupDelay / WarmupStall accumulate into these.
        let mut extra_startup = 0.0;
        let mut extra_warmup = 0.0;

        let first = gaps.exp_at(0, self.arrival_rps);
        queue.schedule(
            first,
            Event::Arrival {
                request: 0,
                session: 0,
            },
        );
        next_request += 1;

        for (i, f) in timeline.iter().enumerate() {
            queue.schedule(f.at_secs, Event::FaultTrigger { fault: i });
        }

        while let Some((now, event)) = queue.pop() {
            sink.set_clock(now);
            match event {
                Event::Arrival { request, session } => {
                    lb.tick(now);
                    checker.on_arrival();
                    match lb.route(Some(session), now) {
                        RouteOutcome::Routed(b) => {
                            checker.on_route(&lb, b, now);
                            let done = services[b].admit(now);
                            queue.schedule(
                                done,
                                Event::Completion {
                                    request,
                                    backend: b,
                                    arrived: now,
                                },
                            );
                        }
                        RouteOutcome::Dropped => {
                            checker.on_dropped_at_admission();
                            recorder.record_drop(now);
                        }
                    }
                    checker.check_tick(&lb, now);
                    if request + 1 == next_request {
                        let t_next = now + gaps.exp_at(next_request, self.arrival_rps);
                        if t_next <= self.duration_secs {
                            let session = next_request % self.sessions;
                            queue.schedule(
                                t_next,
                                Event::Arrival {
                                    request: next_request,
                                    session,
                                },
                            );
                            next_request += 1;
                        }
                    }
                }
                Event::Completion {
                    request: _,
                    backend,
                    arrived,
                } => {
                    match death_time[backend] {
                        // The server died while this request was in
                        // flight (admitted before the death, finishing
                        // after — a restore in between does not save
                        // it).
                        Some(d) if d < now && d >= arrived => {
                            recorder.record_drop(arrived);
                            checker.on_dropped_in_flight();
                            sink.count(names::REQUESTS_KILLED_IN_FLIGHT_TOTAL, 1);
                        }
                        _ => {
                            recorder.record(arrived, now - arrived);
                            lb.complete(backend, None);
                            checker.on_served();
                            sink.count(names::REQUESTS_SERVED_TOTAL, 1);
                            sink.observe(names::REQUEST_LATENCY_SECONDS, now - arrived);
                        }
                    }
                }
                Event::RevocationWarning {
                    backend,
                    warning_secs,
                } => {
                    warnings += 1;
                    let report = lb.revocation_warning(backend, now, warning_secs);
                    migrated += report.migrated_sessions as u64;
                    queue.schedule(now + warning_secs, Event::ServerDeath { backend });
                    if self.replacement == Replacement::OnWarning {
                        self.spawn_replacement(
                            backend,
                            now,
                            extra_startup,
                            extra_warmup,
                            &mut lb,
                            &mut services,
                            &mut death_time,
                            &mut queue,
                        );
                    }
                }
                Event::ServerDeath { backend } => {
                    deaths += 1;
                    lost += lb.server_died(backend, now) as u64;
                    death_time[backend] = Some(now);
                    services[backend].kill(now);
                    if self.replacement == Replacement::OnDeath {
                        self.spawn_replacement(
                            backend,
                            now,
                            extra_startup,
                            extra_warmup,
                            &mut lb,
                            &mut services,
                            &mut death_time,
                            &mut queue,
                        );
                    }
                }
                Event::ServerReady { backend } => {
                    lb.tick(now);
                    let _ = backend;
                }
                Event::BackendRestore { backend } => {
                    lb.restore_backend(backend, now, self.warmup_secs + extra_warmup);
                    services[backend] = ServiceModel::new(
                        lb.backends()[backend].capacity_rps,
                        self.service_secs,
                        now + self.warmup_secs + extra_warmup,
                    );
                }
                Event::FaultTrigger { fault } => {
                    faults_fired += 1;
                    if sink.is_enabled() {
                        let (kind, detail) = match &timeline[fault].kind {
                            FaultKind::CorrelatedRevocation {
                                markets,
                                warning_secs,
                            } => (
                                "correlated_revocation",
                                match warning_secs {
                                    // spotweb-lint: allow(no-float-display-in-renderers) -- debug list rendering in a golden-locked trace detail
                                    Some(w) => format!("markets {markets:?} warning {w}s"),
                                    // spotweb-lint: allow(no-float-display-in-renderers) -- debug list rendering in a golden-locked trace detail
                                    None => format!("markets {markets:?} default warning"),
                                },
                            ),
                            FaultKind::BackendFlap { target, down_secs } => (
                                "backend_flap",
                                format!("backend {target} down {down_secs}s"),
                            ),
                            FaultKind::PriceShock { .. } => {
                                ("price_shock", "ignored (no market in cluster)".to_string())
                            }
                            FaultKind::StartupDelay { extra_secs } => {
                                ("startup_delay", format!("+{extra_secs}s boot"))
                            }
                            FaultKind::WarmupStall { extra_secs } => {
                                ("warmup_stall", format!("+{extra_secs}s warmup"))
                            }
                        };
                        sink.emit_at(
                            now,
                            TraceEvent::FaultInjected {
                                fault: kind.to_string(),
                                detail,
                            },
                        );
                    }
                    match &timeline[fault].kind {
                        FaultKind::CorrelatedRevocation {
                            markets,
                            warning_secs,
                        } => {
                            let w = warning_secs.unwrap_or(self.warning_secs);
                            let victims: Vec<usize> = lb
                                .backends()
                                .iter()
                                .filter(|b| {
                                    markets.contains(&b.market)
                                        && matches!(
                                            b.state,
                                            BackendState::Up | BackendState::Starting { .. }
                                        )
                                })
                                .map(|b| b.id)
                                .collect();
                            for id in victims {
                                queue.schedule(
                                    now,
                                    Event::RevocationWarning {
                                        backend: id,
                                        warning_secs: w,
                                    },
                                );
                            }
                        }
                        FaultKind::BackendFlap { target, down_secs } => {
                            let id = *target;
                            let flappable = id < lb.backends().len()
                                && matches!(
                                    lb.backends()[id].state,
                                    BackendState::Up | BackendState::Starting { .. }
                                );
                            if flappable {
                                flaps += 1;
                                lost += lb.server_died(id, now) as u64;
                                death_time[id] = Some(now);
                                services[id].kill(now);
                                queue.schedule(
                                    now + down_secs,
                                    Event::BackendRestore { backend: id },
                                );
                            }
                        }
                        FaultKind::StartupDelay { extra_secs } => {
                            extra_startup += extra_secs;
                        }
                        FaultKind::WarmupStall { extra_secs } => {
                            extra_warmup += extra_secs;
                        }
                        // No market in the cluster scenario; the
                        // full-stack runner applies price shocks.
                        FaultKind::PriceShock { .. } => {}
                    }
                }
            }
        }

        checker.check_drained();
        let (served, dropped) = recorder.totals();
        ChaosReport {
            scenario: self.name.clone(),
            seed: self.seed,
            transiency_aware: self.transiency_aware,
            served,
            dropped,
            drop_fraction: recorder.drop_fraction(),
            p50: recorder.overall_percentile(50.0),
            p90: recorder.overall_percentile(90.0),
            p99: recorder.overall_percentile(99.0),
            migrated_sessions: migrated,
            lost_sessions: lost,
            admission_rejections: lb.stats().admission_rejections,
            revocation_warnings: warnings,
            server_deaths: deaths,
            backend_flaps: flaps,
            faults_fired,
            invariant_violations: checker.violations().to_vec(),
            invariant_violation_count: checker.violation_count(),
            buckets: recorder.all_stats(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_replacement(
        &self,
        dying: usize,
        now: f64,
        extra_startup: f64,
        extra_warmup: f64,
        lb: &mut LoadBalancer,
        services: &mut Vec<ServiceModel>,
        death_time: &mut Vec<Option<f64>>,
        queue: &mut EventQueue,
    ) {
        let market = lb.backends()[dying].market;
        let capacity = lb.backends()[dying].capacity_rps;
        let startup = self.startup_secs + extra_startup;
        let warmup = self.warmup_secs + extra_warmup;
        let id = lb.add_backend(market, capacity, now, startup, warmup);
        self.telemetry.emit_at(
            now,
            TraceEvent::ReplacementStarted {
                replaces: dying,
                backend: id,
                market,
                ready_at: now + startup + warmup,
            },
        );
        services.push(ServiceModel::new(
            capacity,
            self.service_secs,
            now + startup + warmup,
        ));
        death_time.push(None);
        queue.schedule(now + startup, Event::ServerReady { backend: id });
    }
}

/// Result of a chaos run, including the invariant audit.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario label.
    pub scenario: String,
    /// Seed the run (arrivals + fault coins) was driven by.
    pub seed: u64,
    /// Balancer mode the scenario ran with.
    pub transiency_aware: bool,
    /// Requests served.
    pub served: usize,
    /// Requests dropped.
    pub dropped: u64,
    /// Overall drop fraction.
    pub drop_fraction: f64,
    /// Overall median latency (seconds).
    pub p50: f64,
    /// Overall p90 latency (seconds).
    pub p90: f64,
    /// Overall p99 latency (seconds).
    pub p99: f64,
    /// Sessions migrated by warnings.
    pub migrated_sessions: u64,
    /// Sessions lost to abrupt deaths.
    pub lost_sessions: u64,
    /// Requests rejected by overload admission control (a subset of
    /// `dropped`; distinguishes deliberate shedding from no-capacity
    /// drops).
    pub admission_rejections: u64,
    /// Revocation warnings delivered.
    pub revocation_warnings: u32,
    /// Servers that actually died.
    pub server_deaths: u32,
    /// Backend flaps injected.
    pub backend_flaps: u32,
    /// Compiled faults that fired.
    pub faults_fired: usize,
    /// Recorded invariant violations (capped at 16 messages).
    pub invariant_violations: Vec<String>,
    /// Total violations observed (including past the cap).
    pub invariant_violation_count: u64,
    /// Per-bucket latency stats.
    pub buckets: Vec<BucketStats>,
}

impl ChaosReport {
    /// `true` when every invariant held for the whole run.
    pub fn invariants_ok(&self) -> bool {
        self.invariant_violation_count == 0
    }

    /// Stable, hand-rendered pretty JSON: key order is fixed, floats
    /// use Rust's shortest round-trip formatting, and non-finite
    /// values render as `null` — so byte-identical output is exactly
    /// run determinism.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": {},\n",
            json_string(&self.scenario)
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"transiency_aware\": {},\n",
            self.transiency_aware
        ));
        out.push_str(&format!("  \"served\": {},\n", self.served));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str(&format!(
            "  \"drop_fraction\": {},\n",
            json_f64(self.drop_fraction)
        ));
        out.push_str(&format!("  \"p50\": {},\n", json_f64(self.p50)));
        out.push_str(&format!("  \"p90\": {},\n", json_f64(self.p90)));
        out.push_str(&format!("  \"p99\": {},\n", json_f64(self.p99)));
        out.push_str(&format!(
            "  \"migrated_sessions\": {},\n",
            self.migrated_sessions
        ));
        out.push_str(&format!("  \"lost_sessions\": {},\n", self.lost_sessions));
        out.push_str(&format!(
            "  \"admission_rejections\": {},\n",
            self.admission_rejections
        ));
        out.push_str(&format!(
            "  \"revocation_warnings\": {},\n",
            self.revocation_warnings
        ));
        out.push_str(&format!("  \"server_deaths\": {},\n", self.server_deaths));
        out.push_str(&format!("  \"backend_flaps\": {},\n", self.backend_flaps));
        out.push_str(&format!("  \"faults_fired\": {},\n", self.faults_fired));
        out.push_str(&format!("  \"invariants_ok\": {},\n", self.invariants_ok()));
        out.push_str("  \"invariant_violations\": [");
        for (i, v) in self.invariant_violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(v));
        }
        out.push_str("],\n");
        out.push_str("  \"buckets\": [\n");
        for (i, b) in self.buckets.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"start\": {}, \"count\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"dropped\": {}}}{}\n",
                json_f64(b.start),
                b.count,
                json_f64(b.mean),
                json_f64(b.p50),
                json_f64(b.p90),
                json_f64(b.p99),
                b.dropped,
                if i + 1 < self.buckets.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_deterministic_and_sorted() {
        let plan = FaultPlan::new()
            .at(200.0, FaultKind::StartupDelay { extra_secs: 10.0 })
            .at(50.0, FaultKind::WarmupStall { extra_secs: 5.0 })
            .random(
                0.5,
                25.0,
                FaultKind::BackendFlap {
                    target: 0,
                    down_secs: 10.0,
                },
            );
        let a = plan.compile(7, 300.0);
        let b = plan.compile(7, 300.0);
        assert_eq!(a, b, "same (plan, seed) must compile identically");
        assert!(a.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        assert!(a.len() > 2, "coins at p=0.5 over 11 windows should fire");
        let c = plan.compile(8, 300.0);
        assert_ne!(a, c, "different seeds resolve different coins");
    }

    #[test]
    fn compile_drops_timed_faults_past_horizon() {
        let plan = FaultPlan::new().at(500.0, FaultKind::StartupDelay { extra_secs: 1.0 });
        assert!(plan.compile(1, 300.0).is_empty());
    }

    #[test]
    fn checker_flags_down_routing() {
        let mut lb = LoadBalancer::new(LoadBalancerConfig::default());
        let b = lb.add_backend_up(0, 100.0);
        lb.server_died(b, 1.0);
        let mut checker = InvariantChecker::new();
        checker.on_arrival();
        checker.on_route(&lb, b, 2.0);
        assert!(!checker.ok());
        assert!(checker.violations()[0].contains("down backend"));
    }

    #[test]
    fn checker_flags_conservation_breaks() {
        let lb = LoadBalancer::new(LoadBalancerConfig::default());
        let mut checker = InvariantChecker::new();
        checker.on_arrival();
        checker.on_served(); // served without ever being routed
        checker.check_tick(&lb, 1.0);
        assert!(!checker.ok());
    }

    fn small(plan: FaultPlan) -> ChaosScenario {
        ChaosScenario {
            servers: vec![
                ServerSpec {
                    market: 0,
                    capacity_rps: 100.0,
                },
                ServerSpec {
                    market: 1,
                    capacity_rps: 100.0,
                },
            ],
            arrival_rps: 120.0,
            duration_secs: 240.0,
            sessions: 200,
            seed: 9,
            plan,
            ..ChaosScenario::default()
        }
    }

    #[test]
    fn quiet_plan_serves_everything_cleanly() {
        let report = small(FaultPlan::new()).run();
        assert_eq!(report.dropped, 0, "no faults, no drops");
        assert_eq!(report.faults_fired, 0);
        assert!(report.invariants_ok(), "{:?}", report.invariant_violations);
        assert!(report.p99 < 1.0, "p99 {}", report.p99);
    }

    #[test]
    fn flap_drops_then_recovers() {
        let plan = FaultPlan::new().at(
            60.0,
            FaultKind::BackendFlap {
                target: 1,
                down_secs: 30.0,
            },
        );
        let report = small(plan).run();
        assert_eq!(report.backend_flaps, 1);
        assert!(report.dropped > 0, "in-flight work dies at the flap");
        assert!(report.invariants_ok(), "{:?}", report.invariant_violations);
        // The last minute is clean again: the backend came back.
        let last = report.buckets.last().unwrap();
        assert_eq!(last.dropped, 0, "flap must heal: {last:?}");
        assert!(last.count > 0);
    }

    #[test]
    fn zero_warning_is_harsher_than_warned() {
        let storm = |warning: Option<f64>| {
            let plan = FaultPlan::new().at(
                60.0,
                FaultKind::CorrelatedRevocation {
                    markets: vec![1],
                    warning_secs: warning,
                },
            );
            small(plan).run()
        };
        let warned = storm(None);
        let unwarned = storm(Some(0.0));
        assert!(warned.invariants_ok());
        assert!(unwarned.invariants_ok());
        assert!(
            unwarned.dropped > warned.dropped,
            "no warning must hurt more: {} vs {}",
            unwarned.dropped,
            warned.dropped
        );
    }

    #[test]
    fn chaos_run_traces_faults_drains_and_replacements() {
        let sink = TelemetrySink::enabled();
        let mut scenario = small(FaultPlan::new().at(
            60.0,
            FaultKind::CorrelatedRevocation {
                markets: vec![1],
                warning_secs: None,
            },
        ));
        scenario.telemetry = sink.clone();
        let report = scenario.run();
        assert!(report.invariants_ok());
        let kinds: Vec<&str> = sink.events().iter().map(|e| e.event.kind()).collect();
        for expected in [
            "fault_injected",
            "drain",
            "backend_death",
            "replacement_started",
        ] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
        assert!(sink.counter("spotweb_sim_events_processed_total") > 0);
        assert_eq!(
            report.admission_rejections,
            sink.counter("spotweb_lb_admission_rejections_total"),
            "report and metrics registry must agree"
        );
    }

    #[test]
    fn named_scenarios_all_construct() {
        for name in NAMED_SCENARIOS {
            let s = ChaosScenario::named(name);
            assert_eq!(&s.name, name);
            assert!(!s.plan.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown chaos scenario")]
    fn unknown_scenario_panics() {
        let _ = ChaosScenario::named("kernel-panic");
    }

    #[test]
    fn report_json_is_byte_stable() {
        let a = small(FaultPlan::new().at(
            60.0,
            FaultKind::BackendFlap {
                target: 0,
                down_secs: 20.0,
            },
        ))
        .run();
        let b = small(FaultPlan::new().at(
            60.0,
            FaultKind::BackendFlap {
                target: 0,
                down_secs: 20.0,
            },
        ))
        .run();
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        assert!(a.to_json_pretty().starts_with("{\n  \"scenario\""));
    }
}
