//! Property tests on the discrete-event substrate: the service queue's
//! work-conservation laws, the event queue's ordering guarantees, and
//! the fault-injection harness's conservation invariants under
//! arbitrary fault plans.

use proptest::prelude::*;
use spotweb_sim::engine::{Event, EventQueue};
use spotweb_sim::scenario::ServerSpec;
use spotweb_sim::service::ServiceModel;
use spotweb_sim::{ChaosScenario, FaultKind, FaultPlan};

/// Decode a generated `(time, kind, knob)` triple into a fault. The
/// knob picks targets/durations so shrinking stays meaningful.
fn decode_fault(time: f64, kind: u8, knob: f64) -> (f64, FaultKind) {
    let fault = match kind % 5 {
        0 => FaultKind::CorrelatedRevocation {
            markets: vec![(knob as usize) % 2],
            warning_secs: None,
        },
        1 => FaultKind::CorrelatedRevocation {
            markets: vec![0, 1],
            warning_secs: Some(knob.clamp(0.0, 30.0)),
        },
        2 => FaultKind::BackendFlap {
            target: (knob as usize) % 2,
            down_secs: 5.0 + knob.clamp(0.0, 35.0),
        },
        3 => FaultKind::StartupDelay {
            extra_secs: knob.clamp(0.0, 30.0),
        },
        _ => FaultKind::WarmupStall {
            extra_secs: knob.clamp(0.0, 30.0),
        },
    };
    (time, fault)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Completions never precede their admissions plus the minimum
    /// service time, and admissions at the same server never finish
    /// out of order (FIFO).
    #[test]
    fn service_model_fifo_and_causal(
        arrivals in prop::collection::vec(0.0f64..100.0, 1..100),
        capacity in 5.0f64..200.0,
        service in 0.01f64..0.5,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut s = ServiceModel::new(capacity, service, 0.0);
        let mut last_done = 0.0;
        for &t in &sorted {
            let done = s.admit(t);
            prop_assert!(done >= t + service - 1e-9, "done {done} before {t}+service");
            prop_assert!(done + 1e-9 >= last_done, "FIFO violated: {done} < {last_done}");
            last_done = done;
        }
    }

    /// Under sustained load below capacity, waiting time stays bounded
    /// by a few service times.
    #[test]
    fn underload_has_bounded_wait(
        capacity in 20.0f64..200.0,
        service in 0.05f64..0.2,
        load_factor in 0.1f64..0.7,
    ) {
        let mut s = ServiceModel::new(capacity, service, 0.0);
        let rate = capacity * load_factor;
        let n = 2000;
        let mut worst: f64 = 0.0;
        for k in 0..n {
            let t = k as f64 / rate;
            worst = worst.max(s.admit(t) - t);
        }
        prop_assert!(
            worst <= 3.0 * service + 1e-9,
            "worst wait {worst} vs service {service} at load {load_factor}"
        );
    }

    /// kill() accounts exactly for the in-flight population. Time is
    /// monotone: the kill happens at or after the last admission, as in
    /// the simulator.
    #[test]
    fn kill_counts_in_flight(
        arrivals in prop::collection::vec(0.0f64..10.0, 1..50),
        kill_delay in 0.0f64..5.0,
    ) {
        let mut s = ServiceModel::new(10.0, 1.0, 0.0);
        let mut done_times = Vec::new();
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &t in &sorted {
            done_times.push(s.admit(t));
        }
        let kill_at = sorted.last().unwrap() + kill_delay;
        let in_flight_at_kill = done_times.iter().filter(|d| **d > kill_at).count();
        prop_assert_eq!(s.kill(kill_at), in_flight_at_kill);
    }

    /// Conservation holds under *arbitrary* fault plans: however the
    /// cluster is revoked, flapped, or stalled, every request is
    /// accounted as served or dropped, nothing routes to a dead
    /// backend, and the run is reproducible from its seed.
    #[test]
    fn chaos_conserves_requests_under_arbitrary_plans(
        faults in prop::collection::vec(
            (20.0f64..200.0, 0u8..5, 0.0f64..40.0),
            0..6,
        ),
        seed in 0u64..1000,
    ) {
        let mut plan = FaultPlan::new();
        for &(time, kind, knob) in &faults {
            let (at, fault) = decode_fault(time, kind, knob);
            plan = plan.at(at, fault);
        }
        let scenario = ChaosScenario {
            servers: vec![
                ServerSpec { market: 0, capacity_rps: 100.0 },
                ServerSpec { market: 1, capacity_rps: 100.0 },
            ],
            arrival_rps: 110.0,
            duration_secs: 220.0,
            sessions: 100,
            seed,
            plan: plan.clone(),
            ..ChaosScenario::default()
        };
        let report = scenario.run();
        prop_assert!(
            report.invariants_ok(),
            "violations under plan {:?}: {:?}",
            plan,
            report.invariant_violations
        );
        prop_assert!(report.served > 0, "nothing served under {:?}", plan);
        // Reproducibility: the identical scenario replays byte-equal.
        let again = ChaosScenario {
            servers: vec![
                ServerSpec { market: 0, capacity_rps: 100.0 },
                ServerSpec { market: 1, capacity_rps: 100.0 },
            ],
            arrival_rps: 110.0,
            duration_secs: 220.0,
            sessions: 100,
            seed,
            plan,
            ..ChaosScenario::default()
        };
        prop_assert_eq!(report.to_json_pretty(), again.run().to_json_pretty());
    }

    /// The event queue is a total order: pops are non-decreasing in
    /// time and FIFO within a timestamp.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0.0f64..1000.0, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, Event::Arrival { request: i as u64, session: 0 });
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut seen_at_t: Vec<u64> = Vec::new();
        while let Some((t, e)) = q.pop() {
            prop_assert!(t >= last_t);
            let id = match e {
                Event::Arrival { request, .. } => request,
                _ => unreachable!(),
            };
            if t == last_t {
                if let Some(&prev) = seen_at_t.last() {
                    prop_assert!(id > prev, "FIFO within timestamp violated");
                }
                seen_at_t.push(id);
            } else {
                seen_at_t.clear();
                seen_at_t.push(id);
            }
            last_t = t;
        }
    }
}
