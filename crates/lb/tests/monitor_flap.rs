//! Monitor coverage under flap/restore cycles (ISSUE 2 satellite):
//! drive a [`MonitorWindow`] the way the simulator does — served
//! requests and drops fed from routing outcomes — through two
//! down/restore cycles of the only backend, and check the utilisation
//! and rate reporting at every phase.

use spotweb_lb::{
    LoadBalancer, LoadBalancerConfig, MonitorWindow, RouteOutcome, TelemetrySink, TraceEvent,
};

const SERVICE_SECS: f64 = 0.05;

/// Offer requests at 10 req/s for `[from, to)`, routing each and
/// feeding the monitor with the outcome, exactly like `sim::runner`.
fn offer(lb: &mut LoadBalancer, monitor: &mut MonitorWindow, from: f64, to: f64) {
    let mut t = from;
    while t < to {
        match lb.route(None, t) {
            RouteOutcome::Routed(b) => {
                monitor.record_served(t, SERVICE_SECS);
                lb.complete(b, None);
            }
            RouteOutcome::Dropped => monitor.record_dropped(t),
        }
        t += 0.1;
    }
}

#[test]
fn monitor_tracks_flap_and_restore_cycles() {
    let mut lb = LoadBalancer::new(LoadBalancerConfig {
        admission_control: false,
        service_secs: SERVICE_SECS,
        ..LoadBalancerConfig::default()
    });
    let sink = TelemetrySink::enabled();
    lb.set_telemetry(sink.clone());
    let backend = lb.add_backend_up(0, 100.0);
    let mut monitor = MonitorWindow::new(10.0);

    for cycle in 0..2 {
        let base = cycle as f64 * 30.0;

        // Healthy phase: everything served, no drops.
        offer(&mut lb, &mut monitor, base, base + 10.0);
        let healthy = monitor.snapshot(base + 10.0);
        assert_eq!(healthy.drop_rate, 0.0, "cycle {cycle}: healthy phase");
        assert!((healthy.arrival_rate - 10.0).abs() < 0.5);
        assert!((healthy.throughput - healthy.arrival_rate).abs() < 1e-9);
        assert!((healthy.mean_latency - SERVICE_SECS).abs() < 1e-12);

        // Flap: the only backend dies; every request in the window
        // after the death is a drop.
        lb.server_died(backend, base + 10.0);
        offer(&mut lb, &mut monitor, base + 10.0, base + 20.0);
        let down = monitor.snapshot(base + 20.0);
        assert!(
            down.drop_rate > 0.95,
            "cycle {cycle}: downtime drop rate {}",
            down.drop_rate
        );
        assert_eq!(down.throughput, 0.0, "cycle {cycle}: nothing served");
        assert!(down.arrival_rate > 9.0, "arrivals keep coming");

        // Restore with a warm-up: service resumes immediately (reduced
        // capacity while warming), the window flushes the drops out.
        lb.restore_backend(backend, base + 20.0, 5.0);
        assert!(lb.backends()[backend].accepts_new(base + 20.0));
        assert!(
            lb.backends()[backend].effective_capacity(base + 22.0) < 100.0,
            "warming backend reports reduced capacity"
        );
        offer(&mut lb, &mut monitor, base + 20.0, base + 30.0);
        let restored = monitor.snapshot(base + 30.0);
        assert_eq!(restored.drop_rate, 0.0, "cycle {cycle}: recovered");
        assert!((restored.throughput - 10.0).abs() < 0.5);
        assert_eq!(
            lb.backends()[backend].effective_capacity(base + 30.0),
            100.0,
            "fully warm after the warm-up window"
        );
    }

    // Both cycles were traced: two deaths, two restores, in order.
    let events = sink.events();
    let deaths = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::BackendDeath { .. }))
        .count();
    let restores = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::BackendRestore { .. }))
        .count();
    assert_eq!(deaths, 2);
    assert_eq!(restores, 2);
}

/// The monitor's utilisation inputs (throughput vs. capacity) reflect
/// the warm-up ramp after a restore: with the same offered load, a
/// warming backend runs at higher utilisation than a warm one.
#[test]
fn warming_backend_reports_higher_utilization() {
    let mut lb = LoadBalancer::new(LoadBalancerConfig {
        admission_control: false,
        service_secs: SERVICE_SECS,
        ..LoadBalancerConfig::default()
    });
    let backend = lb.add_backend_up(0, 100.0);
    lb.server_died(backend, 10.0);
    lb.restore_backend(backend, 20.0, 10.0);
    lb.backend_mut(backend).in_flight = 3;
    let warming = lb.backends()[backend].utilization(21.0, SERVICE_SECS);
    let warm = lb.backends()[backend].utilization(31.0, SERVICE_SECS);
    assert!(
        warming > warm,
        "warming utilisation {warming} must exceed warm {warm}"
    );
    assert!(warm > 0.0);
}
