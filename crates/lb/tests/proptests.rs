//! Property tests on the load balancer: routing proportionality,
//! in-flight accounting, and failover invariants across randomized
//! cluster shapes.

use proptest::prelude::*;
use spotweb_lb::{LoadBalancer, LoadBalancerConfig, RouteOutcome};

fn balancer(capacities: &[f64], aware: bool, admission: bool) -> LoadBalancer {
    let mut lb = LoadBalancer::new(LoadBalancerConfig {
        transiency_aware: aware,
        admission_control: admission,
        ..LoadBalancerConfig::default()
    });
    for (m, &c) in capacities.iter().enumerate() {
        lb.add_backend_up(m % 3, c);
    }
    lb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Weighted routing distributes in proportion to capacity: over one
    /// full WRR cycle every backend's share is exact.
    #[test]
    fn wrr_share_proportional(
        caps in prop::collection::vec(50.0f64..500.0, 2..6),
    ) {
        // Integer-ish weights so a full cycle is well-defined: round
        // capacities to multiples of 50.
        let caps: Vec<f64> = caps.iter().map(|c| (c / 50.0).round() * 50.0).collect();
        let total: f64 = caps.iter().sum();
        let cycle = (total / 50.0) as usize;
        let mut lb = balancer(&caps, true, false);
        let mut counts = vec![0usize; caps.len()];
        for _ in 0..cycle {
            match lb.route(None, 0.0) {
                RouteOutcome::Routed(b) => {
                    counts[b] += 1;
                    lb.complete(b, None);
                }
                RouteOutcome::Dropped => prop_assert!(false, "must route"),
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let expected = (caps[b] / 50.0) as usize;
            prop_assert_eq!(c, expected, "backend {} got {} expected {}", b, c, expected);
        }
    }

    /// In-flight accounting: routes minus completes equals the sum of
    /// in-flight counters.
    #[test]
    fn in_flight_conserved(
        caps in prop::collection::vec(50.0f64..500.0, 1..5),
        ops in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let mut lb = balancer(&caps, true, false);
        let mut outstanding: Vec<usize> = Vec::new();
        for complete in ops {
            if complete {
                if let Some(b) = outstanding.pop() {
                    lb.complete(b, None);
                }
            } else if let RouteOutcome::Routed(b) = lb.route(None, 0.0) {
                outstanding.push(b);
            }
        }
        let total_in_flight: u64 = lb.backends().iter().map(|b| b.in_flight).sum();
        prop_assert_eq!(total_in_flight as usize, outstanding.len());
    }

    /// After a warning, a transiency-aware balancer never routes *new*
    /// requests to the draining backend while any healthy backend has
    /// headroom.
    #[test]
    fn draining_avoided_while_headroom(
        caps in prop::collection::vec(100.0f64..400.0, 2..5),
        victim_idx in 0usize..4,
    ) {
        let victim = victim_idx % caps.len();
        let mut lb = balancer(&caps, true, false);
        lb.revocation_warning(victim, 10.0, 120.0);
        for _ in 0..50 {
            if let RouteOutcome::Routed(b) = lb.route(None, 11.0) {
                prop_assert_ne!(b, victim, "routed to draining backend");
                lb.complete(b, None);
            }
        }
    }

    /// Sessions survive any single revocation in an aware cluster with
    /// at least one survivor.
    #[test]
    fn sessions_survive_single_revocation(
        caps in prop::collection::vec(100.0f64..400.0, 2..5),
        sessions in 1u64..50,
        victim_idx in 0usize..4,
    ) {
        let victim = victim_idx % caps.len();
        let mut lb = balancer(&caps, true, false);
        for s in 0..sessions {
            lb.route(Some(s), 0.0);
        }
        let before = lb.sessions().len();
        lb.revocation_warning(victim, 1.0, 120.0);
        lb.server_died(victim, 121.0);
        // All sessions either migrated at the warning or re-pinned
        // lazily; with idle survivors none should be lost.
        prop_assert_eq!(lb.sessions().len(), before);
        prop_assert_eq!(lb.stats().sessions_lost, 0);
    }

    /// Once a backend's revocation warning fires, no session — sticky
    /// or new — is ever routed to it again while the survivors have
    /// headroom: not during the drain, not at the deadline, not after
    /// the death.
    #[test]
    fn no_session_routes_to_revoked_backend(
        caps in prop::collection::vec(100.0f64..400.0, 2..5),
        sessions in 1u64..40,
        victim_idx in 0usize..4,
    ) {
        let victim = victim_idx % caps.len();
        let mut lb = balancer(&caps, true, false);
        // Pin every session somewhere (some land on the victim).
        for s in 0..sessions {
            if let RouteOutcome::Routed(b) = lb.route(Some(s), 0.0) {
                lb.complete(b, Some(s));
            }
        }
        let warning_at = 5.0;
        let warning_secs = 60.0;
        lb.revocation_warning(victim, warning_at, warning_secs);
        let deadline = warning_at + warning_secs;
        let mut died = false;
        for k in 0..240u64 {
            let now = warning_at + 0.5 * (k as f64 + 1.0);
            if !died && now >= deadline {
                lb.server_died(victim, deadline);
                died = true;
            }
            lb.tick(now);
            let s = k % sessions;
            if let RouteOutcome::Routed(b) = lb.route(Some(s), now) {
                prop_assert_ne!(
                    b, victim,
                    "session {} routed to revoked backend at t={}", s, now
                );
                lb.complete(b, Some(s));
            }
        }
    }

    /// The vanilla balancer loses exactly the sessions pinned to the
    /// dead backend.
    #[test]
    fn vanilla_loses_pinned_sessions(
        caps in prop::collection::vec(100.0f64..400.0, 2..4),
        sessions in 1u64..60,
    ) {
        let mut lb = balancer(&caps, false, false);
        for s in 0..sessions {
            lb.route(Some(s), 0.0);
        }
        let pinned = lb.sessions().count_on(0);
        let lost = lb.server_died(0, 10.0);
        prop_assert_eq!(lost, pinned);
    }
}
