//! The load-balancer façade.
//!
//! Combines [`SmoothWrr`] routing, [`SessionTable`] stickiness,
//! [`AdmissionController`] overload protection, and transiency
//! handling. Two personalities, selected by
//! [`LoadBalancerConfig::transiency_aware`]:
//!
//! * **SpotWeb** (`true`): a revocation warning immediately drains the
//!   backend — new requests avoid it, its sessions migrate to peers
//!   with spare capacity — and the caller learns the capacity gap so it
//!   can reprovision within the warning window.
//! * **Vanilla** (`false`): warnings are ignored (the Fig. 4(a)
//!   HAProxy baseline); the backend keeps receiving traffic until the
//!   cloud kills it, at which point every session and in-flight
//!   request on it is lost.

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::backend::{Backend, BackendId, BackendState};
use crate::session::SessionTable;
use crate::wrr::SmoothWrr;
use spotweb_telemetry::{names, prof, CounterHandle, DrainRecord, TelemetrySink, TraceEvent};

/// Load-balancer configuration.
#[derive(Debug, Clone)]
pub struct LoadBalancerConfig {
    /// React to revocation warnings (SpotWeb) or ignore them (vanilla).
    pub transiency_aware: bool,
    /// Enable the overload admission controller.
    pub admission_control: bool,
    /// Admission: max fraction of effective capacity to admit.
    pub max_utilization: f64,
    /// Admission: max queueing delay before dropping (seconds).
    pub max_delay_secs: f64,
    /// Expected request service time (drives utilization estimates and
    /// migration targeting).
    pub service_secs: f64,
}

impl Default for LoadBalancerConfig {
    fn default() -> Self {
        LoadBalancerConfig {
            transiency_aware: true,
            admission_control: true,
            max_utilization: 0.98,
            max_delay_secs: 2.0,
            service_secs: 0.25,
        }
    }
}

/// Outcome of routing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Sent to a backend.
    Routed(BackendId),
    /// Rejected (admission control or no live backend).
    Dropped,
}

/// Result of handling a revocation warning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarningReport {
    /// Sessions re-pinned to surviving backends immediately.
    pub migrated_sessions: usize,
    /// Sessions left on the draining server for now (no survivor has
    /// headroom); they re-home lazily as replacement capacity appears
    /// and are forced off before the termination deadline.
    pub stayed_sessions: usize,
    /// Capacity (req/s) the cluster loses when the server dies —
    /// the controller's signal to reprovision.
    pub capacity_gap_rps: f64,
}

/// Running counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LbStats {
    /// Requests routed to a backend.
    pub routed: u64,
    /// Requests dropped (admission or no backend).
    pub dropped: u64,
    /// Sessions migrated by warnings.
    pub migrations: u64,
    /// Sessions lost to abrupt server death.
    pub sessions_lost: u64,
    /// Requests rejected by the admission controller specifically
    /// (a subset of `dropped`; the rest had no live backend).
    pub admission_rejections: u64,
}

/// Aggregate summary of backends compacted out of the balancer.
///
/// When a dead backend is fully settled (state [`BackendState::Down`],
/// sessions removed, billing closed) the runner retires it via
/// [`LoadBalancer::retire`]; its row leaves the dense backend vector
/// and only these counters remain. External [`BackendId`]s are
/// allocated monotonically and never reused, so a retired id stays
/// distinguishable from every future backend forever.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetiredSummary {
    /// Backends compacted so far.
    pub count: usize,
    /// Retired-backend count per market id (deterministic order).
    pub per_market: std::collections::BTreeMap<usize, usize>,
}

/// Sentinel in `slot_of` marking an external id whose backend has been
/// compacted away.
const RETIRED: usize = usize::MAX;

/// The transiency-aware (or vanilla) weighted-round-robin balancer.
///
/// # Identity vs. storage
///
/// Externally, backends are named by stable monotone [`BackendId`]s
/// (the ids the session table, telemetry, and the simulator use).
/// Internally they live in a *dense* vector of only the non-retired
/// backends, ordered by ascending external id; `slot_of` maps id →
/// slot. Control-path loops (routing tiers, admission capacity sums,
/// portfolio reweighting) iterate the dense vector, so their cost is
/// O(live backends) — constant over a week-scale run — instead of
/// O(every backend ever provisioned).
pub struct LoadBalancer {
    config: LoadBalancerConfig,
    /// Dense vector of live (non-retired) backends, ascending by
    /// external id.
    backends: Vec<Backend>,
    /// External [`BackendId`] → slot in `backends`; [`RETIRED`] once
    /// compacted. Also the id allocator: ids are `0..slot_of.len()`.
    slot_of: Vec<usize>,
    /// Summary of compacted backends (see [`RetiredSummary`]).
    retired: RetiredSummary,
    wrr: SmoothWrr,
    sessions: SessionTable,
    admission: AdmissionController,
    stats: LbStats,
    telemetry: TelemetrySink,
    /// Per-request drop counters on the interned fast path (see
    /// [`CounterHandle`]); re-resolved whenever the sink changes.
    admission_rejections: CounterHandle,
    no_backend_drops: CounterHandle,
    /// Reusable per-route eligibility mask (`scratch[slot]` = backend
    /// in `slot` is healthy with headroom). Routing fills it in place
    /// instead of collecting a fresh `Vec<bool>` on every tiered pick.
    scratch: Vec<bool>,
}

impl LoadBalancer {
    /// Empty balancer.
    pub fn new(config: LoadBalancerConfig) -> Self {
        let admission = AdmissionController::new(config.max_utilization, config.max_delay_secs);
        LoadBalancer {
            config,
            backends: Vec::new(),
            slot_of: Vec::new(),
            retired: RetiredSummary::default(),
            wrr: SmoothWrr::new(Vec::new()),
            sessions: SessionTable::new(),
            admission,
            stats: LbStats::default(),
            telemetry: TelemetrySink::disabled(),
            admission_rejections: CounterHandle::default(),
            no_backend_drops: CounterHandle::default(),
            scratch: Vec::new(),
        }
    }

    /// Attach a telemetry sink; drains, deaths, restores, and
    /// admission rejections are recorded through it.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.admission_rejections = sink.counter_handle(names::LB_ADMISSION_REJECTIONS_TOTAL);
        self.no_backend_drops = sink.counter_handle(names::LB_NO_BACKEND_DROPS_TOTAL);
        self.telemetry = sink;
    }

    /// Register a backend that must boot first (startup + warm-up).
    pub fn add_backend(
        &mut self,
        market: usize,
        capacity_rps: f64,
        now: f64,
        startup_secs: f64,
        warmup_secs: f64,
    ) -> BackendId {
        let id = self.slot_of.len();
        let b = Backend::starting(id, market, capacity_rps, now, startup_secs, warmup_secs);
        self.wrr.push(b.weight);
        self.slot_of.push(self.backends.len());
        self.backends.push(b);
        id
    }

    /// Register an already-serving backend (cluster bootstrap).
    pub fn add_backend_up(&mut self, market: usize, capacity_rps: f64) -> BackendId {
        let id = self.slot_of.len();
        let b = Backend::up(id, market, capacity_rps);
        self.wrr.push(b.weight);
        self.slot_of.push(self.backends.len());
        self.backends.push(b);
        id
    }

    /// Live (non-retired) backends, ascending by external id.
    ///
    /// Until the first [`retire`](Self::retire) this is every backend
    /// ever added and indexing by [`BackendId`] is valid; afterwards
    /// use [`backend`](Self::backend) for by-id access.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Backend by external id; `None` once retired.
    pub fn backend(&self, id: BackendId) -> Option<&Backend> {
        self.backends.get(*self.slot_of.get(id)?)
    }

    /// Mutable backend access (simulator drives in-flight counts).
    ///
    /// # Panics
    ///
    /// Panics if `id` has been retired — the simulator only mutates
    /// live backends.
    pub fn backend_mut(&mut self, id: BackendId) -> &mut Backend {
        &mut self.backends[self.slot_of[id]]
    }

    /// Total backends ever registered, retired or not. External ids are
    /// exactly `0..ever_count()` and are never reused.
    pub fn ever_count(&self) -> usize {
        self.slot_of.len()
    }

    /// Summary of backends compacted out of the dense vector.
    pub fn retired(&self) -> &RetiredSummary {
        &self.retired
    }

    /// Counters so far.
    pub fn stats(&self) -> LbStats {
        self.stats
    }

    /// Session table (read-only).
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    /// Sum of effective capacities at `now` (req/s).
    pub fn effective_capacity(&self, now: f64) -> f64 {
        self.backends
            .iter()
            .map(|b| b.effective_capacity(now))
            .sum()
    }

    /// Advance backend lifecycle states to `now`.
    pub fn tick(&mut self, now: f64) {
        for b in &mut self.backends {
            b.tick(now);
        }
    }

    /// Re-program WRR weights from a new portfolio: `market_weights[m]`
    /// is market `m`'s share; each backend gets its market's weight
    /// split evenly across that market's live backends (§5.2: "The
    /// weights are set to be equal to the relative weight of a market
    /// within the portfolio").
    pub fn update_portfolio_weights(&mut self, market_weights: &[f64], now: f64) {
        let mut live_per_market: Vec<usize> = vec![0; market_weights.len()];
        for b in &self.backends {
            if b.market < market_weights.len() && b.accepts_new(now) {
                live_per_market[b.market] += 1;
            }
        }
        for i in 0..self.backends.len() {
            let m = self.backends[i].market;
            let w = if m < market_weights.len() && live_per_market[m] > 0 {
                market_weights[m] / live_per_market[m] as f64
            } else {
                0.0
            };
            self.backends[i].weight = w;
            self.wrr.set_weight(i, w);
        }
    }

    /// A draining backend remains usable for new traffic while at
    /// least this many service times remain before its deadline.
    const DRAIN_MARGIN_SERVICES: f64 = 20.0;

    /// Per-backend overload threshold used by the routing tiers: a
    /// backend with more than this multiple of its nominal concurrency
    /// in flight is considered saturated.
    const OVERLOAD_FACTOR: f64 = 2.0;

    /// Is the backend in `slot` usable as a *fallback* target — a
    /// still-alive draining backend with comfortable margin before
    /// termination? (§4.4: until replacements are up, the revoked
    /// servers are still serving.)
    fn drain_fallback_ok(&self, slot: usize, now: f64) -> bool {
        if !self.config.transiency_aware {
            return false;
        }
        match self.backends[slot].state {
            BackendState::Draining { deadline } => {
                deadline - now > Self::DRAIN_MARGIN_SERVICES * self.config.service_secs
            }
            _ => false,
        }
    }

    fn is_saturated(&self, slot: usize, now: f64) -> bool {
        self.backends[slot].utilization(now, self.config.service_secs) > Self::OVERLOAD_FACTOR
    }

    /// Take the scratch mask, filled so `mask[i]` holds exactly when
    /// backend `i` is accepting and unsaturated at `now` (routing
    /// tier 1). The caller returns it via [`Self::put_tier1_mask`] so
    /// the buffer is reused across routes instead of reallocated.
    fn take_tier1_mask(&mut self, now: f64) -> Vec<bool> {
        let mut mask = std::mem::take(&mut self.scratch);
        mask.clear();
        mask.extend(
            (0..self.backends.len())
                .map(|i| self.backends[i].accepts_new(now) && !self.is_saturated(i, now)),
        );
        mask
    }

    fn put_tier1_mask(&mut self, mask: Vec<bool>) {
        self.scratch = mask;
    }

    /// Route one request. `session` pins/uses stickiness when given.
    ///
    /// Routing tiers: (1) non-draining backends with headroom, (2) —
    /// transiency-aware only — still-alive draining backends with
    /// headroom (the paper keeps serving from revoked servers until
    /// replacements arrive), (3) any accepting backend even if
    /// saturated. Admission control bounds the total queueing delay
    /// across the tiers considered.
    pub fn route(&mut self, session: Option<u64>, now: f64) -> RouteOutcome {
        // Hottest profiling span in the stack: one enter per simulated
        // request (a single relaxed atomic load when no session runs).
        prof::scope!(names::SPAN_LB_ROUTE);
        if self.config.admission_control {
            // Capacity and load over every backend a request could use.
            let mut cap = 0.0;
            let mut in_flight = 0u64;
            for slot in 0..self.backends.len() {
                let b = &self.backends[slot];
                let usable = b.accepts_new(now) || self.drain_fallback_ok(slot, now);
                if usable {
                    cap += b.effective_capacity(now);
                    in_flight += b.in_flight;
                }
            }
            if self
                .admission
                .decide(in_flight, cap, self.config.service_secs)
                == AdmissionDecision::Drop
            {
                self.stats.dropped += 1;
                self.stats.admission_rejections += 1;
                self.admission_rejections.inc();
                return RouteOutcome::Dropped;
            }
        }
        // Sticky sessions: return to the pinned backend while it is
        // healthy; re-pin (capacity-seeking) when it is saturated,
        // draining, or dead and a backend with headroom exists.
        if let Some(s) = session {
            if let Some(b) = self.sessions.lookup(s) {
                // Resolve the pinned external id to its slot; a retired
                // backend behaves exactly like a Down one here (serves
                // nothing, no fallback) and the saturation check is
                // short-circuited away just as it was for Down.
                let bslot = self.slot_of[b];
                let serves = bslot != RETIRED && self.backend_serves(bslot, now);
                let on_draining_fallback =
                    !serves && bslot != RETIRED && self.drain_fallback_ok(bslot, now);
                let healthy = (serves || on_draining_fallback) && !self.is_saturated(bslot, now);
                let prefer_repin = !healthy || on_draining_fallback;
                if prefer_repin {
                    // Seek capacity: healthy backends first, then
                    // still-alive draining ones (the paper's "load stays
                    // on the revoked servers until replacements start").
                    let t1 = self.take_tier1_mask(now);
                    let target = self
                        .wrr
                        .pick(|i| t1[i])
                        .or_else(|| self.pick_least_utilized(now, |i| t1[i]))
                        .or_else(|| {
                            self.pick_least_utilized(now, |i| {
                                self.backends[i].id != b
                                    && self.drain_fallback_ok(i, now)
                                    && !self.is_saturated(i, now)
                            })
                        });
                    self.put_tier1_mask(t1);
                    if let Some(nb) = target {
                        let nb_id = self.backends[nb].id;
                        self.sessions.assign(s, nb_id);
                        self.backends[nb].in_flight += 1;
                        self.stats.routed += 1;
                        if on_draining_fallback || !serves {
                            self.stats.migrations += 1;
                        }
                        return RouteOutcome::Routed(nb_id);
                    }
                }
                if serves || on_draining_fallback {
                    self.backends[bslot].in_flight += 1;
                    self.stats.routed += 1;
                    return RouteOutcome::Routed(b);
                }
                // Pinned backend is gone and nothing has headroom: fall
                // through to the tiered pick below.
            }
        }
        let pick = self.pick_tiered(now);
        match pick {
            Some(slot) => {
                let b = self.backends[slot].id;
                if let Some(s) = session {
                    self.sessions.assign(s, b);
                }
                self.backends[slot].in_flight += 1;
                self.stats.routed += 1;
                RouteOutcome::Routed(b)
            }
            None => {
                self.stats.dropped += 1;
                self.no_backend_drops.inc();
                RouteOutcome::Dropped
            }
        }
    }

    /// Slot of the least-utilized backend among those where
    /// `eligible(slot)` holds. Used by the fallback tiers, whose
    /// members often carry zero portfolio weight (e.g. draining servers
    /// the optimizer already dropped) and therefore cannot go through
    /// the WRR. Ties pick the lowest slot, i.e. the lowest external id.
    fn pick_least_utilized(&self, now: f64, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let service = self.config.service_secs;
        (0..self.backends.len())
            .filter(|&i| eligible(i))
            .min_by(|&a, &b| {
                self.backends[a]
                    .utilization(now, service)
                    .partial_cmp(&self.backends[b].utilization(now, service))
                    .expect("finite utilizations")
            })
    }

    /// Tiered pick; returns a *slot* into the dense backend vector.
    fn pick_tiered(&mut self, now: f64) -> Option<usize> {
        // Tier 1: healthy backends with headroom, via weighted RR.
        let t1 = self.take_tier1_mask(now);
        if let Some(b) = self.wrr.pick(|i| t1[i]) {
            self.put_tier1_mask(t1);
            return Some(b);
        }
        // Tier 1b: healthy but currently zero-weighted (portfolio just
        // changed); least-utilized. The mask already holds exactly the
        // accepting-and-unsaturated predicate at this `now`.
        let tier1b = self.pick_least_utilized(now, |i| t1[i]);
        self.put_tier1_mask(t1);
        if let Some(b) = tier1b {
            return Some(b);
        }
        // Tier 2: draining-but-alive backends with headroom.
        if let Some(b) = self.pick_least_utilized(now, |i| {
            self.drain_fallback_ok(i, now) && !self.is_saturated(i, now)
        }) {
            return Some(b);
        }
        // Tier 3: anything serving, saturated or not (admission has
        // already bounded the queue we are about to join).
        self.pick_least_utilized(now, |i| {
            self.backends[i].accepts_new(now) || self.drain_fallback_ok(i, now)
        })
    }

    /// A request on `backend` finished; `session_done` removes the
    /// session pin as well (end of user session).
    ///
    /// Safe to call for a retired `backend`: a request may complete
    /// after its server died and was compacted, in which case there is
    /// no in-flight counter left to decrement (death already zeroed
    /// it — the old saturating decrement on a Down backend was a no-op
    /// too), but the session pin is still cleared wherever the session
    /// lives now.
    pub fn complete(&mut self, backend: BackendId, session_done: Option<u64>) {
        let slot = self.slot_of[backend];
        if slot != RETIRED {
            let b = &mut self.backends[slot];
            b.in_flight = b.in_flight.saturating_sub(1);
        }
        if let Some(s) = session_done {
            self.sessions.remove(s);
        }
    }

    /// Handle a revocation warning for `backend` arriving at `now` with
    /// `warning_secs` of notice.
    ///
    /// Transiency-aware: drain the backend and migrate its sessions to
    /// the least-utilized surviving backends. Vanilla: record the
    /// deadline but change nothing (the server dies abruptly later).
    pub fn revocation_warning(
        &mut self,
        backend: BackendId,
        now: f64,
        warning_secs: f64,
    ) -> WarningReport {
        let bslot = self.slot_of[backend];
        let deadline = now + warning_secs;
        let capacity_gap_rps = self.backends[bslot].capacity_rps;
        let drain_kind = if warning_secs.is_finite() {
            "revocation"
        } else {
            "decommission"
        };
        if !self.config.transiency_aware {
            // Vanilla keeps routing; the deadline is tracked by the
            // caller, which will invoke `server_died` at `deadline`.
            let stayed = self.sessions.count_on(backend);
            self.telemetry.emit_at(
                now,
                TraceEvent::Drain(DrainRecord {
                    backend,
                    market: self.backends[bslot].market,
                    kind: drain_kind.to_string(),
                    warning_secs,
                    deadline,
                    sessions_migrated: 0,
                    sessions_stayed: stayed,
                    capacity_gap_rps,
                }),
            );
            return WarningReport {
                migrated_sessions: 0,
                stayed_sessions: stayed,
                capacity_gap_rps,
            };
        }
        self.backends[bslot].state = BackendState::Draining { deadline };
        // Weight stays: the draining backend may still serve as a tier-2
        // fallback until the cluster has replacement capacity.
        // Migrate sessions to the least-utilized *unsaturated* accepting
        // backends; sessions beyond their headroom stay pinned and
        // re-home lazily as replacements come up.
        let service = self.config.service_secs;
        let mut target_cache: Vec<usize> = (0..self.backends.len())
            .filter(|&i| {
                i != bslot && self.backends[i].accepts_new(now) && !self.is_saturated(i, now)
            })
            .collect();
        // Sort once by utilization; round-robin over the sorted list.
        target_cache.sort_by(|&a, &b| {
            self.backends[a]
                .utilization(now, service)
                .partial_cmp(&self.backends[b].utilization(now, service))
                .expect("finite utilizations")
        });
        // Spare request slots bound how many sessions move right away.
        let spare_slots: f64 = target_cache
            .iter()
            .map(|&i| {
                let b = &self.backends[i];
                (b.effective_capacity(now) * service * Self::OVERLOAD_FACTOR - b.in_flight as f64)
                    .max(0.0)
            })
            .sum();
        // The session table speaks external ids, not slots.
        let target_ids: Vec<BackendId> =
            target_cache.iter().map(|&i| self.backends[i].id).collect();
        // Sessions are mostly idle between requests; allow a generous
        // multiple of the instantaneous slot headroom.
        let budget = (spare_slots * 50.0) as usize;
        let mut cursor = 0;
        let (migrated, stayed) = self.sessions.migrate_all(backend, || {
            if target_ids.is_empty() || cursor >= budget {
                return None;
            }
            let t = target_ids[cursor % target_ids.len()];
            cursor += 1;
            Some(t)
        });
        self.stats.migrations += migrated as u64;
        self.telemetry.emit_at(
            now,
            TraceEvent::Drain(DrainRecord {
                backend,
                market: self.backends[bslot].market,
                kind: drain_kind.to_string(),
                warning_secs,
                deadline,
                sessions_migrated: migrated,
                sessions_stayed: stayed,
                capacity_gap_rps,
            }),
        );
        WarningReport {
            migrated_sessions: migrated,
            stayed_sessions: stayed,
            capacity_gap_rps,
        }
    }

    /// The cloud terminated `backend` (end of warning). Every session
    /// still pinned there is lost; returns how many. In-flight requests
    /// are the simulator's to fail.
    pub fn server_died(&mut self, backend: BackendId, now: f64) -> usize {
        let slot = self.slot_of[backend];
        self.backends[slot].state = BackendState::Down;
        self.wrr.set_weight(slot, 0.0);
        let lost = self.sessions.sessions_on(backend);
        for s in &lost {
            self.sessions.remove(*s);
        }
        self.stats.sessions_lost += lost.len() as u64;
        self.backends[slot].in_flight = 0;
        self.telemetry.emit_at(
            now,
            TraceEvent::BackendDeath {
                backend,
                market: self.backends[slot].market,
                sessions_lost: lost.len(),
            },
        );
        lost.len()
    }

    /// Compact a permanently dead backend out of the dense vector,
    /// leaving only its [`RetiredSummary`] contribution behind. The
    /// external id stays allocated forever — [`backend`](Self::backend)
    /// returns `None`, [`restore_backend`](Self::restore_backend)
    /// panics — so a later backend bought in the same market can never
    /// be confused with the corpse.
    ///
    /// Behaviour-preserving by construction: a Down backend is
    /// invisible to every control-path loop (zero effective capacity,
    /// never accepting, zero in-flight, WRR weight pinned to 0), so
    /// dropping its row changes no route, no admission decision, and no
    /// portfolio reweighting — it only stops the loops from walking a
    /// corpse. Call it for *permanent* deaths only; a flapping backend
    /// that will be restored must keep its row.
    ///
    /// # Panics
    ///
    /// Panics if the backend is not [`BackendState::Down`] or was
    /// already retired.
    pub fn retire(&mut self, backend: BackendId) {
        let slot = self.slot_of[backend];
        assert!(slot != RETIRED, "backend {backend} retired twice");
        let b = &self.backends[slot];
        assert!(
            b.state == BackendState::Down,
            "only a dead backend can be retired"
        );
        self.retired.count += 1;
        *self.retired.per_market.entry(b.market).or_insert(0) += 1;
        self.backends.remove(slot);
        self.wrr.remove(slot);
        self.slot_of[backend] = RETIRED;
        // Every backend after the vacated slot shifted down by one.
        for moved in &self.backends[slot..] {
            self.slot_of[moved.id] -= 1;
        }
        self.sessions.forget_backend(backend);
    }

    /// A flapped backend came back (fault-injection recovery): resume
    /// serving with its configured WRR weight. The backend returns
    /// empty — its former sessions were already re-pinned or lost when
    /// it went down — and warms its cache again until
    /// `now + warmup_secs`.
    pub fn restore_backend(&mut self, backend: BackendId, now: f64, warmup_secs: f64) {
        let slot = self.slot_of[backend];
        assert!(
            slot != RETIRED,
            "backend {backend} was retired; ids are never reused"
        );
        let b = &mut self.backends[slot];
        assert!(
            b.state == BackendState::Down,
            "only a down backend can be restored"
        );
        b.state = BackendState::Up;
        b.in_flight = 0;
        b.warm_until = now + warmup_secs;
        let w = b.weight;
        self.wrr.set_weight(slot, w);
        self.telemetry.emit_at(
            now,
            TraceEvent::BackendRestore {
                backend,
                market: self.backends[slot].market,
                warmup_secs,
            },
        );
    }

    /// Gracefully remove a backend on scale-down: drain with an
    /// effectively infinite deadline (it finishes its work, takes no
    /// new requests) and migrate its sessions.
    pub fn decommission(&mut self, backend: BackendId, now: f64) -> WarningReport {
        self.revocation_warning(backend, now, f64::INFINITY)
    }

    fn backend_serves(&self, slot: usize, now: f64) -> bool {
        match self.backends[slot].state {
            BackendState::Up => true,
            BackendState::Starting { ready_at } => now >= ready_at,
            // Sticky traffic may continue to a draining backend only in
            // vanilla mode (transiency-aware re-pins immediately).
            BackendState::Draining { deadline } => !self.config.transiency_aware && now < deadline,
            BackendState::Down => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aware() -> LoadBalancer {
        LoadBalancer::new(LoadBalancerConfig {
            admission_control: false,
            ..LoadBalancerConfig::default()
        })
    }

    fn vanilla() -> LoadBalancer {
        LoadBalancer::new(LoadBalancerConfig {
            transiency_aware: false,
            admission_control: false,
            ..LoadBalancerConfig::default()
        })
    }

    #[test]
    fn routes_proportionally_to_capacity() {
        let mut lb = aware();
        lb.add_backend_up(0, 300.0);
        lb.add_backend_up(0, 100.0);
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            if let RouteOutcome::Routed(b) = lb.route(None, 0.0) {
                counts[b] += 1;
                lb.complete(b, None);
            }
        }
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn sticky_sessions_return_to_backend() {
        let mut lb = aware();
        lb.add_backend_up(0, 100.0);
        lb.add_backend_up(0, 100.0);
        let first = match lb.route(Some(42), 0.0) {
            RouteOutcome::Routed(b) => b,
            _ => panic!("must route"),
        };
        for _ in 0..10 {
            match lb.route(Some(42), 1.0) {
                RouteOutcome::Routed(b) => assert_eq!(b, first),
                _ => panic!("must route"),
            }
        }
    }

    #[test]
    fn warning_drains_and_migrates() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        let b = lb.add_backend_up(0, 100.0);
        for s in 0..6 {
            // Pin sessions explicitly across both backends.
            lb.route(Some(s), 0.0);
        }
        let on_a = lb.sessions().count_on(a);
        assert!(on_a > 0);
        let report = lb.revocation_warning(a, 10.0, 120.0);
        assert_eq!(report.migrated_sessions, on_a);
        assert_eq!(report.stayed_sessions, 0);
        assert_eq!(lb.sessions().count_on(a), 0);
        assert_eq!(lb.sessions().count_on(b), 6);
        // New traffic avoids the draining backend.
        for _ in 0..10 {
            match lb.route(None, 11.0) {
                RouteOutcome::Routed(x) => assert_eq!(x, b),
                _ => panic!("must route"),
            }
        }
    }

    #[test]
    fn vanilla_keeps_routing_to_doomed_server() {
        let mut lb = vanilla();
        let a = lb.add_backend_up(0, 100.0);
        lb.add_backend_up(0, 100.0);
        lb.revocation_warning(a, 0.0, 120.0);
        let mut hit_a = false;
        for _ in 0..10 {
            if lb.route(None, 10.0) == RouteOutcome::Routed(a) {
                hit_a = true;
            }
        }
        assert!(hit_a, "vanilla must ignore the warning");
        // At death, sessions on a are lost.
        lb.route(Some(1), 11.0);
        lb.route(Some(2), 11.0);
        let on_a = lb.sessions().count_on(a);
        let lost = lb.server_died(a, 120.0);
        assert_eq!(lost, on_a);
    }

    #[test]
    fn migration_prefers_idle_backends() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        let busy = lb.add_backend_up(0, 100.0);
        let idle = lb.add_backend_up(0, 100.0);
        lb.backend_mut(busy).in_flight = 40;
        for s in 0..4 {
            lb.sessions.assign(s, a);
        }
        lb.revocation_warning(a, 0.0, 120.0);
        assert!(
            lb.sessions().count_on(idle) >= lb.sessions().count_on(busy),
            "idle {} busy {}",
            lb.sessions().count_on(idle),
            lb.sessions().count_on(busy)
        );
    }

    #[test]
    fn no_backends_drops() {
        let mut lb = aware();
        assert_eq!(lb.route(None, 0.0), RouteOutcome::Dropped);
        assert_eq!(lb.stats().dropped, 1);
    }

    #[test]
    fn starting_backend_joins_when_ready() {
        let mut lb = aware();
        lb.add_backend(0, 100.0, 0.0, 60.0, 0.0);
        assert_eq!(lb.route(None, 30.0), RouteOutcome::Dropped);
        assert!(matches!(lb.route(None, 61.0), RouteOutcome::Routed(0)));
    }

    #[test]
    fn admission_drops_overload_with_zero_capacity() {
        let mut lb = LoadBalancer::new(LoadBalancerConfig {
            transiency_aware: true,
            admission_control: true,
            max_utilization: 0.9,
            max_delay_secs: 0.0,
            service_secs: 0.25,
        });
        // No backends → zero capacity → everything dropped by admission.
        for k in 0..5 {
            assert_eq!(lb.route(None, k as f64), RouteOutcome::Dropped);
        }
    }

    #[test]
    fn portfolio_weight_update_shifts_traffic() {
        let mut lb = aware();
        lb.add_backend_up(0, 100.0); // market 0
        lb.add_backend_up(1, 100.0); // market 1
        lb.update_portfolio_weights(&[0.8, 0.2], 0.0);
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            if let RouteOutcome::Routed(b) = lb.route(None, 0.0) {
                counts[b] += 1;
                lb.complete(b, None);
            }
        }
        assert_eq!(counts[0], 80);
        assert_eq!(counts[1], 20);
    }

    #[test]
    fn decommission_is_graceful() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        let b = lb.add_backend_up(0, 100.0);
        lb.route(Some(7), 0.0);
        lb.route(Some(8), 0.0);
        let report = lb.decommission(a, 1.0);
        assert_eq!(report.stayed_sessions, 0);
        assert_eq!(lb.sessions().count_on(b), 2);
    }

    #[test]
    fn admission_rejections_counted_separately_from_no_backend_drops() {
        // No backends, admission off: drops are *not* admission
        // rejections.
        let mut lb = aware();
        assert_eq!(lb.route(None, 0.0), RouteOutcome::Dropped);
        assert_eq!(lb.stats().dropped, 1);
        assert_eq!(lb.stats().admission_rejections, 0);

        // Admission on with zero usable capacity: every drop is an
        // admission rejection, and the counter reaches telemetry.
        let mut lb = LoadBalancer::new(LoadBalancerConfig {
            admission_control: true,
            max_delay_secs: 0.0,
            ..LoadBalancerConfig::default()
        });
        let sink = TelemetrySink::enabled();
        lb.set_telemetry(sink.clone());
        for k in 0..5 {
            assert_eq!(lb.route(None, k as f64), RouteOutcome::Dropped);
        }
        assert_eq!(lb.stats().dropped, 5);
        assert_eq!(lb.stats().admission_rejections, 5);
        assert_eq!(sink.counter("spotweb_lb_admission_rejections_total"), 5);
    }

    #[test]
    fn warning_emits_drain_record() {
        let mut lb = aware();
        let sink = TelemetrySink::enabled();
        lb.set_telemetry(sink.clone());
        let a = lb.add_backend_up(1, 100.0);
        lb.add_backend_up(0, 100.0);
        lb.route(Some(5), 0.0);
        lb.route(Some(6), 0.0);
        let on_a = lb.sessions().count_on(a);
        lb.revocation_warning(a, 10.0, 120.0);
        let events = sink.events();
        let drain = events
            .iter()
            .find_map(|e| match &e.event {
                TraceEvent::Drain(d) => Some(d.clone()),
                _ => None,
            })
            .expect("warning must emit a drain record");
        assert_eq!(drain.backend, a);
        assert_eq!(drain.market, 1);
        assert_eq!(drain.kind, "revocation");
        assert_eq!(drain.deadline, 130.0);
        assert_eq!(drain.sessions_migrated + drain.sessions_stayed, on_a);
    }

    #[test]
    fn retire_compacts_but_preserves_ids_and_routing() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        let b = lb.add_backend_up(1, 100.0);
        let c = lb.add_backend_up(0, 100.0);
        lb.server_died(b, 1.0);
        lb.retire(b);
        // The corpse is gone from the dense vector...
        assert_eq!(lb.backends().len(), 2);
        assert_eq!(lb.ever_count(), 3);
        assert!(lb.backend(b).is_none());
        assert_eq!(lb.retired().count, 1);
        assert_eq!(lb.retired().per_market.get(&1), Some(&1));
        // ...but external ids keep resolving and routing still works.
        assert_eq!(lb.backend(a).unwrap().id, a);
        assert_eq!(lb.backend(c).unwrap().id, c);
        let mut seen = [false; 3];
        for _ in 0..10 {
            match lb.route(None, 2.0) {
                RouteOutcome::Routed(x) => {
                    seen[x] = true;
                    lb.complete(x, None);
                }
                _ => panic!("must route"),
            }
        }
        assert!(seen[a] && seen[c] && !seen[b]);
        // A new backend gets a fresh id, never the retired one.
        let d = lb.add_backend_up(1, 100.0);
        assert_eq!(d, 3);
        assert_eq!(lb.backend(d).unwrap().id, d);
    }

    #[test]
    fn retire_then_complete_is_safe() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        lb.add_backend_up(0, 100.0);
        lb.route(Some(9), 0.0);
        lb.route(Some(10), 0.0);
        lb.server_died(a, 1.0);
        lb.retire(a);
        // A request that was in flight on `a` completes after the
        // compaction: no panic, and the session pin clears wherever the
        // session lives now.
        lb.complete(a, Some(9));
        assert_eq!(lb.sessions().lookup(9), None);
    }

    #[test]
    #[should_panic(expected = "never reused")]
    fn retired_backend_cannot_be_restored() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        lb.server_died(a, 1.0);
        lb.retire(a);
        lb.restore_backend(a, 2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "only a dead backend")]
    fn live_backend_cannot_be_retired() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        lb.retire(a);
    }

    #[test]
    fn retire_is_invisible_to_route_sequence() {
        // Drive two balancers through the same request sequence; one
        // retires its corpse, one keeps it. Every route decision must
        // be identical — the "why the goldens don't change" argument in
        // miniature.
        let mk = || {
            let mut lb = aware();
            lb.add_backend_up(0, 100.0);
            lb.add_backend_up(1, 100.0);
            lb.add_backend_up(0, 100.0);
            lb
        };
        let mut keep = mk();
        let mut compact = mk();
        for s in 0..12u64 {
            keep.route(Some(s), 0.0);
            compact.route(Some(s), 0.0);
        }
        keep.revocation_warning(1, 1.0, 10.0);
        compact.revocation_warning(1, 1.0, 10.0);
        keep.server_died(1, 11.0);
        compact.server_died(1, 11.0);
        compact.retire(1);
        keep.update_portfolio_weights(&[0.6, 0.4], 12.0);
        compact.update_portfolio_weights(&[0.6, 0.4], 12.0);
        for s in 0..40u64 {
            let now = 12.0 + s as f64;
            let a = keep.route(Some(s % 14), now);
            let b = compact.route(Some(s % 14), now);
            assert_eq!(a, b, "diverged at request {s}");
        }
        assert_eq!(keep.stats(), compact.stats());
        assert_eq!(
            keep.effective_capacity(20.0),
            compact.effective_capacity(20.0)
        );
    }

    #[test]
    fn restored_backend_serves_again() {
        let mut lb = aware();
        let a = lb.add_backend_up(0, 100.0);
        let b = lb.add_backend_up(0, 100.0);
        lb.server_died(a, 10.0);
        // While down, everything lands on the survivor.
        for _ in 0..10 {
            assert_eq!(lb.route(None, 11.0), RouteOutcome::Routed(b));
            lb.complete(b, None);
        }
        lb.restore_backend(a, 20.0, 30.0);
        assert!(lb.backends()[a].accepts_new(20.0));
        assert_eq!(lb.backends()[a].in_flight, 0);
        // Warm-up applies again after the flap.
        assert!(lb.backends()[a].effective_capacity(25.0) < 100.0);
        assert_eq!(lb.backends()[a].effective_capacity(51.0), 100.0);
        // WRR weight is live again: both backends get traffic.
        let mut counts = [0u32; 2];
        for _ in 0..40 {
            if let RouteOutcome::Routed(x) = lb.route(None, 60.0) {
                counts[x] += 1;
                lb.complete(x, None);
            }
        }
        assert!(counts[0] > 0 && counts[1] > 0, "counts {counts:?}");
    }
}
