//! User-session tracking.
//!
//! The paper's load balancer migrates *user sessions* off a revoked
//! server within the warning period ("the load balancer migrates all
//! user sessions on the revoked server to the remaining servers").
//! Sessions are sticky: follow-up requests of a session go to its
//! assigned backend; migration re-pins them. This works because the
//! front-end tier is stateless — session state lives in the back-end
//! tier — so re-pinning is safe (§4.4).

// spotweb-lint: allow(ordered-serialization) -- assignment map is probed by key only, never iterated; rendered output walks per_backend (BTreeMap + insertion-ordered Vecs)
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::backend::BackendId;

/// Deterministic, allocation-free hasher for u64 session ids: one
/// Fibonacci multiply plus an xor-shift to disperse sequential ids.
/// A fixed function (no per-process `RandomState` seed) so the table
/// behaves identically in every run — though nothing may iterate the
/// assignment map anyway (see [`SessionTable`]).
#[derive(Debug, Default)]
pub struct SessionIdHasher(u64);

impl Hasher for SessionIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 writes (unused by u64 keys).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

/// Session-id → backend assignment table.
///
/// The assignment map sits on the per-arrival routing path (one
/// lookup per sticky request), so it is a hash map with a fixed
/// [`SessionIdHasher`] rather than a `BTreeMap` — O(1) probes, no
/// tree walk. Determinism holds structurally: the map is only ever
/// probed by key (lookup/insert/remove), never iterated, so its
/// internal order cannot reach any output. Order-sensitive walks
/// (migration, dumps) go through the `per_backend` reverse index,
/// whose `Vec`s preserve insertion order.
#[derive(Debug, Clone, Default)]
pub struct SessionTable {
    // spotweb-lint: allow(ordered-serialization) -- probed by key only, never iterated; fixed SessionIdHasher keeps the table run-deterministic anyway
    assignments: HashMap<u64, BackendId, BuildHasherDefault<SessionIdHasher>>,
    /// Reverse index: backend → session count (cheap migration scans).
    per_backend: BTreeMap<BackendId, Vec<u64>>,
}

impl SessionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked sessions.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when no sessions are tracked.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Backend currently pinned for `session`, if any.
    pub fn lookup(&self, session: u64) -> Option<BackendId> {
        self.assignments.get(&session).copied()
    }

    /// Pin `session` to `backend` (re-pins if already assigned).
    pub fn assign(&mut self, session: u64, backend: BackendId) {
        if let Some(old) = self.assignments.insert(session, backend) {
            if old != backend {
                if let Some(v) = self.per_backend.get_mut(&old) {
                    v.retain(|s| *s != session);
                }
            } else {
                return;
            }
        }
        self.per_backend.entry(backend).or_default().push(session);
    }

    /// Remove a finished session.
    pub fn remove(&mut self, session: u64) {
        if let Some(b) = self.assignments.remove(&session) {
            if let Some(v) = self.per_backend.get_mut(&b) {
                v.retain(|s| *s != session);
            }
        }
    }

    /// Sessions currently pinned to `backend`.
    pub fn sessions_on(&self, backend: BackendId) -> Vec<u64> {
        self.per_backend.get(&backend).cloned().unwrap_or_default()
    }

    /// Number of sessions pinned to `backend`.
    pub fn count_on(&self, backend: BackendId) -> usize {
        self.per_backend.get(&backend).map_or(0, |v| v.len())
    }

    /// Drop the (empty) reverse-index entry for a backend that is being
    /// compacted out of the balancer, so the `per_backend` map stays
    /// O(live backends) over arbitrarily long runs. The backend must
    /// have no pinned sessions left — compaction only happens after
    /// [`server_died`](crate::LoadBalancer::server_died) removed them.
    pub fn forget_backend(&mut self, backend: BackendId) {
        if let Some(v) = self.per_backend.remove(&backend) {
            assert!(
                v.is_empty(),
                "cannot forget a backend with {} pinned sessions",
                v.len()
            );
        }
    }

    /// Migrate every session off `from`, assigning each via `pick`
    /// (called once per session; returning `None` — or `from` itself —
    /// leaves the session pinned where it is, to be re-homed lazily
    /// once capacity appears). Returns `(migrated, stayed)` counts.
    pub fn migrate_all(
        &mut self,
        from: BackendId,
        mut pick: impl FnMut() -> Option<BackendId>,
    ) -> (usize, usize) {
        let sessions = self.sessions_on(from);
        let mut migrated = 0;
        let mut stayed = 0;
        for s in sessions {
            match pick() {
                Some(to) if to != from => {
                    self.assign(s, to);
                    migrated += 1;
                }
                _ => stayed += 1,
            }
        }
        (migrated, stayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_lookup_remove() {
        let mut t = SessionTable::new();
        t.assign(1, 10);
        t.assign(2, 10);
        t.assign(3, 11);
        assert_eq!(t.lookup(1), Some(10));
        assert_eq!(t.count_on(10), 2);
        t.remove(1);
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.count_on(10), 1);
    }

    #[test]
    fn reassign_moves_reverse_index() {
        let mut t = SessionTable::new();
        t.assign(1, 10);
        t.assign(1, 11);
        assert_eq!(t.count_on(10), 0);
        assert_eq!(t.count_on(11), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reassign_same_backend_no_duplicates() {
        let mut t = SessionTable::new();
        t.assign(1, 10);
        t.assign(1, 10);
        assert_eq!(t.count_on(10), 1);
    }

    #[test]
    fn migrate_all_moves_everything() {
        let mut t = SessionTable::new();
        for s in 0..10 {
            t.assign(s, 5);
        }
        let mut rr = 0;
        let (migrated, dropped) = t.migrate_all(5, || {
            rr += 1;
            Some(6 + (rr % 2))
        });
        assert_eq!(migrated, 10);
        assert_eq!(dropped, 0);
        assert_eq!(t.count_on(5), 0);
        assert_eq!(t.count_on(6) + t.count_on(7), 10);
    }

    #[test]
    fn migrate_keeps_sessions_when_no_target() {
        let mut t = SessionTable::new();
        t.assign(1, 5);
        t.assign(2, 5);
        let (migrated, stayed) = t.migrate_all(5, || None);
        assert_eq!(migrated, 0);
        assert_eq!(stayed, 2);
        assert_eq!(t.count_on(5), 2, "sessions stay pinned");
    }
}
