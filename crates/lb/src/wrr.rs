//! Smooth weighted round robin.
//!
//! The classic nginx algorithm: each pick adds every candidate's
//! effective weight to its current counter, selects the largest
//! counter, and subtracts the weight total from the winner. The
//! resulting sequence interleaves candidates proportionally to weight
//! without the bursts of naive WRR. Weights are re-programmable online
//! — the hook SpotWeb's optimizer uses after every portfolio change.

/// Smooth WRR state over candidates identified by index.
///
/// ```
/// use spotweb_lb::SmoothWrr;
///
/// let mut wrr = SmoothWrr::new(vec![3.0, 1.0]);
/// let picks: Vec<usize> = (0..4).map(|_| wrr.pick(|_| true).unwrap()).collect();
/// // Weight 3:1 → three picks of 0 and one of 1 per cycle,
/// // interleaved rather than bursty.
/// assert_eq!(picks.iter().filter(|&&p| p == 0).count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SmoothWrr {
    weights: Vec<f64>,
    current: Vec<f64>,
}

impl SmoothWrr {
    /// Create with initial weights (non-negative; all-zero is allowed
    /// and simply never picks).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0), "weights must be >= 0");
        let n = weights.len();
        SmoothWrr {
            weights,
            current: vec![0.0; n],
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Replace all weights (counters are kept, so traffic shifts
    /// smoothly rather than restarting the cycle).
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.current.len(), "candidate count fixed");
        assert!(weights.iter().all(|w| *w >= 0.0));
        self.weights = weights;
    }

    /// Update one candidate's weight.
    pub fn set_weight(&mut self, idx: usize, weight: f64) {
        assert!(weight >= 0.0);
        self.weights[idx] = weight;
    }

    /// Grow the candidate set (new backend).
    pub fn push(&mut self, weight: f64) {
        assert!(weight >= 0.0);
        self.weights.push(weight);
        self.current.push(0.0);
    }

    /// Remove candidate `idx`, shifting later candidates down by one.
    ///
    /// Used when a dead backend is compacted out of the balancer: a
    /// retired candidate can never become eligible again, so dropping
    /// its (weight, counter) pair is invisible to every future
    /// [`pick`](Self::pick) — `pick` only reads entries that are
    /// eligible with positive weight, and the surviving candidates keep
    /// their counters, preserving the smooth-WRR cycle phase exactly.
    pub fn remove(&mut self, idx: usize) {
        self.weights.remove(idx);
        self.current.remove(idx);
    }

    /// Pick the next candidate among those where `eligible(idx)` holds.
    /// Returns `None` when no eligible candidate has positive weight.
    pub fn pick(&mut self, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let mut total = 0.0;
        let mut best: Option<usize> = None;
        for i in 0..self.weights.len() {
            if !eligible(i) || self.weights[i] <= 0.0 {
                continue;
            }
            self.current[i] += self.weights[i];
            total += self.weights[i];
            match best {
                None => best = Some(i),
                Some(b) if self.current[i] > self.current[b] => best = Some(i),
                _ => {}
            }
        }
        if let Some(b) = best {
            self.current[b] -= total;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_picks(wrr: &mut SmoothWrr, picks: usize) -> Vec<usize> {
        let mut counts = vec![0usize; wrr.len()];
        for _ in 0..picks {
            let i = wrr.pick(|_| true).unwrap();
            counts[i] += 1;
        }
        counts
    }

    #[test]
    fn proportional_distribution() {
        let mut wrr = SmoothWrr::new(vec![3.0, 1.0]);
        let counts = count_picks(&mut wrr, 400);
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn smooth_interleaving() {
        // Weights 2:1:1 → smooth WRR spreads the heavy candidate out;
        // it may touch at cycle boundaries but never runs 3+ in a row
        // (naive WRR would emit 0,0,1,2 every cycle).
        let mut wrr = SmoothWrr::new(vec![2.0, 1.0, 1.0]);
        let mut run = 0;
        for _ in 0..100 {
            let i = wrr.pick(|_| true).unwrap();
            if i == 0 {
                run += 1;
                assert!(run <= 2, "heavy candidate ran {run} times in a row");
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn eligibility_filter_respected() {
        let mut wrr = SmoothWrr::new(vec![5.0, 1.0]);
        for _ in 0..10 {
            assert_eq!(wrr.pick(|i| i == 1), Some(1));
        }
    }

    #[test]
    fn no_eligible_returns_none() {
        let mut wrr = SmoothWrr::new(vec![1.0, 1.0]);
        assert_eq!(wrr.pick(|_| false), None);
        let mut zero = SmoothWrr::new(vec![0.0]);
        assert_eq!(zero.pick(|_| true), None);
    }

    #[test]
    fn online_weight_change_shifts_traffic() {
        let mut wrr = SmoothWrr::new(vec![1.0, 1.0]);
        let before = count_picks(&mut wrr, 100);
        assert_eq!(before, vec![50, 50]);
        wrr.set_weights(vec![4.0, 1.0]);
        let after = count_picks(&mut wrr, 100);
        assert_eq!(after, vec![80, 20]);
    }

    #[test]
    fn remove_is_invisible_to_survivors() {
        // Two live candidates with a zero-weight corpse between them:
        // compacting the corpse out must not disturb the survivors'
        // smooth-WRR cycle phase.
        let mut a = SmoothWrr::new(vec![3.0, 1.0, 2.0]);
        a.set_weight(1, 0.0);
        let _ = a.pick(|_| true);
        let mut b = a.clone();
        b.remove(1);
        for _ in 0..50 {
            let pa = a.pick(|_| true).unwrap();
            let pb = b.pick(|_| true).unwrap();
            let pa_compact = if pa > 1 { pa - 1 } else { pa };
            assert_eq!(pa_compact, pb);
        }
    }

    #[test]
    fn push_adds_candidate() {
        let mut wrr = SmoothWrr::new(vec![1.0]);
        wrr.push(1.0);
        let counts = count_picks(&mut wrr, 100);
        assert_eq!(counts, vec![50, 50]);
    }
}
