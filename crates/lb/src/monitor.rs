//! Application-level monitoring (paper §5.2).
//!
//! The paper's load balancer "collects application level monitoring
//! data, monitoring the response time distribution, the request
//! arrival rate, the system throughput, the queue lengths of the
//! servers, and the dropped request rate", exposed over REST to the
//! workload predictor. [`MonitorWindow`] is that component: a rolling
//! time window of per-request records reduced on demand to the
//! statistics the predictors and the admission logic consume.

use std::collections::VecDeque;

/// Reduced statistics over the monitoring window.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Window length actually covered (seconds).
    pub window_secs: f64,
    /// Request arrival rate (req/s), served + dropped.
    pub arrival_rate: f64,
    /// Served-request throughput (req/s).
    pub throughput: f64,
    /// Drop rate (fraction of arrivals).
    pub drop_rate: f64,
    /// Mean response time (s) over served requests.
    pub mean_latency: f64,
    /// Median response time (s).
    pub p50_latency: f64,
    /// Tail response time (s).
    pub p99_latency: f64,
}

/// Constant-time rate statistics over the monitoring window.
///
/// The subset of [`MonitorSnapshot`] that the control loop consumes
/// every interval (arrival rate for the predictor, throughput and drop
/// rate for the rollups). Unlike [`MonitorWindow::snapshot`], which
/// sorts every served latency in the window (`O(n log n)` — ~72 M
/// records at day scale), [`MonitorWindow::rates`] reads two running
/// counters and is O(1) after eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorRates {
    /// Window length actually covered (seconds).
    pub window_secs: f64,
    /// Request arrival rate (req/s), served + dropped.
    pub arrival_rate: f64,
    /// Served-request throughput (req/s).
    pub throughput: f64,
    /// Drop rate (fraction of arrivals).
    pub drop_rate: f64,
}

/// Rolling per-request record window.
#[derive(Debug, Clone)]
pub struct MonitorWindow {
    window_secs: f64,
    /// (arrival time, latency) — latency NaN marks a drop.
    records: VecDeque<(f64, f64)>,
    /// Served (finite-latency) records currently in `records`,
    /// maintained incrementally on push/evict so rate statistics never
    /// rescan the window.
    served_in_window: usize,
}

impl MonitorWindow {
    /// Keep the most recent `window_secs` of records.
    pub fn new(window_secs: f64) -> Self {
        assert!(window_secs > 0.0);
        MonitorWindow {
            window_secs,
            records: VecDeque::new(),
            served_in_window: 0,
        }
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, l)) = self.records.front() {
            if now - t > self.window_secs {
                self.records.pop_front();
                if l.is_finite() {
                    self.served_in_window -= 1;
                }
            } else {
                break;
            }
        }
    }

    /// Record a served request that arrived at `arrival` and took
    /// `latency` seconds.
    pub fn record_served(&mut self, arrival: f64, latency: f64) {
        assert!(latency >= 0.0 && latency.is_finite());
        self.records.push_back((arrival, latency));
        self.served_in_window += 1;
        self.evict(arrival);
    }

    /// Record a dropped request at `arrival`.
    pub fn record_dropped(&mut self, arrival: f64) {
        self.records.push_back((arrival, f64::NAN));
        self.evict(arrival);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` before any record.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reduce the window to rate statistics at time `now` in O(1).
    ///
    /// Produces bit-identical `window_secs` / `arrival_rate` /
    /// `throughput` / `drop_rate` to [`snapshot`](Self::snapshot) —
    /// the covered-window clamp and the divisions are the same
    /// expressions — without collecting or sorting latencies, so the
    /// per-interval control loop stays constant-work no matter how
    /// many requests the window holds.
    ///
    /// ```
    /// use spotweb_lb::MonitorWindow;
    ///
    /// let mut m = MonitorWindow::new(10.0);
    /// for k in 0..20 {
    ///     m.record_served(k as f64 * 0.5, 0.1); // 2 req/s for 10 s
    /// }
    /// m.record_dropped(9.5);
    /// let r = m.rates(9.5);
    /// assert!((r.arrival_rate - 21.0 / 9.5).abs() < 1e-12);
    /// assert!((r.drop_rate - 1.0 / 21.0).abs() < 1e-12);
    /// // Same floats as the full snapshot, at O(1) instead of
    /// // O(n log n):
    /// let s = m.snapshot(9.5);
    /// assert_eq!(r.arrival_rate, s.arrival_rate);
    /// assert_eq!(r.throughput, s.throughput);
    /// ```
    pub fn rates(&mut self, now: f64) -> MonitorRates {
        self.evict(now);
        let covered = match self.records.front() {
            Some(&(t, _)) => (now - t).max(1e-9).min(self.window_secs),
            None => self.window_secs,
        };
        let total = self.records.len() as f64;
        let served = self.served_in_window as f64;
        MonitorRates {
            window_secs: covered,
            arrival_rate: total / covered,
            throughput: served / covered,
            drop_rate: if total > 0.0 {
                (total - served) / total
            } else {
                0.0
            },
        }
    }

    /// Reduce the window to a snapshot at time `now`.
    pub fn snapshot(&mut self, now: f64) -> MonitorSnapshot {
        self.evict(now);
        let covered = match self.records.front() {
            Some(&(t, _)) => (now - t).max(1e-9).min(self.window_secs),
            None => self.window_secs,
        };
        let total = self.records.len() as f64;
        let mut latencies: Vec<f64> = self
            .records
            .iter()
            .filter(|(_, l)| l.is_finite())
            .map(|(_, l)| *l)
            .collect();
        let served = latencies.len() as f64;
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        MonitorSnapshot {
            window_secs: covered,
            arrival_rate: total / covered,
            throughput: served / covered,
            drop_rate: if total > 0.0 {
                (total - served) / total
            } else {
                0.0
            },
            mean_latency: spotweb_linalg_mean(&latencies),
            p50_latency: percentile(&latencies, 50.0),
            p99_latency: percentile(&latencies, 99.0),
        }
    }
}

// Local helpers: `spotweb-lb` deliberately depends on nothing but the
// (itself dependency-free) telemetry crate, so the two tiny statistics
// it needs are inlined rather than pulling in the linalg crate for
// them.
fn spotweb_linalg_mean(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_over_window() {
        let mut m = MonitorWindow::new(10.0);
        for k in 0..20 {
            m.record_served(k as f64 * 0.5, 0.1); // 2 req/s for 10 s
        }
        let s = m.snapshot(9.5);
        assert!(
            (s.arrival_rate - 2.0).abs() < 0.15,
            "rate {}",
            s.arrival_rate
        );
        assert_eq!(s.drop_rate, 0.0);
        assert!((s.mean_latency - 0.1).abs() < 1e-12);
    }

    #[test]
    fn drops_counted() {
        let mut m = MonitorWindow::new(10.0);
        m.record_served(1.0, 0.2);
        m.record_dropped(1.5);
        m.record_served(2.0, 0.4);
        m.record_dropped(2.5);
        let s = m.snapshot(3.0);
        assert!((s.drop_rate - 0.5).abs() < 1e-12);
        assert!((s.throughput * s.window_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn old_records_evicted() {
        let mut m = MonitorWindow::new(5.0);
        m.record_served(0.0, 0.1);
        m.record_served(10.0, 0.3);
        let s = m.snapshot(10.0);
        assert_eq!(m.len(), 1);
        assert!((s.mean_latency - 0.3).abs() < 1e-12);
    }

    #[test]
    fn percentiles_ordered() {
        let mut m = MonitorWindow::new(100.0);
        for k in 1..=100 {
            m.record_served(k as f64 * 0.1, k as f64 / 100.0);
        }
        let s = m.snapshot(10.0);
        assert!(s.p50_latency < s.p99_latency);
        assert!(s.p99_latency <= 1.0);
    }

    #[test]
    fn rates_match_snapshot_bitwise() {
        // The O(1) fast path must agree with the full reduction float
        // for float, including across evictions and drops.
        let mut m = MonitorWindow::new(5.0);
        for k in 0..200 {
            let t = k as f64 * 0.25;
            if k % 7 == 0 {
                m.record_dropped(t);
            } else {
                m.record_served(t, 0.01 * (k % 13) as f64);
            }
            let now = t + 0.1;
            let r = m.rates(now);
            let s = m.snapshot(now);
            assert_eq!(r.window_secs, s.window_secs);
            assert_eq!(r.arrival_rate, s.arrival_rate);
            assert_eq!(r.throughput, s.throughput);
            assert_eq!(r.drop_rate, s.drop_rate);
        }
    }

    #[test]
    fn empty_window_is_sane() {
        let mut m = MonitorWindow::new(10.0);
        let s = m.snapshot(0.0);
        assert_eq!(s.arrival_rate, 0.0);
        assert_eq!(s.drop_rate, 0.0);
        assert!(s.p50_latency.is_nan());
    }
}
