//! Admission control.
//!
//! §4.4: when replacements cannot start within the warning period,
//! "the load-balancer acts as an admission controller, dropping or
//! delaying requests that can not be served without overloading the
//! running servers to protect the remaining servers from becoming
//! overwhelmed."
//!
//! *Delaying* happens naturally in the backend FIFO queues; what the
//! admission controller bounds is **how much** delay may accumulate:
//! it estimates the queueing wait a new request would see from the
//! cluster's current in-flight count and effective capacity, and drops
//! the request when that estimate exceeds the configured budget. This
//! keeps the decision stateless (no phantom backlog to reconcile with
//! retries) while still shedding exactly the load that cannot be
//! served in time.

/// Decision for one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Route normally (may still queue briefly at a backend).
    Admit,
    /// Reject to protect the cluster.
    Drop,
}

/// Queue-wait-bounding admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Target maximum utilization of effective capacity.
    pub max_utilization: f64,
    /// Maximum estimated queueing delay before dropping (seconds).
    pub max_delay_secs: f64,
}

impl AdmissionController {
    /// New controller; `max_utilization ∈ (0, 1]`.
    pub fn new(max_utilization: f64, max_delay_secs: f64) -> Self {
        assert!(max_utilization > 0.0 && max_utilization <= 1.0);
        assert!(max_delay_secs >= 0.0);
        AdmissionController {
            max_utilization,
            max_delay_secs,
        }
    }

    /// Estimated queueing wait (seconds) for a request joining a
    /// cluster with `in_flight` requests in the system, aggregate
    /// effective capacity `capacity_rps`, and per-request service time
    /// `service_secs`.
    ///
    /// The cluster behaves like `c = capacity·service` parallel slots;
    /// the `in_flight − c` excess drains at `capacity` req/s.
    pub fn estimated_wait(&self, in_flight: u64, capacity_rps: f64, service_secs: f64) -> f64 {
        if capacity_rps <= 0.0 {
            return f64::INFINITY;
        }
        let usable = capacity_rps * self.max_utilization;
        let slots = (usable * service_secs).max(1.0);
        let excess = in_flight as f64 - slots;
        if excess <= 0.0 {
            0.0
        } else {
            excess / usable
        }
    }

    /// Decide for one arriving request.
    pub fn decide(
        &self,
        in_flight: u64,
        capacity_rps: f64,
        service_secs: f64,
    ) -> AdmissionDecision {
        if self.estimated_wait(in_flight, capacity_rps, service_secs) > self.max_delay_secs {
            AdmissionDecision::Drop
        } else {
            AdmissionDecision::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_when_idle() {
        let ac = AdmissionController::new(0.95, 2.0);
        assert_eq!(ac.decide(0, 100.0, 0.25), AdmissionDecision::Admit);
        assert_eq!(ac.estimated_wait(0, 100.0, 0.25), 0.0);
    }

    #[test]
    fn admits_within_delay_budget() {
        let ac = AdmissionController::new(1.0, 2.0);
        // slots = 25; 100 in flight → excess 75 → wait 0.75 s < 2 s.
        assert_eq!(ac.decide(100, 100.0, 0.25), AdmissionDecision::Admit);
        assert!((ac.estimated_wait(100, 100.0, 0.25) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn drops_beyond_delay_budget() {
        let ac = AdmissionController::new(1.0, 2.0);
        // excess 275 → wait 2.75 s > 2 s.
        assert_eq!(ac.decide(300, 100.0, 0.25), AdmissionDecision::Drop);
    }

    #[test]
    fn zero_capacity_always_drops() {
        let ac = AdmissionController::new(0.9, 5.0);
        assert_eq!(ac.decide(0, 0.0, 0.25), AdmissionDecision::Drop);
    }

    #[test]
    fn utilization_headroom_tightens_budget() {
        let strict = AdmissionController::new(0.5, 1.0);
        let loose = AdmissionController::new(1.0, 1.0);
        // Same load: the strict controller sees a longer wait.
        assert!(strict.estimated_wait(100, 100.0, 0.25) > loose.estimated_wait(100, 100.0, 0.25));
    }
}
