//! Backend (application server) state tracked by the load balancer.

/// Identifier of a backend within the balancer.
pub type BackendId = usize;

/// Lifecycle of a backend on a transient server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendState {
    /// VM requested; serving from `ready_at` (startup + app load).
    Starting {
        /// Simulation time at which the backend starts serving.
        ready_at: f64,
    },
    /// Serving traffic.
    Up,
    /// Revocation warning received; drains until `deadline`, then gone.
    Draining {
        /// Simulation time at which the cloud terminates the server.
        deadline: f64,
    },
    /// Terminated (revoked or decommissioned).
    Down,
}

/// A backend server as seen by the balancer.
#[derive(Debug, Clone)]
pub struct Backend {
    /// Balancer-local identifier.
    pub id: BackendId,
    /// Market the server was bought from (optimizer bookkeeping).
    pub market: usize,
    /// Nominal capacity in requests/second.
    pub capacity_rps: f64,
    /// WRR weight (usually proportional to capacity).
    pub weight: f64,
    /// Lifecycle state.
    pub state: BackendState,
    /// Requests currently in flight on this backend.
    pub in_flight: u64,
    /// End of the cache warm-up window: until then the backend serves
    /// at reduced capacity (§6.1 measures 30–90 s for Memcached).
    pub warm_until: f64,
    /// Capacity multiplier while warming up (cold caches slow requests).
    pub warm_factor: f64,
}

impl Backend {
    /// A backend that starts booting at `now` and is ready after
    /// `startup_secs`, then warms its cache for `warmup_secs`.
    pub fn starting(
        id: BackendId,
        market: usize,
        capacity_rps: f64,
        now: f64,
        startup_secs: f64,
        warmup_secs: f64,
    ) -> Self {
        assert!(capacity_rps > 0.0);
        Backend {
            id,
            market,
            capacity_rps,
            weight: capacity_rps,
            state: BackendState::Starting {
                ready_at: now + startup_secs,
            },
            in_flight: 0,
            warm_until: now + startup_secs + warmup_secs,
            warm_factor: 0.5,
        }
    }

    /// A backend that is already serving (cluster bootstrap).
    pub fn up(id: BackendId, market: usize, capacity_rps: f64) -> Self {
        Backend {
            id,
            market,
            capacity_rps,
            weight: capacity_rps,
            state: BackendState::Up,
            in_flight: 0,
            warm_until: 0.0,
            warm_factor: 0.5,
        }
    }

    /// Is the backend eligible for *new* requests at time `now`?
    /// Draining and down backends are not; starting backends only once
    /// ready.
    pub fn accepts_new(&self, now: f64) -> bool {
        match self.state {
            BackendState::Up => true,
            BackendState::Starting { ready_at } => now >= ready_at,
            BackendState::Draining { .. } | BackendState::Down => false,
        }
    }

    /// Effective serving capacity at `now` (zero unless serving;
    /// reduced during cache warm-up; a draining backend still serves
    /// its in-flight work until the deadline).
    pub fn effective_capacity(&self, now: f64) -> f64 {
        let serving = match self.state {
            BackendState::Up => true,
            BackendState::Starting { ready_at } => now >= ready_at,
            BackendState::Draining { deadline } => now < deadline,
            BackendState::Down => false,
        };
        if !serving {
            return 0.0;
        }
        if now < self.warm_until {
            self.capacity_rps * self.warm_factor
        } else {
            self.capacity_rps
        }
    }

    /// Current utilization estimate given an expected per-request
    /// service time (`in_flight / (capacity · service_time)` ≈ ρ).
    pub fn utilization(&self, now: f64, service_secs: f64) -> f64 {
        let cap = self.effective_capacity(now);
        if cap <= 0.0 {
            return f64::INFINITY;
        }
        self.in_flight as f64 / (cap * service_secs).max(1e-9)
    }

    /// Promote `Starting` to `Up` once the clock passes `ready_at`.
    pub fn tick(&mut self, now: f64) {
        if let BackendState::Starting { ready_at } = self.state {
            if now >= ready_at {
                self.state = BackendState::Up;
            }
        }
        if let BackendState::Draining { deadline } = self.state {
            if now >= deadline {
                self.state = BackendState::Down;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starting_backend_becomes_ready() {
        let mut b = Backend::starting(0, 1, 100.0, 0.0, 60.0, 30.0);
        assert!(!b.accepts_new(10.0));
        assert_eq!(b.effective_capacity(10.0), 0.0);
        assert!(b.accepts_new(61.0));
        // Warm-up: half capacity until t = 90.
        assert_eq!(b.effective_capacity(61.0), 50.0);
        assert_eq!(b.effective_capacity(95.0), 100.0);
        b.tick(61.0);
        assert_eq!(b.state, BackendState::Up);
    }

    #[test]
    fn draining_serves_but_rejects_new() {
        let mut b = Backend::up(0, 0, 100.0);
        b.state = BackendState::Draining { deadline: 120.0 };
        assert!(!b.accepts_new(50.0));
        assert_eq!(b.effective_capacity(50.0), 100.0);
        assert_eq!(b.effective_capacity(121.0), 0.0);
        b.tick(121.0);
        assert_eq!(b.state, BackendState::Down);
    }

    #[test]
    fn utilization_scales_with_in_flight() {
        let mut b = Backend::up(0, 0, 100.0);
        b.warm_until = 0.0;
        b.in_flight = 50;
        // 100 rps × 0.5 s service time → 50 slots → ρ = 1.
        assert!((b.utilization(10.0, 0.5) - 1.0).abs() < 1e-12);
        b.in_flight = 25;
        assert!((b.utilization(10.0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn down_backend_has_infinite_utilization() {
        let mut b = Backend::up(0, 0, 100.0);
        b.state = BackendState::Down;
        assert!(b.utilization(0.0, 0.5).is_infinite());
    }
}
