//! Transiency-aware load balancing (paper §4.4, §6.1).
//!
//! SpotWeb's load balancer is an adaptive weighted-round-robin (WRR)
//! router that additionally understands *transiency*: cloud revocation
//! warnings, heterogeneous and changing backend capacities, server
//! startup delays, and overload admission control. The paper built it
//! as a wrapper around HAProxy; here the balancer is a native library
//! the discrete-event simulator (and any embedding application) drives.
//!
//! Key behaviours reproduced from the paper:
//!
//! * **Adaptive WRR** ([`wrr`]): smooth weighted round robin whose
//!   weights can be re-programmed online each time the optimizer
//!   computes a new portfolio ("the weights are set to be equal to the
//!   relative weight of a market within the portfolio").
//! * **Revocation warnings** ([`balancer`]): on a warning the backend
//!   enters *draining* — no new requests or sessions are routed to it,
//!   and its sessions migrate to surviving backends with spare
//!   capacity within the warning window `W`.
//! * **Reactive reprovisioning hook**: when the survivors cannot absorb
//!   the drained load, the balancer reports the capacity gap so the
//!   controller can start replacement servers.
//! * **Admission control** ([`admission`]): when utilization exceeds a
//!   threshold (replacements still booting), excess requests are
//!   dropped/delayed to protect the remaining servers.
//! * **Vanilla mode**: the Fig. 4(a) baseline — a WRR that ignores
//!   warnings and keeps routing to a revoked server until it dies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod backend;
pub mod balancer;
pub mod monitor;
pub mod session;
pub mod wrr;

pub use admission::AdmissionController;
pub use backend::{Backend, BackendId, BackendState};
pub use balancer::{
    LbStats, LoadBalancer, LoadBalancerConfig, RetiredSummary, RouteOutcome, WarningReport,
};
pub use monitor::{MonitorRates, MonitorSnapshot, MonitorWindow};
pub use session::SessionTable;
pub use spotweb_telemetry::{TelemetrySink, TraceEvent};
pub use wrr::SmoothWrr;
