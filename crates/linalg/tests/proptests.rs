//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use spotweb_linalg::{lstsq, Cholesky, Ldlt, Matrix, Qr};

/// Strategy: a random matrix with entries in [-5, 5].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: a random SPD matrix built as B Bᵀ + εI.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |b| {
        let mut m = b.matmul(&b.transpose()).unwrap();
        m.add_diag_mut(0.5);
        m
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in spd_strategy(5)) {
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        let err = rec.sub(&a).unwrap().max_abs();
        prop_assert!(err < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn cholesky_solve_residual(a in spd_strategy(6), x in prop::collection::vec(-3.0f64..3.0, 6)) {
        let b = a.matvec(&x).unwrap();
        let got = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let r = a.matvec(&got).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-6 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn ldlt_matches_cholesky_on_spd(a in spd_strategy(5), b in prop::collection::vec(-3.0f64..3.0, 5)) {
        let x1 = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x2 = Ldlt::factor(&a).unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6 * (1.0 + u.abs()));
        }
    }

    #[test]
    fn qr_least_squares_satisfies_normal_equations(
        a in matrix_strategy(8, 3),
        b in prop::collection::vec(-3.0f64..3.0, 8),
    ) {
        // Skip (rare) nearly rank-deficient draws.
        let g = a.gram();
        if Cholesky::factor(&g).is_err() {
            return Ok(());
        }
        let x = match Qr::factor(&a).and_then(|f| f.solve_lstsq(&b)) {
            Ok(x) => x,
            Err(_) => return Ok(()),
        };
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.matvec_transpose(&r).unwrap();
        let scale = 1.0 + a.max_abs() * a.max_abs();
        for v in grad {
            prop_assert!(v.abs() < 1e-6 * scale, "normal-equation residual {v}");
        }
    }

    #[test]
    fn lstsq_square_equals_direct_solve(a in spd_strategy(4), x in prop::collection::vec(-2.0f64..2.0, 4)) {
        let b = a.matvec(&x).unwrap();
        let got = lstsq(&a, &b).unwrap();
        for (u, v) in got.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-5 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn transpose_involution(a in matrix_strategy(4, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associativity(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let err = left.sub(&right).unwrap().max_abs();
        prop_assert!(err < 1e-9 * (1.0 + left.max_abs()));
    }
}
