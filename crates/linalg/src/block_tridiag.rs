//! Block-tridiagonal Cholesky factorization.
//!
//! SpotWeb's multi-period KKT matrix has a special sparsity: the risk
//! and constraint terms act within one planning period (diagonal
//! `N × N` blocks) and only the churn term couples *adjacent* periods
//! (sub-/super-diagonal blocks). For a horizon `H` the matrix is
//! block-tridiagonal:
//!
//! ```text
//! K = ⎡D₀  E₁ᵀ         ⎤
//!     ⎢E₁  D₁  E₂ᵀ     ⎥
//!     ⎢    E₂  D₂  ⋱   ⎥
//!     ⎣        ⋱   ⋱   ⎦
//! ```
//!
//! The block Cholesky factorization costs `O(H·N³)` instead of the
//! dense `O((HN)³)` — an `H²` speedup that makes long look-ahead
//! horizons as cheap per period as short ones (the paper's Fig. 7(b)
//! scalability claim). The factor is block-bidiagonal:
//! `L = bidiag(L₀…, B₁…)` with `Bᵢ = Eᵢ·Lᵢ₋₁⁻ᵀ` and
//! `Lᵢ = chol(Dᵢ − Bᵢ·Bᵢᵀ)`.

use crate::cholesky::Cholesky;
use crate::{LinalgError, Matrix, Result};

/// A Cholesky factorization of a symmetric positive definite
/// block-tridiagonal matrix.
#[derive(Debug, Clone)]
pub struct BlockTridiagCholesky {
    /// Per-block Cholesky factors of the Schur complements.
    diag: Vec<Cholesky>,
    /// Sub-diagonal blocks of the block factor (`B_i`, `i ∈ 1..H`).
    sub: Vec<Matrix>,
    /// Block dimension `N`.
    block: usize,
}

impl BlockTridiagCholesky {
    /// Factor from diagonal blocks `diag[t]` (symmetric PD after Schur
    /// updates) and sub-diagonal coupling blocks `sub[t]` (the block at
    /// row `t+1`, column `t`; pass an empty vec for block-diagonal).
    pub fn factor(diag: &[Matrix], sub: &[Matrix]) -> Result<Self> {
        if diag.is_empty() {
            return Err(LinalgError::DimensionMismatch {
                context: "block tridiag: need at least one diagonal block",
            });
        }
        if sub.len() + 1 != diag.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "block tridiag: need H-1 coupling blocks for H diagonal blocks",
            });
        }
        let n = diag[0].rows();
        for d in diag {
            if d.rows() != n || d.cols() != n {
                return Err(LinalgError::DimensionMismatch {
                    context: "block tridiag: inconsistent diagonal block shape",
                });
            }
        }
        for e in sub {
            if e.rows() != n || e.cols() != n {
                return Err(LinalgError::DimensionMismatch {
                    context: "block tridiag: inconsistent coupling block shape",
                });
            }
        }

        let h = diag.len();
        let mut factors: Vec<Cholesky> = Vec::with_capacity(h);
        let mut subs: Vec<Matrix> = Vec::with_capacity(h.saturating_sub(1));
        factors.push(Cholesky::factor(&diag[0])?);
        for t in 1..h {
            let prev = &factors[t - 1];
            // B = E · L⁻ᵀ  ⇔  for each row e of E, solve L y = e.
            let e = &sub[t - 1];
            let mut b = Matrix::zeros(n, n);
            let mut row_buf = vec![0.0; n];
            for r in 0..n {
                row_buf.copy_from_slice(e.row(r));
                prev.forward_solve_in_place(&mut row_buf)?;
                b.row_mut(r).copy_from_slice(&row_buf);
            }
            // Schur complement S = D − B Bᵀ.
            let mut s = diag[t].clone();
            let bbt = b.matmul(&b.transpose()).expect("square blocks");
            for i in 0..n {
                for j in 0..n {
                    s[(i, j)] -= bbt[(i, j)];
                }
            }
            factors.push(Cholesky::factor(&s)?);
            subs.push(b);
        }
        Ok(BlockTridiagCholesky {
            diag: factors,
            sub: subs,
            block: n,
        })
    }

    /// Number of diagonal blocks (`H`).
    pub fn blocks(&self) -> usize {
        self.diag.len()
    }

    /// Total dimension (`H · N`).
    pub fn dim(&self) -> usize {
        self.blocks() * self.block
    }

    /// Solve `K x = b` in place.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                context: "block tridiag solve: rhs length mismatch",
            });
        }
        let n = self.block;
        let h = self.blocks();
        // Forward: solve the block-bidiagonal L z = b.
        //   z₀ = L₀⁻¹ b₀; z_t = L_t⁻¹ (b_t − B_t z_{t−1}).
        let mut zt_prev = vec![0.0; n];
        for t in 0..h {
            let (lo, hi) = (t * n, (t + 1) * n);
            if t > 0 {
                let b = &self.sub[t - 1];
                for i in 0..n {
                    let mut s = x[lo + i];
                    let row = b.row(i);
                    for k in 0..n {
                        s -= row[k] * zt_prev[k];
                    }
                    x[lo + i] = s;
                }
            }
            self.diag[t].forward_solve_in_place(&mut x[lo..hi])?;
            zt_prev.copy_from_slice(&x[lo..hi]);
        }
        // Backward: Lᵀ x = z (block upper-bidiagonal with Bᵀ blocks).
        //   x_{H−1} = L_{H−1}⁻ᵀ z_{H−1};
        //   x_t = L_t⁻ᵀ (z_t − B_{t+1}ᵀ x_{t+1}).
        for t in (0..h).rev() {
            let (lo, hi) = (t * n, (t + 1) * n);
            if t + 1 < h {
                let b = &self.sub[t]; // B_{t+1}
                let x_next: Vec<f64> = x[hi..hi + n].to_vec();
                for i in 0..n {
                    // (Bᵀ x)_i = Σ_k B[k,i] x_k.
                    let mut s = 0.0;
                    for k in 0..n {
                        s += b[(k, i)] * x_next[k];
                    }
                    x[lo + i] -= s;
                }
            }
            self.diag[t].backward_solve_in_place(&mut x[lo..hi])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assemble the dense matrix from blocks (test oracle).
    fn assemble(diag: &[Matrix], sub: &[Matrix]) -> Matrix {
        let n = diag[0].rows();
        let h = diag.len();
        let mut k = Matrix::zeros(n * h, n * h);
        for (t, d) in diag.iter().enumerate() {
            k.set_block(t * n, t * n, d);
        }
        for (t, e) in sub.iter().enumerate() {
            k.set_block((t + 1) * n, t * n, e);
            k.set_block(t * n, (t + 1) * n, &e.transpose());
        }
        k
    }

    fn spd_block(seed: f64, n: usize) -> Matrix {
        // Deterministic PD block: B Bᵀ + (2 + seed) I.
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = ((i * 3 + j * 7) as f64 * 0.37 + seed).sin();
            }
        }
        let mut m = b.matmul(&b.transpose()).unwrap();
        m.add_diag_mut(2.0 + seed);
        m
    }

    fn coupling(seed: f64, n: usize) -> Matrix {
        let mut e = Matrix::zeros(n, n);
        for i in 0..n {
            e[(i, i)] = -0.3 - 0.05 * seed;
        }
        // Small off-diagonal dirt so the blocks are not pure scalars.
        e[(0, n - 1)] = 0.05 * (seed + 1.0);
        e
    }

    #[test]
    fn matches_dense_cholesky() {
        let n = 4;
        let h = 5;
        let diag: Vec<Matrix> = (0..h).map(|t| spd_block(t as f64, n)).collect();
        let sub: Vec<Matrix> = (1..h).map(|t| coupling(t as f64, n)).collect();
        let dense = assemble(&diag, &sub);
        let x_true: Vec<f64> = (0..n * h).map(|i| (i as f64 * 0.31).cos()).collect();
        let b = dense.matvec(&x_true).unwrap();

        let block = BlockTridiagCholesky::factor(&diag, &sub).unwrap();
        let mut x = b.clone();
        block.solve_in_place(&mut x).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }

        // Cross-check against the dense factorization.
        let dense_x = Cholesky::factor(&dense).unwrap().solve(&b).unwrap();
        for (a, c) in x.iter().zip(&dense_x) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn single_block_degenerates_to_cholesky() {
        let d = spd_block(0.0, 3);
        let block = BlockTridiagCholesky::factor(std::slice::from_ref(&d), &[]).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let mut x = b.clone();
        block.solve_in_place(&mut x).unwrap();
        let dense = Cholesky::factor(&d).unwrap().solve(&b).unwrap();
        for (a, c) in x.iter().zip(&dense) {
            assert!((a - c).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let d = spd_block(0.0, 3);
        assert!(BlockTridiagCholesky::factor(&[], &[]).is_err());
        assert!(
            BlockTridiagCholesky::factor(std::slice::from_ref(&d), std::slice::from_ref(&d))
                .is_err()
        );
        let small = spd_block(0.0, 2);
        assert!(
            BlockTridiagCholesky::factor(&[d.clone(), small], std::slice::from_ref(&d)).is_err()
        );
    }

    #[test]
    fn rejects_indefinite() {
        let mut d = spd_block(0.0, 3);
        d.scale_mut(-1.0);
        assert!(BlockTridiagCholesky::factor(&[d], &[]).is_err());
    }

    #[test]
    fn long_horizon_stays_accurate() {
        // 40 blocks of size 3: accumulated Schur updates must not lose
        // accuracy.
        let n = 3;
        let h = 40;
        let diag: Vec<Matrix> = (0..h).map(|t| spd_block((t % 7) as f64, n)).collect();
        let sub: Vec<Matrix> = (1..h).map(|t| coupling((t % 5) as f64, n)).collect();
        let dense = assemble(&diag, &sub);
        let x_true: Vec<f64> = (0..n * h).map(|i| ((i * i) as f64 * 0.13).sin()).collect();
        let b = dense.matvec(&x_true).unwrap();
        let block = BlockTridiagCholesky::factor(&diag, &sub).unwrap();
        let mut x = b;
        block.solve_in_place(&mut x).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }
}
