//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// Storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(i, j)` lives at `data[i * cols + j]`. All dimensions are
/// checked at API boundaries and panic-free variants returning
/// [`Result`] are provided for the operations the solvers use.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "from_vec: data length != rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a matrix from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Create a diagonal matrix from a slice of diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matmul: self.cols != other.rows",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: stride-1 inner accesses on both `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product into a caller-provided buffer.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec: x/y length mismatch",
            });
        }
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vector::dot(self.row(i), x);
        }
        Ok(())
    }

    /// Transposed matrix–vector product `selfᵀ * x` into a buffer.
    pub fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec_transpose: x/y length mismatch",
            });
        }
        y.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (yj, &a) in y.iter_mut().zip(self.row(i)) {
                *yj += a * xi;
            }
        }
        Ok(())
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }

    /// Gram matrix `selfᵀ * self` (symmetric positive semidefinite).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for k in 0..self.rows {
            let row = self.row(k);
            for i in 0..n {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "add: shape mismatch",
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "sub: shape mismatch",
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scale every element by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// A scaled copy of the matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Add `s` to every diagonal entry (square matrices only).
    pub fn add_diag_mut(&mut self, s: f64) {
        debug_assert!(self.is_square());
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// Quadratic form `xᵀ * self * x` (square matrices only).
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64> {
        if !self.is_square() || x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "quadratic_form: shape mismatch",
            });
        }
        let mut acc = 0.0;
        for i in 0..self.rows {
            acc += x[i] * crate::vector::dot(self.row(i), x);
        }
        Ok(acc)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (∞-norm of the vectorized matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// `true` if the matrix is symmetric within absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrize in place: `self ← (self + selfᵀ) / 2`.
    pub fn symmetrize_mut(&mut self) {
        debug_assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Write `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Add `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn add_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] += block[(i, j)];
            }
        }
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(
            a.matvec_transpose(&[1.0, 1.0]).unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quadratic_form_simple() {
        let m = Matrix::from_diag(&[2.0, 3.0]);
        let q = m.quadratic_form(&[1.0, 2.0]).unwrap();
        assert_eq!(q, 2.0 + 12.0);
    }

    #[test]
    fn symmetry_helpers() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        assert!(!m.is_symmetric(1e-12));
        m.symmetrize_mut();
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn blocks() {
        let mut m = Matrix::zeros(3, 3);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.set_block(1, 1, &b);
        assert_eq!(m[(2, 2)], 4.0);
        m.add_block(1, 1, &b);
        assert_eq!(m[(1, 1)], 2.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn diag_and_norms() {
        let mut m = Matrix::from_diag(&[3.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        m.add_diag_mut(1.0);
        assert_eq!(m[(0, 0)], 4.0);
    }
}
