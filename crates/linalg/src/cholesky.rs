//! Cholesky factorization `A = L Lᵀ` for symmetric positive definite matrices.

use crate::{LinalgError, Matrix, Result};

/// A Cholesky factorization of a symmetric positive definite matrix.
///
/// The factor `L` (lower triangular) is stored densely; `solve` runs a
/// forward then backward substitution. This is the workhorse behind the
/// ADMM solver's cached linear system: factor once per problem, solve
/// once per iteration.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is ≤ 0 (within a
    /// small numerical guard), and [`LinalgError::DimensionMismatch`]
    /// for non-square input.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky: matrix must be square",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solve `A x = b` in place (`x` holds `b` on entry, the solution on exit).
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky solve: rhs length mismatch",
            });
        }
        // Forward substitution: L y = b.
        for i in 0..n {
            let mut s = x[i];
            let row = self.l.row(i);
            for k in 0..i {
                s -= row[k] * x[k];
            }
            x[i] = s / row[i];
        }
        // Backward substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(())
    }

    /// log-determinant of `A` (numerically stable via the factor).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Forward substitution only: solve `L y = b` in place.
    ///
    /// Building block for structured (block-wise) factorizations that
    /// need `L⁻¹` applied without the `Lᵀ` half.
    pub fn forward_solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky forward solve: rhs length mismatch",
            });
        }
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = x[i];
            for k in 0..i {
                s -= row[k] * x[k];
            }
            x[i] = s / row[i];
        }
        Ok(())
    }

    /// Backward substitution only: solve `Lᵀ x = b` in place.
    pub fn backward_solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky backward solve: rhs length mismatch",
            });
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B → guaranteed SPD.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.2], &[0.6, 1.2, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (24.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b).unwrap(), b);
    }
}
