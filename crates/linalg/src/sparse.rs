//! Compressed sparse row (CSR) matrices.
//!
//! SpotWeb's portfolio constraint matrix is extremely sparse — box
//! rows have one nonzero, budget rows have `N` — yet the QP API
//! carries it densely for simplicity. The ADMM inner loop converts to
//! CSR once and runs its per-iteration products at `O(nnz)` instead of
//! `O(mn)`, which is what keeps hundred-market × long-horizon
//! instances fast (Fig. 7(b)).

use crate::{LinalgError, Matrix, Result};

/// A CSR matrix: row pointers + column indices + values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Convert from dense, dropping entries with `|v| <= tol`.
    pub fn from_dense(m: &Matrix, tol: f64) -> CsrMatrix {
        let (rows, cols) = (m.rows(), m.cols());
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for r in 0..rows {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v.abs() > tol {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// `y ← self · x`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "csr matvec: x/y length mismatch",
            });
        }
        for r in 0..self.rows {
            let mut s = 0.0;
            for k in self.indptr[r]..self.indptr[r + 1] {
                s += self.data[k] * x[self.indices[k]];
            }
            y[r] = s;
        }
        Ok(())
    }

    /// `y ← selfᵀ · x`.
    pub fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "csr matvec_transpose: x/y length mismatch",
            });
        }
        y.iter_mut().for_each(|v| *v = 0.0);
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for k in self.indptr[r]..self.indptr[r + 1] {
                y[self.indices[k]] += self.data[k] * xr;
            }
        }
        Ok(())
    }

    /// Convenience allocating variants.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// `selfᵀ · x` into a fresh vector.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Matrix, CsrMatrix) {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[0.0, 3.0, 0.0]]);
        let s = CsrMatrix::from_dense(&d, 0.0);
        (d, s)
    }

    #[test]
    fn conversion_counts_nonzeros() {
        let (_, s) = sample();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 3);
    }

    #[test]
    fn matvec_matches_dense() {
        let (d, s) = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(s.matvec(&x).unwrap(), d.matvec(&x).unwrap());
    }

    #[test]
    fn matvec_transpose_matches_dense() {
        let (d, s) = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(
            s.matvec_transpose(&x).unwrap(),
            d.matvec_transpose(&x).unwrap()
        );
    }

    #[test]
    fn tolerance_drops_small_entries() {
        let d = Matrix::from_rows(&[&[1e-12, 1.0]]);
        let s = CsrMatrix::from_dense(&d, 1e-9);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn dimension_errors() {
        let (_, s) = sample();
        let mut y = vec![0.0; 2];
        assert!(s.matvec_into(&[1.0; 3], &mut y).is_err());
        assert!(s.matvec_transpose_into(&[1.0; 2], &mut [0.0; 3]).is_err());
    }

    #[test]
    fn random_matrices_agree_with_dense() {
        // Deterministic pseudo-random pattern.
        let mut d = Matrix::zeros(7, 5);
        for i in 0..7 {
            for j in 0..5 {
                if (i * 5 + j) % 3 == 0 {
                    d[(i, j)] = ((i + 2 * j) as f64 * 0.7).sin();
                }
            }
        }
        let s = CsrMatrix::from_dense(&d, 0.0);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let xr: Vec<f64> = (0..7).map(|i| (i as f64 * 0.4).cos()).collect();
        for (a, b) in s.matvec(&x).unwrap().iter().zip(d.matvec(&x).unwrap()) {
            assert!((a - b).abs() < 1e-14);
        }
        for (a, b) in s
            .matvec_transpose(&xr)
            .unwrap()
            .iter()
            .zip(d.matvec_transpose(&xr).unwrap())
        {
            assert!((a - b).abs() < 1e-14);
        }
    }
}
