//! Free-function vector kernels on `&[f64]`.
//!
//! These are the inner-loop primitives of the ADMM solver; they are
//! written so the compiler can auto-vectorize them (no bounds checks in
//! the hot path thanks to `zip`).

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ (release builds truncate to
/// the shorter slice, which callers must never rely on).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (ℓ2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity (max-abs) norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// ℓ1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← x` (copy).
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// Scale in place: `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Elementwise difference into a buffer: `out ← a - b`.
#[inline]
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert!(a.len() == b.len() && b.len() == out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Elementwise sum into a buffer: `out ← a + b`.
#[inline]
pub fn add_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert!(a.len() == b.len() && b.len() == out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Clamp each element of `x` into `[lo[i], hi[i]]` in place.
#[inline]
pub fn clamp_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert!(x.len() == lo.len() && lo.len() == hi.len());
    for ((v, &l), &h) in x.iter_mut().zip(lo).zip(hi) {
        *v = v.clamp(l, h);
    }
}

/// Arithmetic mean; returns 0.0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample variance (denominator `n - 1`); returns 0.0 for fewer than 2 samples.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation.
#[inline]
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Sample covariance of two equal-length series (denominator `n - 1`).
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / (a.len() - 1) as f64
}

/// Pearson correlation; 0.0 when either series is constant.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let (sa, sb) = (std_dev(a), std_dev(b));
    if sa == 0.0 || sb == 0.0 {
        return 0.0;
    }
    covariance(a, b) / (sa * sb)
}

/// Linearly interpolated percentile of an *unsorted* slice.
///
/// `p` is in `[0, 100]`. Returns `f64::NAN` for an empty slice.
pub fn percentile(a: &[f64], p: f64) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut sorted = a.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("NaN in percentile input"));
    percentile_sorted(&sorted, p)
}

/// Linearly interpolated percentile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn elementwise_helpers() {
        let mut out = vec![0.0; 2];
        sub_into(&[3.0, 5.0], &[1.0, 2.0], &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
        add_into(&[3.0, 5.0], &[1.0, 2.0], &mut out);
        assert_eq!(out, vec![4.0, 7.0]);
        let mut x = vec![-2.0, 0.5, 9.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 5.0]);
        assert_eq!(x, vec![0.0, 0.5, 5.0]);
    }

    #[test]
    fn stats_basics() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&a), 5.0);
        assert!((variance(&a) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn covariance_and_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&a, 0.0), 1.0);
        assert_eq!(percentile(&a, 100.0), 4.0);
        assert_eq!(percentile(&a, 50.0), 2.5);
        assert!(percentile(&[], 50.0).is_nan());
    }
}
