//! Tridiagonal solver (Thomas algorithm).
//!
//! Natural cubic spline interpolation reduces to a tridiagonal system
//! for the second derivatives at the knots; the Thomas algorithm solves
//! it in O(n).

use crate::{LinalgError, Result};

/// Solve a tridiagonal system with sub-diagonal `a`, diagonal `b`,
/// super-diagonal `c`, and right-hand side `d`.
///
/// Conventions: `a[0]` and `c[n-1]` are ignored (the system has `n`
/// unknowns, `a` enters rows `1..n`, `c` enters rows `0..n-1`). All four
/// slices must have length `n`.
///
/// The Thomas algorithm is stable for diagonally dominant systems,
/// which the cubic-spline system always is.
pub fn solve_tridiagonal(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Result<Vec<f64>> {
    let n = b.len();
    if a.len() != n || c.len() != n || d.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "tridiagonal: all bands must share one length",
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    if b[0].abs() < 1e-300 {
        return Err(LinalgError::Singular { pivot: 0 });
    }
    cp[0] = c[0] / b[0];
    dp[0] = d[0] / b[0];
    for i in 1..n {
        let m = b[i] - a[i] * cp[i - 1];
        if m.abs() < 1e-300 {
            return Err(LinalgError::Singular { pivot: i });
        }
        cp[i] = c[i] / m;
        dp[i] = (d[i] - a[i] * dp[i - 1]) / m;
    }
    let mut x = dp;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= cp[i] * next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // [[2, 1, 0], [1, 2, 1], [0, 1, 2]] x = b.
        let a = [0.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        let c = [1.0, 1.0, 0.0];
        let x_true = [1.0, 2.0, 3.0];
        let d = [
            2.0 * x_true[0] + x_true[1],
            x_true[0] + 2.0 * x_true[1] + x_true[2],
            x_true[1] + 2.0 * x_true[2],
        ];
        let x = solve_tridiagonal(&a, &b, &c, &d).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn single_unknown() {
        let x = solve_tridiagonal(&[0.0], &[4.0], &[0.0], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn empty_system() {
        assert!(solve_tridiagonal(&[], &[], &[], &[]).unwrap().is_empty());
    }

    #[test]
    fn rejects_zero_pivot() {
        assert!(solve_tridiagonal(&[0.0], &[0.0], &[0.0], &[1.0]).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(solve_tridiagonal(&[0.0], &[1.0, 1.0], &[0.0], &[1.0]).is_err());
    }
}
