//! Householder QR factorization.
//!
//! Used by the spline regression in `spotweb-predict`: least squares via
//! QR avoids squaring the condition number the way normal equations do,
//! which matters because spline basis matrices are poorly conditioned
//! near window edges.

use crate::{LinalgError, Matrix, Result};

/// A Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// The factorization is stored compactly: the upper triangle of `qr`
/// holds `R`; the essential parts of the Householder vectors live below
/// the diagonal, with their scaling factors in `tau`.
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    tau: Vec<f64>,
}

impl Qr {
    /// Factor `a` (requires `rows ≥ cols`).
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                context: "qr: requires rows >= cols",
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, normalized so v[0] = 1.
            let v0 = qr[(k, k)] - alpha;
            for i in (k + 1)..m {
                let scaled = qr[(i, k)] / v0;
                qr[(i, k)] = scaled;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Apply `Qᵀ` to a vector of length `rows`, in place.
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        let (m, n) = (self.rows(), self.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                context: "qr apply_qt: rhs length mismatch",
            });
        }
        for k in 0..n {
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
        Ok(())
    }

    /// Solve the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// Returns the length-`cols` solution vector.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (_, n) = (self.rows(), self.cols());
        let mut y = b.to_vec();
        self.apply_qt(&mut y)?;
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() < 1e-300 {
                return Err(LinalgError::Singular { pivot: i });
            }
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Copy out the upper-triangular `R` factor (`cols × cols`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::factor(&a).unwrap().solve_lstsq(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_least_squares() {
        // Fit y = 2x + 1 exactly from 4 points: residual must be ~0.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = Qr::factor(&a).unwrap().solve_lstsq(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: solution must satisfy the normal equations.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [0.0, 1.0, 1.0];
        let x = Qr::factor(&a).unwrap().solve_lstsq(&b).unwrap();
        // Normal equations: Aᵀ(Ax - b) = 0.
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let g = a.matvec_transpose(&r).unwrap();
        assert!(g.iter().all(|v| v.abs() < 1e-10), "gradient {g:?}");
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn rejects_zero_column() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]);
        assert!(matches!(Qr::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let r = Qr::factor(&a).unwrap().r();
        assert_eq!(r[(1, 0)], 0.0);
        // RᵀR should equal AᵀA (up to sign conventions absorbed in Q).
        let rtr = r.transpose().matmul(&r).unwrap();
        let ata = a.gram();
        for i in 0..2 {
            for j in 0..2 {
                assert!((rtr[(i, j)] - ata[(i, j)]).abs() < 1e-10);
            }
        }
    }
}
