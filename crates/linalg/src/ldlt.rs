//! LDLᵀ factorization for symmetric (possibly quasi-definite) matrices.
//!
//! The ADMM KKT matrix `[[P + σI, Aᵀ], [A, -ρ⁻¹I]]` is symmetric
//! *quasi-definite*: the upper-left block is positive definite and the
//! lower-right is negative definite. Such matrices always admit an
//! LDLᵀ factorization without pivoting (Vanderbei, 1995), which is why
//! OSQP-style solvers use it. Plain Cholesky would fail on the negative
//! diagonal.

use crate::{LinalgError, Matrix, Result};

/// An LDLᵀ factorization `A = L D Lᵀ` with unit lower-triangular `L`
/// and diagonal `D` (which may contain negative entries).
#[derive(Debug, Clone)]
pub struct Ldlt {
    l: Matrix,
    d: Vec<f64>,
}

impl Ldlt {
    /// Factor a symmetric matrix. Only the lower triangle of `a` is read.
    ///
    /// Returns [`LinalgError::Singular`] if a pivot collapses to
    /// (numerical) zero. Indefinite matrices that merely have negative
    /// pivots factor fine — that is the point of LDLᵀ.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "ldlt: matrix must be square",
            });
        }
        let n = a.rows();
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        // Working column buffer holding L(i,k) * D(k) products.
        let mut w = vec![0.0; n];
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                let lv = l[(j, k)];
                w[k] = lv * d[k];
                dj -= lv * w[k];
            }
            if dj.abs() < 1e-13 * (1.0 + a[(j, j)].abs()) || !dj.is_finite() {
                return Err(LinalgError::Singular { pivot: j });
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * w[k];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Ldlt { l, d })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Borrow the unit lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Borrow the diagonal of `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Number of negative pivots (the matrix inertia's negative count).
    pub fn negative_pivots(&self) -> usize {
        self.d.iter().filter(|&&v| v < 0.0).count()
    }

    /// Solve `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "ldlt solve: rhs length mismatch",
            });
        }
        // L z = b  (unit diagonal → no division).
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = x[i];
            for k in 0..i {
                s -= row[k] * x[k];
            }
            x[i] = s;
        }
        // D y = z.
        for i in 0..n {
            x[i] /= self.d[i];
        }
        // Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_spd_like_cholesky() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let f = Ldlt::factor(&a).unwrap();
        assert_eq!(f.negative_pivots(), 0);
        let x = f.solve(&[8.0, 7.0]).unwrap();
        // Check residual A x - b ≈ 0.
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - 8.0).abs() < 1e-12 && (r[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn factors_quasi_definite_kkt() {
        // [[P, Aᵀ], [A, -I]] with P = 2I, A = [1 1].
        let kkt = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 2.0, 1.0], &[1.0, 1.0, -1.0]]);
        let f = Ldlt::factor(&kkt).unwrap();
        assert_eq!(f.negative_pivots(), 1);
        let b = vec![1.0, 2.0, 0.5];
        let x = f.solve(&b).unwrap();
        let r = kkt.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.5], &[1.0, -2.0, 0.2], &[0.5, 0.2, 4.0]]);
        let f = Ldlt::factor(&a).unwrap();
        let ld = f.l().matmul(&Matrix::from_diag(f.d())).unwrap();
        let rec = ld.matmul(&f.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(
            Ldlt::factor(&a),
            Err(LinalgError::Singular { .. })
        ));
    }
}
