//! Dense linear algebra substrate for SpotWeb.
//!
//! SpotWeb's multi-period portfolio optimizer is a convex quadratic
//! program, and its workload predictor is a cubic-spline regression —
//! both reduce to small dense linear-algebra kernels. This crate
//! implements exactly the kernels those consumers need, from scratch:
//!
//! * [`Matrix`] — a row-major dense matrix with the usual arithmetic,
//!   products, transposes and Gram matrices.
//! * [`cholesky`] — Cholesky factorization for symmetric positive
//!   definite systems (the ADMM solver's cached factorization).
//! * [`block_tridiag`] — block-tridiagonal Cholesky for the
//!   multi-period KKT structure (`O(H·N³)` instead of `O((HN)³)`).
//! * [`ldlt`] — LDLᵀ factorization for symmetric *quasi-definite*
//!   systems (KKT matrices with a negative-definite lower-right block).
//! * [`qr`] — Householder QR, the numerically robust path for
//!   least-squares spline fitting.
//! * [`mod@lstsq`] — linear least squares built on QR.
//! * [`tridiag`] — Thomas algorithm for tridiagonal systems (natural
//!   cubic spline second-derivative solve).
//! * [`vector`] — free functions on `&[f64]` (dot, norms, axpy…).
//!
//! Everything is `f64`, deterministic, and allocation-conscious: the
//! factorizations expose in-place `solve_into` entry points so hot
//! loops (ADMM iterations) can reuse buffers.

#![forbid(unsafe_code)]
// Numeric kernels use explicit index loops throughout: the dual-array
// access patterns (L[(i,k)]·x[k], row/col scalings) read far clearer
// with indices than with zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod block_tridiag;
pub mod cholesky;
pub mod ldlt;
pub mod lstsq;
pub mod matrix;
pub mod qr;
pub mod sparse;
pub mod tridiag;
pub mod vector;

pub use block_tridiag::BlockTridiagCholesky;
pub use cholesky::Cholesky;
pub use ldlt::Ldlt;
pub use lstsq::lstsq;
pub use matrix::Matrix;
pub use qr::Qr;
pub use sparse::CsrMatrix;
pub use tridiag::solve_tridiagonal;

/// Errors reported by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions do not conform for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the conflicting shapes.
        context: &'static str,
    },
    /// The matrix is not positive definite (Cholesky pivot ≤ 0).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// A pivot underflowed to (numerical) zero and the system is singular.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
            LinalgError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, LinalgError>;
