//! Linear least squares.

use crate::{Matrix, Qr, Result};

/// Solve `min_x ‖A x − b‖₂` via Householder QR.
///
/// `a` must have at least as many rows as columns and full column rank.
/// Returns the coefficient vector of length `a.cols()`.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_lstsq(b)
}

/// Solve a *ridge-regularized* least squares `min ‖Ax − b‖² + λ‖x‖²`.
///
/// Implemented by stacking `√λ·I` below `A` — numerically equivalent to
/// the regularized normal equations but solved through QR. Ridge keeps
/// spline fits well-posed when the moving window contains near-duplicate
/// rows (flat workload periods).
pub fn lstsq_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    assert!(lambda >= 0.0, "ridge penalty must be non-negative");
    if lambda == 0.0 {
        return lstsq(a, b);
    }
    let (m, n) = (a.rows(), a.cols());
    let mut stacked = Matrix::zeros(m + n, n);
    stacked.set_block(0, 0, a);
    let sqrt_l = lambda.sqrt();
    for i in 0..n {
        stacked[(m + i, i)] = sqrt_l;
    }
    let mut rhs = b.to_vec();
    rhs.resize(m + n, 0.0);
    lstsq(&stacked, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [2.0, 3.0, 4.0]; // y = 1 + x
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let b = [2.0, 2.0];
        let x0 = lstsq_ridge(&a, &b, 0.0).unwrap();
        let x1 = lstsq_ridge(&a, &b, 10.0).unwrap();
        assert!((x0[0] - 2.0).abs() < 1e-10);
        assert!(x1[0] < x0[0] && x1[0] > 0.0);
        // Closed form: x = (AᵀA + λ)⁻¹ Aᵀ b = 4 / 12.
        assert!((x1[0] - 4.0 / 12.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_handles_rank_deficiency() {
        // Perfectly collinear columns are singular for plain QR but fine
        // with any positive ridge.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = [1.0, 2.0, 3.0];
        let x = lstsq_ridge(&a, &b, 1e-6).unwrap();
        // Symmetry → both coefficients equal.
        assert!((x[0] - x[1]).abs() < 1e-8);
    }
}
