//! Lexer span soundness, property-tested.
//!
//! Everything downstream — pragma matching, the call graph, the taint
//! analysis — indexes the source through token spans, so the spans
//! must tile the file: strictly increasing, non-overlapping, on char
//! boundaries, with nothing between tokens but whitespace or the
//! stripped `r#` raw-identifier prefix. Re-emitting the spans plus
//! their gaps must reproduce the source byte-for-byte.
//!
//! The property runs over (a) sources assembled from a fragment table
//! that leans into the lexer's hard cases (raw strings with hashes,
//! nested block comments, byte strings, lifetimes, exponent literals)
//! and (b) every real source file in this crate. Deterministic
//! regression cases pin the raw-string and nested-comment handling the
//! call-graph builder depends on.

use proptest::prelude::*;
use spotweb_lint::files::SourceFile;
use spotweb_lint::graph::CallGraph;
use spotweb_lint::lexer::{lex, Token};

/// Check every span invariant and return the re-emitted source.
fn reemit(src: &str, tokens: &[Token]) -> Result<String, String> {
    let mut out = String::new();
    let mut prev_end = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if t.start < prev_end {
            return Err(format!("token {i} overlaps its predecessor"));
        }
        if t.end < t.start || t.end > src.len() {
            return Err(format!("token {i} span out of bounds"));
        }
        if !src.is_char_boundary(t.start) || !src.is_char_boundary(t.end) {
            return Err(format!("token {i} span not on char boundaries"));
        }
        let gap = &src[prev_end..t.start];
        if !gap
            .chars()
            .all(|c| c.is_whitespace() || c == 'r' || c == '#')
        {
            return Err(format!("non-whitespace gap {gap:?} before token {i}"));
        }
        let expected_line = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
        if t.line != expected_line {
            return Err(format!(
                "token {i} line {} but span starts on line {expected_line}",
                t.line
            ));
        }
        out.push_str(gap);
        out.push_str(&src[t.start..t.end]);
        prev_end = t.end;
    }
    let tail = &src[prev_end..];
    if !tail.chars().all(char::is_whitespace) {
        return Err(format!("non-whitespace tail {tail:?}"));
    }
    out.push_str(tail);
    Ok(out)
}

fn assert_round_trips(src: &str) {
    let tokens = lex(src);
    match reemit(src, &tokens) {
        Ok(re) => assert_eq!(re, src, "re-emitted spans diverge for {src:?}"),
        Err(e) => panic!("{e} in {src:?}"),
    }
}

/// Fragment table: concatenations of these exercise every token kind
/// and the boundary cases between them.
const FRAGMENTS: &[&str] = &[
    "fn f() { g(); }\n",
    "let x = 0x_ff + 1e-3 - 2E+5f64;\n",
    "let s = \"line one\\n\\\"quoted\\\"\";\n",
    "let r = r\"no escapes \\ here\";\n",
    "let rh = r##\"nested \"# quote\"##;\n",
    "let b = b\"bytes\\x00\";\n",
    "let br = br#\"raw bytes\"#;\n",
    "let c = 'x'; let nl = '\\n';\n",
    "let lt: &'static str = \"s\";\n",
    "// line comment with \"quote\" and /* opener\n",
    "/* block /* nested */ still comment */\n",
    "/** doc /* nested */ comment */\n",
    "let r#fn = 1; let r#type = r#fn;\n",
    "for i in 0..n { total += v[i].max(1.0); }\n",
    "mod m { pub fn inner() {} }\n",
    "#[cfg(test)]\nmod tests { use super::*; }\n",
    "λ_unicode_ident! (\"≤ fmt {x:.3}\");\n",
    "let unterminated = \"eof",
    "/* unterminated comment",
    "r#\"unterminated raw",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_fragment_sources_round_trip(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..24)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lex(&src);
        let re = reemit(&src, &tokens).map_err(|e| {
            proptest::TestCaseError::Fail(format!("{e} in {src:?}"))
        })?;
        prop_assert_eq!(re, src);
    }
}

#[test]
fn every_workspace_source_round_trips() {
    // The real tree is the richest corpus there is; the linter lexes
    // it on every run, so its spans must tile every file exactly.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let files = spotweb_lint::files::scan_workspace(&root).expect("scan");
    assert!(files.len() > 100, "expected the full workspace corpus");
    for f in &files {
        let re = reemit(&f.src, &f.tokens).unwrap_or_else(|e| panic!("{}: {e}", f.path));
        assert_eq!(re, f.src, "{}: re-emitted spans diverge", f.path);
    }
}

#[test]
fn raw_strings_with_hashes_do_not_swallow_code() {
    // Regression: a raw string containing `"#` must end at the right
    // delimiter, or everything after it would lex as string content
    // and vanish from the call graph.
    let src = "fn a() { b(r##\"x \"# y\"##); }\nfn b(s: &str) { c(); }\nfn c() {}\n";
    assert_round_trips(src);
    let file = SourceFile::from_source("crates/det/src/lib.rs", src.to_string());
    let files = [file];
    let graph = CallGraph::build(&files);
    let names: Vec<&str> = graph.defs.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        ["a", "b", "c"],
        "defs after the raw string must survive"
    );
    let a = graph.defs.iter().position(|d| d.name == "a").expect("a");
    let b = graph.defs.iter().position(|d| d.name == "b").expect("b");
    assert!(
        graph.calls[a].contains(&b),
        "a -> b edge through the raw-string argument"
    );
}

#[test]
fn nested_block_comments_do_not_hide_or_invent_calls() {
    // Regression: `/* outer /* inner */ still comment */` — a naive
    // lexer ends the comment at the first `*/` and then "sees" calls
    // that are actually commented out.
    let src = "fn live() { real(); /* dead(); /* nested */ also_dead(); */ }\nfn real() {}\nfn dead() {}\n";
    assert_round_trips(src);
    let file = SourceFile::from_source("crates/det/src/lib.rs", src.to_string());
    let files = [file];
    let graph = CallGraph::build(&files);
    let live = graph
        .defs
        .iter()
        .position(|d| d.name == "live")
        .expect("live");
    let real = graph
        .defs
        .iter()
        .position(|d| d.name == "real")
        .expect("real");
    let dead = graph
        .defs
        .iter()
        .position(|d| d.name == "dead")
        .expect("dead");
    assert!(graph.calls[live].contains(&real));
    assert!(
        !graph.calls[live].contains(&dead),
        "commented-out call must not create an edge"
    );
}
