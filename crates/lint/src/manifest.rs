//! The golden fixture manifest: `tests/golden/MANIFEST.json`.
//!
//! Every byte-stable golden fixture is tracked by a manifest entry
//! carrying its **epoch** (bumped on every deliberate regeneration),
//! the FNV-1a 64 digest of its current bytes, the command that
//! produces it, and the full old→new digest history. Regeneration is
//! an audited event: `figures bless <fixture…>` (see `bench::bless`)
//! rewrites the fixture, bumps the epoch, and appends to the history;
//! a golden whose on-disk digest disagrees with its manifest entry is
//! a hard `manifest-consistency` finding.
//!
//! Like the rest of the analyzer this module is dependency-free: it
//! hand-rolls a small JSON reader and a byte-stable writer
//! (`parse` ∘ `render` is the identity on rendered manifests).

use std::io;
use std::path::Path;

use crate::report::Finding;

/// Manifest schema identifier (first line of the document).
pub const SCHEMA: &str = "spotweb-golden-manifest/1";

/// Golden directory, relative to the workspace root.
pub const GOLDEN_DIR: &str = "tests/golden";

/// Manifest file name inside [`GOLDEN_DIR`].
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// The command that records a deliberate golden change.
pub const BLESS_CMD: &str = "cargo run --release -p spotweb-bench --bin figures -- bless";

/// One recorded regeneration of a fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Epoch this regeneration established.
    pub epoch: u64,
    /// Digest before the regeneration (`-` for the initial import).
    pub old: String,
    /// Digest after the regeneration.
    pub new: String,
    /// Why the fixture changed.
    pub note: String,
}

/// One tracked golden fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixtureEntry {
    /// File name inside `tests/golden/`.
    pub name: String,
    /// Current epoch (1 = initial import).
    pub epoch: u64,
    /// FNV-1a 64 digest of the fixture's current bytes.
    pub digest: String,
    /// Command that regenerates the fixture.
    pub command: String,
    /// Every recorded old→new transition, oldest first.
    pub history: Vec<HistoryEntry>,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Tracked fixtures, sorted by name.
    pub fixtures: Vec<FixtureEntry>,
}

impl Manifest {
    /// Entry for `name`, if tracked.
    pub fn entry(&self, name: &str) -> Option<&FixtureEntry> {
        self.fixtures.iter().find(|f| f.name == name)
    }

    /// Mutable entry for `name`, if tracked.
    pub fn entry_mut(&mut self, name: &str) -> Option<&mut FixtureEntry> {
        self.fixtures.iter_mut().find(|f| f.name == name)
    }

    /// Insert or replace an entry, keeping the list sorted by name.
    pub fn upsert(&mut self, entry: FixtureEntry) {
        match self.fixtures.iter_mut().find(|f| f.name == entry.name) {
            Some(slot) => *slot = entry,
            None => self.fixtures.push(entry),
        }
        self.fixtures.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Render the byte-stable manifest document.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"schema\": {},", json_str(SCHEMA));
        o.push_str("  \"fixtures\": [");
        for (k, f) in self.fixtures.iter().enumerate() {
            o.push_str(if k == 0 { "\n" } else { ",\n" });
            o.push_str("    {\n");
            let _ = writeln!(o, "      \"name\": {},", json_str(&f.name));
            let _ = writeln!(o, "      \"epoch\": {},", f.epoch);
            let _ = writeln!(o, "      \"digest\": {},", json_str(&f.digest));
            let _ = writeln!(o, "      \"command\": {},", json_str(&f.command));
            o.push_str("      \"history\": [");
            for (h, e) in f.history.iter().enumerate() {
                o.push_str(if h == 0 { "\n" } else { ",\n" });
                let _ = write!(
                    o,
                    "        {{\"epoch\": {}, \"old\": {}, \"new\": {}, \"note\": {}}}",
                    e.epoch,
                    json_str(&e.old),
                    json_str(&e.new),
                    json_str(&e.note)
                );
            }
            o.push_str(if f.history.is_empty() {
                "]\n"
            } else {
                "\n      ]\n"
            });
            o.push_str("    }");
        }
        o.push_str(if self.fixtures.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        o.push_str("}\n");
        o
    }

    /// Parse a manifest document, validating schema and shape.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let root = parse_json(text)?;
        let obj = root.as_obj().ok_or("manifest root must be an object")?;
        let schema = get(obj, "schema")
            .and_then(Json::as_str)
            .ok_or("manifest is missing the \"schema\" string")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported manifest schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let fixtures = get(obj, "fixtures")
            .and_then(Json::as_arr)
            .ok_or("manifest is missing the \"fixtures\" array")?;
        let mut out = Manifest::default();
        for (k, f) in fixtures.iter().enumerate() {
            let fo = f
                .as_obj()
                .ok_or_else(|| format!("fixtures[{k}] is not an object"))?;
            let str_field = |key: &str| -> Result<String, String> {
                get(fo, key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("fixtures[{k}] is missing the {key:?} string"))
            };
            let epoch = get(fo, "epoch")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("fixtures[{k}] is missing the \"epoch\" integer"))?;
            let mut history = Vec::new();
            let hist = get(fo, "history")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("fixtures[{k}] is missing the \"history\" array"))?;
            for (h, e) in hist.iter().enumerate() {
                let eo = e
                    .as_obj()
                    .ok_or_else(|| format!("fixtures[{k}].history[{h}] is not an object"))?;
                let hstr = |key: &str| -> Result<String, String> {
                    get(eo, key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            format!("fixtures[{k}].history[{h}] is missing the {key:?} string")
                        })
                };
                history.push(HistoryEntry {
                    epoch: get(eo, "epoch").and_then(Json::as_u64).ok_or_else(|| {
                        format!("fixtures[{k}].history[{h}] is missing the \"epoch\" integer")
                    })?,
                    old: hstr("old")?,
                    new: hstr("new")?,
                    note: hstr("note")?,
                });
            }
            out.fixtures.push(FixtureEntry {
                name: str_field("name")?,
                epoch,
                digest: str_field("digest")?,
                command: str_field("command")?,
                history,
            });
        }
        out.fixtures.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

/// FNV-1a 64 digest of raw bytes, rendered as 16 lowercase hex digits
/// — the same construction `sim::sweep::digest` uses for run
/// summaries, applied here to fixture files.
pub fn fnv64(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Everything the `manifest-consistency` rule needs, detached from the
/// filesystem so the rule is unit-testable: the manifest text (or
/// `None` when fixtures exist but no manifest does) and the on-disk
/// fixture bytes, sorted by name.
#[derive(Debug, Clone)]
pub struct ManifestInput {
    /// Contents of `MANIFEST.json`, if present.
    pub manifest_text: Option<String>,
    /// `(file name, bytes)` for every file in the golden directory
    /// except the manifest itself, sorted by name.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Load the [`ManifestInput`] for a workspace root, or `None` when the
/// root has no `tests/golden/` directory at all.
pub fn load_input(root: &Path) -> io::Result<Option<ManifestInput>> {
    let dir = root.join(GOLDEN_DIR);
    if !dir.is_dir() {
        return Ok(None);
    }
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == MANIFEST_NAME {
            continue;
        }
        files.push((name, std::fs::read(entry.path())?));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let manifest_text = match std::fs::read_to_string(dir.join(MANIFEST_NAME)) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    Ok(Some(ManifestInput {
        manifest_text,
        files,
    }))
}

/// Run the `manifest-consistency` checks over an input. Every finding
/// is hard (the rule is not allowlistable): mismatched digests, files
/// missing on either side, a missing or malformed manifest, and
/// internally inconsistent histories.
pub fn check_input(input: &ManifestInput) -> Vec<Finding> {
    let rule = "manifest-consistency".to_string();
    let manifest_path = format!("{GOLDEN_DIR}/{MANIFEST_NAME}");
    let mut out = Vec::new();
    let Some(text) = &input.manifest_text else {
        out.push(Finding {
            rule,
            file: manifest_path,
            line: 1,
            message: format!(
                "{} golden fixture(s) present but no manifest; bootstrap it with `{BLESS_CMD} \
                 --init` so every future regeneration is an audited epoch bump",
                input.files.len()
            ),
        });
        return out;
    };
    let manifest = match Manifest::parse(text) {
        Ok(m) => m,
        Err(e) => {
            out.push(Finding {
                rule,
                file: manifest_path,
                line: 1,
                message: format!("manifest does not parse: {e}"),
            });
            return out;
        }
    };
    for pair in manifest.fixtures.windows(2) {
        if pair[0].name == pair[1].name {
            out.push(Finding {
                rule: rule.clone(),
                file: manifest_path.clone(),
                line: 1,
                message: format!("duplicate manifest entry for {:?}", pair[0].name),
            });
        }
    }
    for entry in &manifest.fixtures {
        let file_path = format!("{GOLDEN_DIR}/{}", entry.name);
        let on_disk = input.files.iter().find(|(n, _)| *n == entry.name);
        match on_disk {
            None => out.push(Finding {
                rule: rule.clone(),
                file: file_path.clone(),
                line: 1,
                message: format!(
                    "manifest lists {} at epoch {} but the fixture is missing on disk; \
                     restore it or remove the entry with a blessed manifest edit",
                    entry.name, entry.epoch
                ),
            }),
            Some((_, bytes)) => {
                let disk = fnv64(bytes);
                if disk != entry.digest {
                    out.push(Finding {
                        rule: rule.clone(),
                        file: file_path.clone(),
                        line: 1,
                        message: format!(
                            "on-disk digest {disk} does not match manifest digest {} (epoch {}); \
                             the golden changed without a bless — run `{BLESS_CMD} {}` to \
                             regenerate it, bump the epoch, and record the old→new digest pair",
                            entry.digest, entry.epoch, entry.name
                        ),
                    });
                }
            }
        }
        // History must be present, strictly increasing, and end at the
        // entry's current state.
        let consistent = match entry.history.last() {
            None => false,
            Some(last) => {
                last.epoch == entry.epoch
                    && last.new == entry.digest
                    && entry
                        .history
                        .windows(2)
                        .all(|w| w[0].epoch < w[1].epoch && w[0].new == w[1].old)
            }
        };
        if !consistent {
            out.push(Finding {
                rule: rule.clone(),
                file: file_path,
                line: 1,
                message: format!(
                    "manifest history for {} is inconsistent: it must be a strictly \
                     increasing epoch chain whose digests link old→new and end at \
                     epoch {} / digest {}",
                    entry.name, entry.epoch, entry.digest
                ),
            });
        }
    }
    for (name, _) in &input.files {
        if manifest.entry(name).is_none() {
            out.push(Finding {
                rule: rule.clone(),
                file: format!("{GOLDEN_DIR}/{name}"),
                line: 1,
                message: format!(
                    "fixture {name} is on disk but not in the manifest; import it with \
                     `{BLESS_CMD} --init` (records the current bytes as epoch 1)"
                ),
            });
        }
    }
    out
}

/// The CI diff check (`spotweb-lint --bless-check`): every fixture
/// named in `changed` (golden files touched by a PR, manifest
/// excluded) must have a manifest entry whose epoch is strictly
/// greater than the merge base's — i.e. the change went through
/// `figures bless`. Fixtures absent from the base manifest are new
/// imports and pass as long as they are tracked now.
pub fn check_epoch_bumps(current: &Manifest, base: &Manifest, changed: &[String]) -> Vec<Finding> {
    let rule = "manifest-consistency".to_string();
    let mut out = Vec::new();
    for name in changed {
        let file = format!("{GOLDEN_DIR}/{name}");
        let Some(cur) = current.entry(name) else {
            out.push(Finding {
                rule: rule.clone(),
                file,
                line: 1,
                message: format!(
                    "{name} changed in this diff but has no manifest entry; run \
                     `{BLESS_CMD} --init` (new fixture) or `{BLESS_CMD} {name}`"
                ),
            });
            continue;
        };
        if let Some(old) = base.entry(name) {
            if cur.epoch <= old.epoch {
                out.push(Finding {
                    rule: rule.clone(),
                    file,
                    line: 1,
                    message: format!(
                        "{name} changed in this diff but its manifest epoch did not bump \
                         (still {}, base had {}); regenerate through `{BLESS_CMD} {name}` \
                         so the old→new digest pair is recorded",
                        cur.epoch, old.epoch
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, non-negative
// integers, bool/null) — just enough for manifest documents.
// ---------------------------------------------------------------------------

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; manifest epochs are small integers).
    Num(f64),
    /// String with escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected content at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not needed for manifest
                        // content; map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

/// JSON string escaping (same policy as the report writer).
fn json_str(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            fixtures: vec![
                FixtureEntry {
                    name: "a.json".to_string(),
                    epoch: 2,
                    digest: fnv64(b"v2\n"),
                    command: "figures a > tests/golden/a.json".to_string(),
                    history: vec![
                        HistoryEntry {
                            epoch: 1,
                            old: "-".to_string(),
                            new: fnv64(b"v1\n"),
                            note: "initial import".to_string(),
                        },
                        HistoryEntry {
                            epoch: 2,
                            old: fnv64(b"v1\n"),
                            new: fnv64(b"v2\n"),
                            note: "deliberate change".to_string(),
                        },
                    ],
                },
                FixtureEntry {
                    name: "b.jsonl".to_string(),
                    epoch: 1,
                    digest: fnv64(b"lines\n"),
                    command: "figures b > tests/golden/b.jsonl".to_string(),
                    history: vec![HistoryEntry {
                        epoch: 1,
                        old: "-".to_string(),
                        new: fnv64(b"lines\n"),
                        note: "initial import".to_string(),
                    }],
                },
            ],
        }
    }

    fn input(m: &Manifest, files: &[(&str, &[u8])]) -> ManifestInput {
        ManifestInput {
            manifest_text: Some(m.render()),
            files: files
                .iter()
                .map(|(n, b)| (n.to_string(), b.to_vec()))
                .collect(),
        }
    }

    #[test]
    fn fnv64_matches_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv64(b""), "cbf29ce484222325");
        assert_eq!(fnv64(b"a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn render_parse_round_trip_is_identity() {
        let m = sample();
        let text = m.render();
        let parsed = Manifest::parse(&text).expect("round trip parses");
        assert_eq!(parsed, m);
        assert_eq!(parsed.render(), text, "render ∘ parse is byte-identical");
    }

    #[test]
    fn consistent_input_is_clean() {
        let m = sample();
        let findings = check_input(&input(&m, &[("a.json", b"v2\n"), ("b.jsonl", b"lines\n")]));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tampered_fixture_names_the_bless_command() {
        let m = sample();
        let findings = check_input(&input(
            &m,
            &[("a.json", b"hand-edited\n"), ("b.jsonl", b"lines\n")],
        ));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "manifest-consistency");
        assert_eq!(findings[0].file, "tests/golden/a.json");
        assert!(findings[0].message.contains("figures -- bless a.json"));
        assert!(findings[0].message.contains("without a bless"));
    }

    #[test]
    fn missing_and_untracked_files_are_findings() {
        let m = sample();
        let findings = check_input(&input(
            &m,
            &[("b.jsonl", b"lines\n"), ("stray.json", b"{}\n")],
        ));
        let rules: Vec<(&str, &str)> = findings
            .iter()
            .map(|f| (f.file.as_str(), f.rule.as_str()))
            .collect();
        assert!(rules.contains(&("tests/golden/a.json", "manifest-consistency")));
        assert!(rules.contains(&("tests/golden/stray.json", "manifest-consistency")));
    }

    #[test]
    fn absent_manifest_is_a_finding() {
        let findings = check_input(&ManifestInput {
            manifest_text: None,
            files: vec![("a.json".to_string(), b"x".to_vec())],
        });
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("--init"));
    }

    #[test]
    fn broken_history_chain_is_a_finding() {
        let mut m = sample();
        if let Some(entry) = m.entry_mut("a.json") {
            entry.history[1].old = "0000000000000000".to_string();
        }
        let findings = check_input(&input(&m, &[("a.json", b"v2\n"), ("b.jsonl", b"lines\n")]));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("history"));
    }

    #[test]
    fn malformed_manifest_is_a_finding() {
        let findings = check_input(&ManifestInput {
            manifest_text: Some("{\"schema\": \"wrong/9\", \"fixtures\": []}".to_string()),
            files: vec![],
        });
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("does not parse"));
    }

    #[test]
    fn epoch_bump_check_flags_unbumped_changes() {
        let base = sample();
        // Same epochs as base: a changed fixture must fail.
        let findings = check_epoch_bumps(&base, &base, &["a.json".to_string()]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("did not bump"));
        assert!(findings[0].message.contains("figures -- bless a.json"));

        // A blessed change (epoch 2 → 3) passes.
        let mut cur = base.clone();
        if let Some(entry) = cur.entry_mut("a.json") {
            entry.epoch = 3;
        }
        assert!(check_epoch_bumps(&cur, &base, &["a.json".to_string()]).is_empty());

        // New fixture: absent from base but tracked now → ok.
        cur.upsert(FixtureEntry {
            name: "new.json".to_string(),
            epoch: 1,
            digest: fnv64(b"new\n"),
            command: "figures new > tests/golden/new.json".to_string(),
            history: vec![HistoryEntry {
                epoch: 1,
                old: "-".to_string(),
                new: fnv64(b"new\n"),
                note: "initial import".to_string(),
            }],
        });
        assert!(check_epoch_bumps(&cur, &base, &["new.json".to_string()]).is_empty());

        // Changed but tracked nowhere → finding.
        let findings = check_epoch_bumps(&cur, &base, &["untracked.json".to_string()]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no manifest entry"));
    }

    #[test]
    fn json_reader_handles_escapes_and_nesting() {
        let v = parse_json("{\"k\": [1, {\"s\": \"a\\n\\\"b\\\"\"}, true, null]}").expect("parses");
        let Json::Obj(o) = v else {
            panic!("not an object")
        };
        let Json::Arr(a) = &o[0].1 else {
            panic!("not an array")
        };
        assert_eq!(a[0], Json::Num(1.0));
        assert_eq!(a[2], Json::Bool(true));
        let Json::Obj(inner) = &a[1] else {
            panic!("not an object")
        };
        assert_eq!(inner[0].1, Json::Str("a\n\"b\"".to_string()));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("[1,]").is_err());
    }
}
