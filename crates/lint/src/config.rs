//! Analyzer configuration: the quarantine and renderer registries.
//!
//! Both registries are lists of *module-path prefixes* (segment-aware,
//! see [`crate::files::module_matches`]). The checked-in defaults for
//! this workspace live in [`LintConfig::spotweb`]; fixture and unit
//! tests build their own configs.

/// Registries consulted by the path-scoped rules.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Modules allowed to read the wall clock (`Instant`/`SystemTime`).
    /// Their timings must only ever feed quarantined `BENCH_*` outputs,
    /// never the byte-stable traces, reports, or goldens.
    pub wall_clock_quarantine: Vec<String>,
    /// Modules that render byte-stable output (JSON/JSONL/Prometheus
    /// text or inputs feeding it); hash-ordered collections and
    /// non-canonical float formatting are banned here.
    pub renderers: Vec<String>,
    /// Crate whose files define the telemetry API itself and are
    /// therefore exempt from `telemetry-name-constants`.
    pub telemetry_crate: String,
    /// Per-request hot-path modules: string-keyed `.count(…)` /
    /// `.observe(…)` sink calls are banned here even with `names::`
    /// constants — the name lookup costs a map probe per request, so
    /// these modules must resolve a `CounterHandle`/`HistogramHandle`
    /// once and increment through it (ISSUE 5).
    pub hot_paths: Vec<String>,
    /// Crates whose profiling spans (`prof::scope!`, `prof_scope!`,
    /// `ScopeGuard::enter`) must be named through `telemetry::names`
    /// `SPAN_*` constants rather than inline string literals — the
    /// span tree is golden-locked, so producers and the golden must
    /// not be able to fork a span name (ISSUE 7).
    pub span_crates: Vec<String>,
    /// Crates whose non-test library code must not *reach* a
    /// wall-clock or unseeded-RNG symbol through any call chain
    /// (`determinism-taint`, cross-file). These are the crates whose
    /// outputs are golden-locked: a single tainted call chain breaks
    /// same-seed replay even when the offending token lives in
    /// another crate (ISSUE 9).
    pub taint_protected: Vec<String>,
    /// Module-path prefixes that may combine golden-directory path
    /// literals with filesystem writes (`golden-write-outside-bless`).
    /// Everything else regenerates fixtures through `figures bless`,
    /// which bumps epochs and records digests in the manifest.
    pub golden_writers: Vec<String>,
    /// Shard-parallel arrival-path modules: stateful sequential RNGs
    /// (`ChaCha8Rng`) are banned here even when seeded, because their
    /// draws depend on draw *order* and the sharded runner replays the
    /// same windows in any order across cores. The counter streams in
    /// `sim::rng` are the only sanctioned generator (ISSUE 10).
    pub shard_parallel: Vec<String>,
}

impl LintConfig {
    /// The registry for this workspace — the single source of truth
    /// that `spotweb-lint`, `figures lint`, and `tests/lint.rs` share.
    ///
    /// To quarantine a new timing module or register a new renderer,
    /// add its module path here (and say why in DESIGN.md's rule
    /// catalog).
    pub fn spotweb() -> LintConfig {
        LintConfig {
            wall_clock_quarantine: vec![
                // Sweep engine: wall_secs per run, rendered only into
                // the quarantined BENCH_sweep.json.
                "sim::sweep".to_string(),
                "bench::sweep".to_string(),
                // Telemetry replay harness: solver wall-times feed
                // BENCH_telemetry.json.
                "bench::telem".to_string(),
                // Runner throughput harness: wall_secs per scenario,
                // rendered only into the quarantined BENCH_runner.json.
                "bench::perf".to_string(),
                // Shard invariance harness: per-shard-count wall_secs,
                // rendered only into the quarantined BENCH_shard.json
                // (the digests it gates are byte-stable).
                "bench::shard".to_string(),
                // Tournament: serial/parallel pass wall-clock, rendered
                // only into the quarantined BENCH_tournament.json (the
                // leaderboard itself is a pure function of summaries).
                "bench::tournament".to_string(),
                // Fig. 7(b) optimizer scalability is a timing figure.
                "bench::fig7".to_string(),
                // Self-profiler: wall-clock spans, mutex waits, and
                // (opt-in) heap bytes, rendered only into the
                // quarantined BENCH_profile.json / flamegraph.folded.
                // The span *structure* golden never carries timings.
                "telemetry::prof".to_string(),
                "bench::profile".to_string(),
            ],
            renderers: vec![
                // The telemetry crate renders traces, records, and
                // Prometheus text.
                "telemetry".to_string(),
                // RunSummary / ChaosReport / latency summaries.
                "sim::sweep".to_string(),
                "sim::faults".to_string(),
                "sim::metrics".to_string(),
                "bench::sweep".to_string(),
                // Leaderboard JSON + fixed-precision human table.
                "bench::tournament".to_string(),
                // Session-table iteration order feeds drain records in
                // the deterministic trace.
                "lb::session".to_string(),
                // Span-structure golden JSON + BENCH_profile.json /
                // flamegraph.folded renderers.
                "bench::profile".to_string(),
                // RunnerReport JSON + FNV digest renderer — the bytes
                // the shard invariance gate compares.
                "sim::shard".to_string(),
            ],
            telemetry_crate: "telemetry".to_string(),
            hot_paths: vec![
                // The per-arrival loop: one served/killed counter tick
                // and one latency observation per simulated request.
                "sim::runner".to_string(),
                // Event queue: one counter tick per schedule and pop.
                "sim::engine".to_string(),
                // Router: admission/no-backend drop counters per route.
                "lb::balancer".to_string(),
            ],
            span_crates: vec![
                // The instrumented crates: their spans appear in the
                // golden-locked span tree, so names must come from
                // telemetry::names SPAN_* constants.
                "sim".to_string(),
                "lb".to_string(),
                "core".to_string(),
            ],
            taint_protected: vec![
                // The deterministic engine: every byte-stable golden
                // is a function of these crates plus the run seed.
                "sim".to_string(),
                "lb".to_string(),
                "core".to_string(),
                "market".to_string(),
            ],
            golden_writers: vec![
                // The bless flow is the only production path allowed
                // to rewrite golden fixtures (tests may write their
                // own scratch copies).
                "bench::bless".to_string(),
            ],
            shard_parallel: vec![
                // The sharded arrival path: per-interval windows are
                // generated concurrently, so every draw must be a pure
                // function of (seed, stream, counter).
                "sim::runner".to_string(),
                "sim::shard".to_string(),
                "sim::rng".to_string(),
            ],
        }
    }
}
