//! The rule engine: the checkable invariant rules (per-file and
//! cross-file), the allow-pragma grammar, and the driver that applies
//! both to a file set.
//!
//! Every rule is named and allowlistable. A violation is suppressed
//! only by an in-source pragma on the same line (or, for a pragma on
//! its own line, the next code line):
//!
//! ```text
//! // spotweb-lint: allow(wall-clock-quarantine) -- solver wall-time, BENCH-only
//! ```
//!
//! The `-- reason` is mandatory: a bare allow is itself a violation
//! (`allow-missing-reason`), as is naming a rule the analyzer does not
//! know (`unknown-rule`) or a pragma it cannot parse
//! (`malformed-pragma`). Meta-findings are not suppressible.

use crate::config::LintConfig;
use crate::files::{module_matches, SourceFile, Target};
use crate::graph::{CallGraph, Reach};
use crate::lexer::TokenKind;
use crate::manifest::{self, ManifestInput};
use crate::report::{AllowRecord, Finding, Report, Suppressed};

/// Rule catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule identifier used in pragmas and reports.
    pub id: &'static str,
    /// One-line summary for `--rules` and the docs.
    pub summary: &'static str,
    /// Whether the rule can be named in an allow pragma (meta rules
    /// about pragmas themselves cannot).
    pub allowlistable: bool,
}

/// Catalog of every rule the analyzer knows, checkable and meta.
pub const RULES: [RuleInfo; 13] = [
    RuleInfo {
        id: "wall-clock-quarantine",
        summary: "Instant/SystemTime only in registered quarantine modules (timings feed BENCH_* files, never byte-stable output)",
        allowlistable: true,
    },
    RuleInfo {
        id: "ordered-serialization",
        summary: "no HashMap/HashSet in renderer modules; use BTreeMap/BTreeSet or explicit sorts for byte-stable iteration",
        allowlistable: true,
    },
    RuleInfo {
        id: "seeded-rng-only",
        summary: "no thread_rng/from_entropy/OsRng/getrandom/RandomState; every RNG derives from the run seed. In shard-parallel modules stateful sequential RNGs (ChaCha8Rng) are banned even when seeded — draws depend on order; use the sim::rng counter streams",
        allowlistable: true,
    },
    RuleInfo {
        id: "no-float-display-in-renderers",
        summary: "no {:e}/{:E}, precision, or {:?} format specs in renderer modules; floats go through telemetry::json::json_f64",
        allowlistable: true,
    },
    RuleInfo {
        id: "no-unwrap-in-lib",
        summary: "library code propagates errors; .unwrap() only in #[cfg(test)] (use expect with an invariant, or ?)",
        allowlistable: true,
    },
    RuleInfo {
        id: "telemetry-name-constants",
        summary: "metric names come from telemetry::names constants, not inline string literals; hot-path modules use interned Counter/Histogram handles instead of string-keyed count/observe",
        allowlistable: true,
    },
    RuleInfo {
        id: "determinism-taint",
        summary: "non-test code in protected crates (sim/lb/core/market) must not reach wall-clock or unseeded-RNG symbols through any call chain (cross-file; subsumes wall-clock-quarantine transitively)",
        allowlistable: true,
    },
    RuleInfo {
        id: "golden-write-outside-bless",
        summary: "only registered bless modules and test code may combine golden-directory path literals with filesystem writes; fixtures regenerate through `figures bless`",
        allowlistable: true,
    },
    RuleInfo {
        id: "manifest-consistency",
        summary: "every golden fixture's on-disk digest must match its MANIFEST.json entry (epoch, digest, old→new history); mismatches name the bless command",
        allowlistable: false,
    },
    RuleInfo {
        id: "stale-allow",
        summary: "allow pragma no longer suppresses any finding or sanctions any taint source — delete it so the suppression surface cannot rot",
        allowlistable: false,
    },
    RuleInfo {
        id: "allow-missing-reason",
        summary: "every allow pragma must carry `-- <reason>`",
        allowlistable: false,
    },
    RuleInfo {
        id: "unknown-rule",
        summary: "allow pragma names a rule the analyzer does not know",
        allowlistable: false,
    },
    RuleInfo {
        id: "malformed-pragma",
        summary: "comment mentions spotweb-lint: but does not parse as allow(rule, …) -- reason",
        allowlistable: false,
    },
];

fn is_allowlistable(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule && r.allowlistable)
}

/// Marker that introduces a pragma inside any comment.
const PRAGMA_MARKER: &str = "spotweb-lint:";

/// Parsed pragma: named rules plus the (possibly missing) reason.
#[derive(Debug, PartialEq, Eq)]
pub struct Pragma {
    /// Rules the pragma allows.
    pub rules: Vec<String>,
    /// Reason text after `--`, if present and non-empty.
    pub reason: Option<String>,
}

/// Parse a comment's text. `None`: not a pragma at all. `Some(Err)`:
/// mentions the marker but does not parse (`malformed-pragma`).
pub fn parse_pragma(comment: &str) -> Option<Result<Pragma, String>> {
    let idx = comment.find(PRAGMA_MARKER)?;
    let rest = comment[idx + PRAGMA_MARKER.len()..]
        .trim()
        .trim_end_matches("*/")
        .trim_end();
    let Some(args) = rest.strip_prefix("allow") else {
        return Some(Err(format!(
            "expected `allow(<rule>, …)` after `{PRAGMA_MARKER}`"
        )));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Some(Err("expected `(` after `allow`".to_string()));
    };
    let Some(close) = args.find(')') else {
        return Some(Err("unclosed `(` in allow pragma".to_string()));
    };
    let mut rules = Vec::new();
    for part in args[..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Some(Err("empty rule name in allow pragma".to_string()));
        }
        rules.push(part.to_string());
    }
    let tail = args[close + 1..].trim();
    let reason = match tail.strip_prefix("--") {
        Some(r) => {
            let r = r.trim();
            if r.is_empty() {
                None
            } else {
                Some(r.to_string())
            }
        }
        None if tail.is_empty() => None,
        None => {
            return Some(Err(format!(
                "unexpected trailing text after allow(…): `{tail}` (reasons start with `--`)"
            )))
        }
    };
    Some(Ok(Pragma { rules, reason }))
}

/// The line a pragma at token `i` suppresses: its own line when code
/// precedes it on that line, otherwise the next code line.
fn pragma_target_line(file: &SourceFile, i: usize) -> u32 {
    let tok = file.tokens[i];
    let code_before = file.tokens[..i]
        .iter()
        .any(|t| !t.kind.is_comment() && t.line == tok.line);
    if code_before {
        return tok.line;
    }
    file.tokens[i + 1..]
        .iter()
        .find(|t| !t.kind.is_comment())
        .map_or(tok.line, |t| t.line)
}

// ---------------------------------------------------------------------------
// Checkable rules. Each pushes raw findings; the driver applies allows.
// ---------------------------------------------------------------------------

const WALL_CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];
const HASH_IDENTS: [&str; 2] = ["HashMap", "HashSet"];
const RNG_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];
/// Seeded but *stateful sequential* generators: fine in serial code,
/// banned in `LintConfig::shard_parallel` modules where draws must be
/// a pure function of (seed, stream, counter) so shard count cannot
/// change the byte output (ISSUE 10).
const STATEFUL_RNG_IDENTS: [&str; 1] = ["ChaCha8Rng"];
const TELEMETRY_METHODS: [&str; 8] = [
    "count",
    "counter",
    "counter_add",
    "gauge",
    "gauge_set",
    "observe",
    "histogram",
    "time",
];
const FMT_MACROS: [&str; 8] = [
    "format",
    "format_args",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
];

fn rule_wall_clock(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !matches!(file.target, Target::Lib | Target::Bin) {
        return;
    }
    if cfg
        .wall_clock_quarantine
        .iter()
        .any(|q| module_matches(&file.module_path, q))
    {
        return;
    }
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind == TokenKind::Ident && WALL_CLOCK_IDENTS.contains(&file.text(i)) {
            out.push(Finding {
                rule: "wall-clock-quarantine".to_string(),
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` outside the wall-clock quarantine (module `{}` is not registered); \
                     wall time breaks same-seed replay — derive timing from the sim clock, or \
                     register the module if it only feeds BENCH_* output",
                    file.text(i),
                    file.module_path
                ),
            });
        }
    }
}

fn rule_ordered_serialization(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !matches!(file.target, Target::Lib | Target::Bin) {
        return;
    }
    if !cfg
        .renderers
        .iter()
        .any(|r| module_matches(&file.module_path, r))
    {
        return;
    }
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind == TokenKind::Ident && !file.in_test[i] && HASH_IDENTS.contains(&file.text(i)) {
            out.push(Finding {
                rule: "ordered-serialization".to_string(),
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` in renderer module `{}`: hash iteration order is seeded per-process \
                     and would leak into byte-stable output; use BTreeMap/BTreeSet or sort \
                     explicitly",
                    file.text(i),
                    file.module_path
                ),
            });
        }
    }
}

fn rule_seeded_rng(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if file.target == Target::Other {
        return;
    }
    let shard_parallel = cfg
        .shard_parallel
        .iter()
        .any(|m| module_matches(&file.module_path, m));
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if RNG_IDENTS.contains(&file.text(i)) {
            out.push(Finding {
                rule: "seeded-rng-only".to_string(),
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` draws OS entropy; every RNG must be seeded from the run seed \
                     (SeedableRng::seed_from_u64 or a derived stream) so runs replay",
                    file.text(i)
                ),
            });
        } else if shard_parallel && !file.in_test[i] && STATEFUL_RNG_IDENTS.contains(&file.text(i))
        {
            out.push(Finding {
                rule: "seeded-rng-only".to_string(),
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` is a stateful sequential RNG in shard-parallel module `{}`: its \
                     draws depend on draw order, so shard count would change the bytes; \
                     use the counter streams in `sim::rng` (sample/CounterStream), the \
                     only sanctioned generator on this path",
                    file.text(i),
                    file.module_path
                ),
            });
        }
    }
}

fn rule_no_unwrap(file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    if file.target != Target::Lib {
        return;
    }
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind == TokenKind::Ident && !file.in_test[i] && file.text(i) == "unwrap" {
            let dotted = file.prev_code(i).is_some_and(|p| file.text(p) == ".");
            if dotted {
                out.push(Finding {
                    rule: "no-unwrap-in-lib".to_string(),
                    file: file.path.clone(),
                    line: t.line,
                    message: "`.unwrap()` in library code: propagate with `?`, or use \
                              `.expect(\"<invariant>\")` to document why failure is impossible"
                        .to_string(),
                });
            }
        }
    }
}

fn rule_telemetry_names(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !matches!(file.target, Target::Lib | Target::Bin) {
        return;
    }
    if file.crate_name == cfg.telemetry_crate {
        return;
    }
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind != TokenKind::Ident
            || file.in_test[i]
            || !TELEMETRY_METHODS.contains(&file.text(i))
        {
            continue;
        }
        let dotted = file.prev_code(i).is_some_and(|p| file.text(p) == ".");
        if !dotted {
            continue;
        }
        let Some(open) = file.next_code(i).filter(|&j| file.text(j) == "(") else {
            continue;
        };
        if let Some(arg) = file.next_code(open) {
            if file.tokens[arg].kind.is_string() {
                out.push(Finding {
                    rule: "telemetry-name-constants".to_string(),
                    file: file.path.clone(),
                    line: file.tokens[arg].line,
                    message: format!(
                        "inline metric name {} passed to `.{}(…)`; add a constant to \
                         telemetry::names so producers and consumers cannot fork the series",
                        file.text(arg),
                        file.text(i)
                    ),
                });
                continue;
            }
        }
        // Hot-path extension: inside registered per-request modules,
        // even a `names::` constant is too slow — a string-keyed
        // `.count(name, δ)` / `.observe(name, v)` pays a map probe per
        // request. Those modules resolve a handle once instead.
        // String-keyed sink calls are exactly the two-or-more-argument
        // forms; one-argument `handle.observe(v)` and zero-argument
        // iterator `.count()` never have a top-level comma.
        if !matches!(file.text(i), "count" | "observe") {
            continue;
        }
        if !cfg
            .hot_paths
            .iter()
            .any(|m| module_matches(&file.module_path, m))
        {
            continue;
        }
        if call_has_multiple_args(file, open) {
            out.push(Finding {
                rule: "telemetry-name-constants".to_string(),
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "string-keyed `.{}(…)` in hot-path module `{}`: resolve a \
                     CounterHandle/HistogramHandle once (sink.counter_handle / \
                     sink.histogram_handle) and use it in the per-request loop",
                    file.text(i),
                    file.module_path
                ),
            });
        }
    }
    rule_span_names(file, cfg, out);
}

/// Span-name extension of `telemetry-name-constants`: in registered
/// crates, profiling spans (`prof::scope!(…)`, `prof_scope!(…)`,
/// `ScopeGuard::enter(…)`) must be named through `telemetry::names`
/// `SPAN_*` constants. The span tree is golden-locked, so an inline
/// literal lets a producer and the golden fork silently — the same
/// failure mode as an inline metric name.
fn rule_span_names(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.span_crates.contains(&file.crate_name) {
        return;
    }
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind != TokenKind::Ident || file.in_test[i] {
            continue;
        }
        let (call, open) = match file.text(i) {
            // `prof::scope!("…")` or `crate-level prof_scope!("…")`.
            name @ ("scope" | "prof_scope") => {
                let open = file
                    .next_code(i)
                    .filter(|&j| file.text(j) == "!")
                    .and_then(|j| file.next_code(j))
                    .filter(|&j| file.text(j) == "(");
                (format!("{name}!"), open)
            }
            // `ScopeGuard::enter("…")` — `::` lexes as two `:` tokens.
            "enter" => {
                let qualified = file
                    .prev_code(i)
                    .filter(|&p| file.text(p) == ":")
                    .and_then(|p| file.prev_code(p))
                    .filter(|&p| file.text(p) == ":")
                    .and_then(|p| file.prev_code(p))
                    .is_some_and(|p| file.text(p) == "ScopeGuard");
                let open = if qualified {
                    file.next_code(i).filter(|&j| file.text(j) == "(")
                } else {
                    None
                };
                ("ScopeGuard::enter".to_string(), open)
            }
            _ => continue,
        };
        let Some(open) = open else {
            continue;
        };
        if let Some(arg) = file.next_code(open) {
            if file.tokens[arg].kind.is_string() {
                out.push(Finding {
                    rule: "telemetry-name-constants".to_string(),
                    file: file.path.clone(),
                    line: file.tokens[arg].line,
                    message: format!(
                        "inline span name {} passed to `{}(…)`; use a SPAN_* constant \
                         from telemetry::names so the golden-locked span tree cannot \
                         fork from its producers",
                        file.text(arg),
                        call
                    ),
                });
            }
        }
    }
}

/// `true` when the call whose `(` is at token `open` has a comma at
/// paren depth 1 — i.e. two or more top-level arguments.
fn call_has_multiple_args(file: &SourceFile, open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    loop {
        match file.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "," if depth == 1 => return true,
            _ => {}
        }
        match file.next_code(j) {
            Some(n) => j = n,
            None => return false,
        }
    }
}

fn rule_float_display(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !matches!(file.target, Target::Lib | Target::Bin) {
        return;
    }
    if !cfg
        .renderers
        .iter()
        .any(|r| module_matches(&file.module_path, r))
    {
        return;
    }
    for i in file.code_indices() {
        let t = file.tokens[i];
        if t.kind != TokenKind::Ident || file.in_test[i] || !FMT_MACROS.contains(&file.text(i)) {
            continue;
        }
        let Some(bang) = file.next_code(i).filter(|&j| file.text(j) == "!") else {
            continue;
        };
        let Some(open) = file
            .next_code(bang)
            .filter(|&j| matches!(file.text(j), "(" | "[" | "{"))
        else {
            continue;
        };
        // First string literal inside the macro call is the format
        // string (skipping e.g. the `write!(out, …)` destination).
        let mut depth = 0i32;
        let mut j = open;
        let fmt = loop {
            match file.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break None;
                    }
                }
                _ => {}
            }
            if file.tokens[j].kind.is_string() {
                break Some(j);
            }
            match file.next_code(j) {
                Some(n) => j = n,
                None => break None,
            }
        };
        let Some(fmt) = fmt else { continue };
        for spec in bad_format_specs(file.text(fmt)) {
            out.push(Finding {
                rule: "no-float-display-in-renderers".to_string(),
                file: file.path.clone(),
                line: file.tokens[fmt].line,
                message: format!(
                    "format spec `{{{spec}}}` in renderer module `{}`: scientific/precision/debug \
                     formatting is not the canonical float rendering; route floats through \
                     telemetry::json::json_f64 (shortest round-trip, stable `.0` suffix)",
                    file.module_path
                ),
            });
        }
    }
}

/// Extract `{…}` placeholders whose format spec bypasses canonical
/// float rendering: scientific (`e`/`E`), precision (`.N`), or debug
/// (`?`). Width/fill/align/radix specs on integers are fine.
fn bad_format_specs(literal: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = literal.chars().collect();
    let mut k = 0usize;
    while k < chars.len() {
        if chars[k] == '{' {
            if chars.get(k + 1) == Some(&'{') {
                k += 2;
                continue;
            }
            let mut close = k + 1;
            while close < chars.len() && chars[close] != '}' && chars[close] != '{' {
                close += 1;
            }
            if chars.get(close) == Some(&'}') {
                let piece: String = chars[k + 1..close].iter().collect();
                if let Some((_, spec)) = piece.split_once(':') {
                    let bad = spec.ends_with('e')
                        || spec.ends_with('E')
                        || spec.ends_with('?')
                        || spec.contains('.');
                    if bad {
                        out.push(piece);
                    }
                }
                k = close + 1;
                continue;
            }
        } else if chars[k] == '}' && chars.get(k + 1) == Some(&'}') {
            k += 2;
            continue;
        }
        k += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Cross-file rules. These run over the whole file set at once, using
// the call graph built from the same token streams.
// ---------------------------------------------------------------------------

/// The golden-directory path fragment the `golden-write-outside-bless`
/// rule looks for inside string literals. Kept as a module-level
/// constant so the analyzer's own function bodies never contain the
/// literal (the rule would otherwise flag the analyzer).
const GOLDEN_PATH_FRAGMENT: &str = "tests/golden";

/// Function-call names that look like filesystem writes. Name-based
/// and over-approximate by design (see [`crate::graph`]): `write` also
/// matches `io::Write::write`, which is the safe direction — a def
/// only fires when it *additionally* mentions the golden directory.
const WRITE_CALLS: [&str; 4] = ["write", "write_all", "create", "create_dir_all"];

/// Mark every pragma targeting `line` that names one of `rules` as
/// used, returning whether any did. Used for taint-source sanctioning:
/// a pragma that quarantines a wall-clock token also stops the token
/// from seeding the cross-file taint propagation.
fn sanctioned_by_pragma(allows: &mut [AllowRecord], line: u32, rules: &[&str]) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.target_line == line && rules.iter().any(|r| a.rules.iter().any(|ar| ar == r)) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

/// `determinism-taint`: non-test code in protected crates must not
/// reach a wall-clock or unseeded-RNG symbol through any call chain.
///
/// A *source* is a wall-clock/RNG token that nothing sanctions: not in
/// a quarantined module, not suppressed by a pragma naming the
/// per-file rule (or this one), not test code. Sources in protected
/// crates fire directly at the token line — exactly where
/// `wall-clock-quarantine` fires, so this rule subsumes it there — and
/// every non-test function in a protected crate that *reaches* a
/// source through the call graph fires at its definition line with a
/// witness chain, which the per-file rule cannot see.
fn rule_determinism_taint(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &LintConfig,
    allows_per_file: &mut [Vec<AllowRecord>],
    out: &mut [Vec<Finding>],
) {
    // 1. Collect sources: token-level findings plus the defs that
    //    contain them (the seeds of the reverse reachability pass).
    let mut source_symbol: std::collections::BTreeMap<usize, String> =
        std::collections::BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !matches!(file.target, Target::Lib | Target::Bin) {
            continue;
        }
        let quarantined = cfg
            .wall_clock_quarantine
            .iter()
            .any(|q| module_matches(&file.module_path, q));
        let shard_parallel = cfg
            .shard_parallel
            .iter()
            .any(|m| module_matches(&file.module_path, m));
        for i in file.code_indices() {
            let t = file.tokens[i];
            if t.kind != TokenKind::Ident || file.in_test[i] {
                continue;
            }
            let text = file.text(i);
            let is_wall = WALL_CLOCK_IDENTS.contains(&text);
            // Stateful sequential RNGs taint only the shard-parallel
            // arrival path: elsewhere a seeded ChaCha8Rng replays fine.
            let is_rng = RNG_IDENTS.contains(&text)
                || (shard_parallel && STATEFUL_RNG_IDENTS.contains(&text));
            if !is_wall && !is_rng {
                continue;
            }
            if is_wall && quarantined {
                continue;
            }
            let sanction: &[&str] = if is_wall {
                &["wall-clock-quarantine", "determinism-taint"]
            } else {
                &["seeded-rng-only", "determinism-taint"]
            };
            if sanctioned_by_pragma(&mut allows_per_file[fi], t.line, sanction) {
                continue;
            }
            if cfg.taint_protected.contains(&file.crate_name) {
                out[fi].push(Finding {
                    rule: "determinism-taint".to_string(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{text}` is a determinism-taint source in protected crate `{}`; \
                         golden-locked output is a function of these crates plus the run \
                         seed, so derive the value from the sim clock or a seeded stream",
                        file.crate_name
                    ),
                });
            }
            if let Some(d) = graph.def_containing(fi, i) {
                source_symbol.entry(d).or_insert_with(|| text.to_string());
            }
        }
    }

    // 2. Propagate: any function that can reach a source is tainted.
    let sources: Vec<usize> = source_symbol.keys().copied().collect();
    let reach = graph.reach_from(&sources);
    for (d, def) in graph.defs.iter().enumerate() {
        // Direct sources already fired at the token line above.
        if !matches!(reach[d], Reach::Via(_)) {
            continue;
        }
        let file = &files[def.file];
        if !cfg.taint_protected.contains(&file.crate_name)
            || def.in_test
            || !matches!(file.target, Target::Lib | Target::Bin)
        {
            continue;
        }
        let chain = graph.chain(d, &reach);
        let src = chain.last().copied().unwrap_or(d);
        let symbol = source_symbol.get(&src).map_or("?", String::as_str);
        out[def.file].push(Finding {
            rule: "determinism-taint".to_string(),
            file: file.path.clone(),
            line: def.line,
            message: format!(
                "fn `{}` in protected crate `{}` reaches determinism source `{symbol}` \
                 through the call chain {}; no wall-clock/RNG token appears in this file, \
                 so only cross-file analysis sees it — break the chain or quarantine the \
                 callee",
                def.name,
                file.crate_name,
                graph.chain_names(&chain)
            ),
        });
    }
}

/// `golden-write-outside-bless`: a non-test function that mentions the
/// golden directory in a string literal *and* reaches a
/// filesystem-write call through the call graph must live in a
/// registered bless module. Everything else regenerates fixtures
/// through `figures bless`, which records the epoch bump.
fn rule_golden_write(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &LintConfig,
    out: &mut [Vec<Finding>],
) {
    // Defs that issue a write-looking call directly.
    let mut writer_defs: Vec<usize> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for i in file.code_indices() {
            if file.tokens[i].kind != TokenKind::Ident || !WRITE_CALLS.contains(&file.text(i)) {
                continue;
            }
            if file.next_code(i).map(|j| file.text(j)) != Some("(") {
                continue;
            }
            if file.prev_code(i).map(|p| file.text(p)) == Some("fn") {
                continue;
            }
            if let Some(d) = graph.def_containing(fi, i) {
                writer_defs.push(d);
            }
        }
    }
    writer_defs.sort_unstable();
    writer_defs.dedup();
    let reach = graph.reach_from(&writer_defs);

    for (fi, file) in files.iter().enumerate() {
        if !matches!(file.target, Target::Lib | Target::Bin) {
            continue;
        }
        if cfg
            .golden_writers
            .iter()
            .any(|w| module_matches(&file.module_path, w))
        {
            continue;
        }
        for i in file.code_indices() {
            let t = file.tokens[i];
            if !t.kind.is_string() || file.in_test[i] {
                continue;
            }
            if !file.text(i).contains(GOLDEN_PATH_FRAGMENT) {
                continue;
            }
            let Some(d) = graph.def_containing(fi, i) else {
                // Module-level consts (e.g. the manifest module's own
                // path constants) are not write sites.
                continue;
            };
            if graph.defs[d].in_test || reach[d] == Reach::No {
                continue;
            }
            let chain = graph.chain(d, &reach);
            out[fi].push(Finding {
                rule: "golden-write-outside-bless".to_string(),
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "fn `{}` mentions a golden-directory path and reaches a filesystem \
                     write ({}); only registered bless modules may rewrite fixtures — \
                     route regeneration through `figures bless` so the epoch bump and \
                     old→new digests are recorded in the manifest",
                    graph.defs[d].name,
                    graph.chain_names(&chain)
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Collect one file's allow pragmas, pushing meta-findings
/// (`malformed-pragma`, `unknown-rule`, `allow-missing-reason`) as
/// they surface.
fn collect_pragmas(file: &SourceFile, findings: &mut Vec<Finding>) -> Vec<AllowRecord> {
    let mut allows: Vec<AllowRecord> = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.kind.is_comment() {
            continue;
        }
        // Doc comments never carry live pragmas — they quote
        // pragma syntax when documenting it (this crate included).
        let text = file.text(i);
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| text.starts_with(d))
        {
            continue;
        }
        match parse_pragma(text) {
            None => {}
            Some(Err(msg)) => findings.push(Finding {
                rule: "malformed-pragma".to_string(),
                file: file.path.clone(),
                line: tok.line,
                message: msg,
            }),
            Some(Ok(pragma)) => {
                for r in &pragma.rules {
                    if !is_allowlistable(r) {
                        findings.push(Finding {
                            rule: "unknown-rule".to_string(),
                            file: file.path.clone(),
                            line: tok.line,
                            message: format!(
                                "allow pragma names unknown rule `{r}` (see --rules for \
                                 the catalog)"
                            ),
                        });
                    }
                }
                if pragma.reason.is_none() {
                    findings.push(Finding {
                        rule: "allow-missing-reason".to_string(),
                        file: file.path.clone(),
                        line: tok.line,
                        message: "allow pragma without `-- <reason>`: every suppression \
                                  must say why it is safe"
                            .to_string(),
                    });
                }
                allows.push(AllowRecord {
                    file: file.path.clone(),
                    line: tok.line,
                    target_line: pragma_target_line(file, i),
                    rules: pragma.rules,
                    reason: pragma.reason.unwrap_or_default(),
                    used: false,
                });
            }
        }
    }
    allows
}

/// Run every rule over `files` (no manifest input), apply allow
/// pragmas, and return the canonicalized report.
pub fn lint_files(cfg: &LintConfig, files: &[SourceFile]) -> Report {
    lint_files_with_manifest(cfg, files, None)
}

/// Run every rule — per-file, cross-file, and (when `manifest` is
/// given) the golden-manifest consistency checks — apply allow
/// pragmas, and return the canonicalized report.
pub fn lint_files_with_manifest(
    cfg: &LintConfig,
    files: &[SourceFile],
    manifest: Option<&ManifestInput>,
) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    // 1. Pragmas first: the cross-file taint rule consults them when
    //    deciding what counts as a sanctioned source.
    let mut allows_per_file: Vec<Vec<AllowRecord>> = files
        .iter()
        .map(|file| collect_pragmas(file, &mut report.findings))
        .collect();

    // 2. Per-file rules.
    let mut raw_per_file: Vec<Vec<Finding>> = files
        .iter()
        .map(|file| {
            let mut raw: Vec<Finding> = Vec::new();
            rule_wall_clock(file, cfg, &mut raw);
            rule_ordered_serialization(file, cfg, &mut raw);
            rule_seeded_rng(file, cfg, &mut raw);
            rule_no_unwrap(file, cfg, &mut raw);
            rule_telemetry_names(file, cfg, &mut raw);
            rule_float_display(file, cfg, &mut raw);
            raw
        })
        .collect();

    // 3. Cross-file rules over the call graph.
    let graph = CallGraph::build(files);
    rule_determinism_taint(files, &graph, cfg, &mut allows_per_file, &mut raw_per_file);
    rule_golden_write(files, &graph, cfg, &mut raw_per_file);

    // 4. Apply allows line-by-line, per file.
    for (fi, raw) in raw_per_file.into_iter().enumerate() {
        for f in raw {
            let hit = allows_per_file[fi]
                .iter_mut()
                .find(|a| a.target_line == f.line && a.rules.contains(&f.rule));
            match hit {
                Some(a) => {
                    a.used = true;
                    report.suppressed.push(Suppressed {
                        rule: f.rule,
                        file: f.file,
                        line: f.line,
                        reason: a.reason.clone(),
                    });
                }
                None => report.findings.push(f),
            }
        }
    }

    // 5. Stale allows: a pragma that neither suppressed a finding nor
    //    sanctioned a taint source is drift and must go.
    for allows in &mut allows_per_file {
        for a in allows.iter() {
            if !a.used {
                report.findings.push(Finding {
                    rule: "stale-allow".to_string(),
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) suppresses nothing — the violation it silenced is gone; \
                         delete the pragma so the suppression surface tracks reality",
                        a.rules.join(", ")
                    ),
                });
            }
        }
        report.allows.append(allows);
    }

    // 6. Golden-manifest consistency (hard findings, never
    //    allowlistable).
    if let Some(input) = manifest {
        report.findings.append(&mut manifest::check_input(input));
    }

    report.canonicalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::SourceFile;

    fn cfg() -> LintConfig {
        LintConfig {
            wall_clock_quarantine: vec!["app::quarantined".to_string()],
            renderers: vec!["app::render".to_string()],
            telemetry_crate: "telemetry".to_string(),
            hot_paths: vec!["app::hot".to_string()],
            span_crates: vec!["app".to_string()],
            // Namespaces deliberately disjoint from "app" so the
            // cross-file rules stay quiet in the per-file tests above.
            taint_protected: vec!["det".to_string()],
            golden_writers: vec!["det::blessed".to_string()],
            shard_parallel: vec!["app::arrivals".to_string()],
        }
    }

    fn lint_one(path: &str, src: &str) -> Report {
        let f = SourceFile::from_source(path, src.to_string());
        lint_files(&cfg(), &[f])
    }

    fn rules_of(r: &Report) -> Vec<&str> {
        r.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn wall_clock_flagged_outside_quarantine() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(
            rules_of(&r),
            ["wall-clock-quarantine", "wall-clock-quarantine"]
        );
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.findings[1].line, 2);
    }

    #[test]
    fn wall_clock_ok_in_quarantined_module() {
        let r = lint_one(
            "crates/app/src/quarantined.rs",
            "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn wall_clock_in_string_or_comment_is_fine() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "// Instant is quarantined\nconst S: &str = \"Instant::now\";\n",
        );
        assert!(r.is_clean());
    }

    #[test]
    fn hash_collections_flagged_only_in_renderers() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let r = lint_one("crates/app/src/render.rs", src);
        assert_eq!(
            rules_of(&r),
            ["ordered-serialization", "ordered-serialization"]
        );
        let r = lint_one("crates/app/src/other.rs", src);
        assert!(r.is_clean(), "non-renderer modules may use HashMap");
    }

    #[test]
    fn hash_collections_ok_in_renderer_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let r = lint_one("crates/app/src/render.rs", src);
        assert!(r.is_clean());
    }

    #[test]
    fn entropy_rngs_flagged_everywhere_even_tests() {
        let r = lint_one(
            "crates/app/tests/integration.rs",
            "fn f() { let mut rng = rand::thread_rng(); }\n",
        );
        assert_eq!(rules_of(&r), ["seeded-rng-only"]);
        let r = lint_one(
            "crates/app/src/lib.rs",
            "use std::collections::hash_map::RandomState;\n",
        );
        assert_eq!(rules_of(&r), ["seeded-rng-only"]);
    }

    #[test]
    fn stateful_rng_flagged_only_in_shard_parallel_modules() {
        // Seeded, so the entropy rule stays quiet — but in a
        // shard-parallel module the *statefulness* is the violation.
        let src = "use rand_chacha::ChaCha8Rng;\n\
                   fn f(seed: u64) { let _ = ChaCha8Rng::seed_from_u64(seed); }\n";
        let r = lint_one("crates/app/src/arrivals.rs", src);
        assert_eq!(rules_of(&r), ["seeded-rng-only", "seeded-rng-only"]);
        assert!(
            r.findings[0].message.contains("stateful sequential RNG")
                && r.findings[0].message.contains("sim::rng"),
            "{}",
            r.findings[0].message
        );
        // Outside the registry a seeded ChaCha8Rng replays fine.
        let r = lint_one("crates/app/src/lib.rs", src);
        assert!(r.is_clean(), "{:?}", r.findings);
        // Test code in shard-parallel modules may use it (e.g. as a
        // reference generator in property tests).
        let test_src = "#[cfg(test)]\nmod tests {\n    use rand_chacha::ChaCha8Rng;\n}\n";
        let r = lint_one("crates/app/src/arrivals.rs", test_src);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn stateful_rng_is_suppressible_with_a_reason() {
        let src = "use rand_chacha::ChaCha8Rng;\n\
                   // spotweb-lint: allow(seeded-rng-only) -- serial-only helper, never sharded\n\
                   fn f(seed: u64) { let _ = ChaCha8Rng::seed_from_u64(seed); }\n";
        let r = lint_one("crates/app/src/arrivals.rs", src);
        // Line 1's `use` still fires; the pragma covers line 3.
        assert_eq!(rules_of(&r), ["seeded-rng-only"]);
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn unwrap_flagged_in_lib_not_tests_or_bins() {
        let src = "fn f() { g().unwrap(); }\n#[cfg(test)]\nmod t { fn h() { g().unwrap(); } }\n";
        let r = lint_one("crates/app/src/lib.rs", src);
        assert_eq!(rules_of(&r), ["no-unwrap-in-lib"]);
        assert_eq!(r.findings[0].line, 1);
        let r = lint_one("crates/app/src/bin/tool.rs", src);
        assert!(r.is_clean(), "bins may unwrap");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "fn f() { g().unwrap_or(0); h().unwrap_or_default(); }\n",
        );
        assert!(r.is_clean());
    }

    #[test]
    fn inline_metric_names_flagged() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "fn f(s: &Sink) { s.count(\"my_total\", 1); s.observe(\"lat\", 0.5); }\n",
        );
        assert_eq!(
            rules_of(&r),
            ["telemetry-name-constants", "telemetry-name-constants"]
        );
    }

    #[test]
    fn constant_metric_names_and_float_observe_are_fine() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "fn f(s: &Sink) { s.count(names::SERVED, 1); p.observe(0.5); }\n",
        );
        assert!(r.is_clean());
    }

    #[test]
    fn string_keyed_telemetry_flagged_in_hot_path_modules() {
        // Even a names:: constant is a map probe per request — hot-path
        // modules must go through interned handles.
        let r = lint_one(
            "crates/app/src/hot.rs",
            "fn f(s: &Sink) { s.count(names::SERVED, 1); s.observe(names::LAT, 0.5); }\n",
        );
        assert_eq!(
            rules_of(&r),
            ["telemetry-name-constants", "telemetry-name-constants"]
        );
        assert!(r.findings[0].message.contains("CounterHandle"));
    }

    #[test]
    fn handle_calls_and_iterator_count_are_fine_in_hot_paths() {
        let r = lint_one(
            "crates/app/src/hot.rs",
            "fn f(h: &CounterHandle, g: &HistogramHandle, v: &[u32]) {\n\
             \x20   h.inc(); g.observe(0.5); let n = v.iter().count();\n\
             \x20   let m = v.iter().filter(|x| f(**x, 0)).count();\n}\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn string_keyed_telemetry_fine_outside_hot_paths() {
        let r = lint_one(
            "crates/app/src/cold.rs",
            "fn f(s: &Sink) { s.count(names::SERVED, 1); s.observe(names::LAT, 0.5); }\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn telemetry_crate_itself_is_exempt() {
        let r = lint_one(
            "crates/telemetry/src/metrics.rs",
            "fn f(&mut self) { self.count(\"x\", 1); }\n",
        );
        assert!(r.is_clean());
    }

    #[test]
    fn inline_span_names_flagged_in_span_crates() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "fn f() { prof::scope!(\"app.work\"); \
             let _g = prof::ScopeGuard::enter(\"app.other\"); }\n",
        );
        assert_eq!(
            rules_of(&r),
            ["telemetry-name-constants", "telemetry-name-constants"]
        );
        assert!(r.findings[0].message.contains("inline span name"));
    }

    #[test]
    fn constant_span_names_and_other_crates_are_fine() {
        // names:: constants pass in a span crate…
        let r = lint_one(
            "crates/app/src/lib.rs",
            "fn f() { prof::scope!(names::SPAN_LB_ROUTE); }\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
        // …and a crate outside the registry may use literals (e.g.
        // bench phase labels).
        let r = lint_one(
            "crates/other/src/lib.rs",
            "fn f() { prof::scope!(\"bench.phase\"); }\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn float_specs_flagged_in_renderers() {
        let r = lint_one(
            "crates/app/src/render.rs",
            "fn f(x: f64) -> String { format!(\"{x:e} {:.2} {:?}\", x, x) }\n",
        );
        assert_eq!(r.findings.len(), 3);
        assert!(rules_of(&r)
            .iter()
            .all(|r| *r == "no-float-display-in-renderers"));
    }

    #[test]
    fn plain_and_width_specs_are_fine() {
        let r = lint_one(
            "crates/app/src/render.rs",
            "fn f(x: u32) -> String { format!(\"{x} {:>8} {{literal}}\", x) }\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn write_macro_skips_destination_arg() {
        let r = lint_one(
            "crates/app/src/render.rs",
            "fn f(o: &mut String, x: f64) { write!(o, \"{:.3}\", x); }\n",
        );
        assert_eq!(rules_of(&r), ["no-float-display-in-renderers"]);
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "use std::time::Instant; // spotweb-lint: allow(wall-clock-quarantine) -- timing only\n",
        );
        assert!(r.is_clean());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "timing only");
        assert!(r.allows[0].used);
    }

    #[test]
    fn allow_on_preceding_line_suppresses_next_code_line() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "// spotweb-lint: allow(wall-clock-quarantine) -- timing only\nuse std::time::Instant;\n",
        );
        assert!(r.is_clean());
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_a_violation_but_still_suppresses() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "// spotweb-lint: allow(wall-clock-quarantine)\nuse std::time::Instant;\n",
        );
        assert_eq!(rules_of(&r), ["allow-missing-reason"]);
        assert_eq!(r.suppressed.len(), 1, "the wall-clock hit is suppressed");
    }

    #[test]
    fn allow_with_dashes_but_empty_reason_is_a_violation() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "// spotweb-lint: allow(wall-clock-quarantine) --\nuse std::time::Instant;\n",
        );
        assert!(rules_of(&r).contains(&"allow-missing-reason"));
    }

    #[test]
    fn unknown_rule_and_malformed_pragmas_are_violations() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "// spotweb-lint: allow(no-such-rule) -- why\n// spotweb-lint: disable everything\n",
        );
        let mut rules = rules_of(&r);
        rules.sort_unstable();
        // The unknown-rule allow also suppresses nothing → stale-allow.
        assert_eq!(rules, ["malformed-pragma", "stale-allow", "unknown-rule"]);
    }

    #[test]
    fn allow_does_not_leak_to_other_lines_or_rules() {
        let r = lint_one(
            "crates/app/src/lib.rs",
            "// spotweb-lint: allow(no-unwrap-in-lib) -- wrong rule\nuse std::time::Instant;\n",
        );
        // The mismatched pragma is itself flagged as stale.
        assert_eq!(rules_of(&r), ["stale-allow", "wall-clock-quarantine"]);
        assert!(!r.allows[0].used);
    }

    #[test]
    fn multi_rule_allow() {
        let r = lint_one(
            "crates/app/src/render.rs",
            "// spotweb-lint: allow(ordered-serialization, seeded-rng-only) -- fixture\nuse std::collections::{HashMap, hash_map::RandomState};\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 2);
    }

    #[test]
    fn block_comment_pragma_parses() {
        let p = parse_pragma("/* spotweb-lint: allow(no-unwrap-in-lib) -- safe here */");
        assert_eq!(
            p,
            Some(Ok(Pragma {
                rules: vec!["no-unwrap-in-lib".to_string()],
                reason: Some("safe here".to_string())
            }))
        );
    }

    #[test]
    fn report_counts_files() {
        let a = SourceFile::from_source("crates/app/src/a.rs", "fn a() {}\n".to_string());
        let b = SourceFile::from_source("crates/app/src/b.rs", "fn b() {}\n".to_string());
        let r = lint_files(&cfg(), &[a, b]);
        assert_eq!(r.files_scanned, 2);
        assert!(r.is_clean());
    }

    // -- cross-file rules ---------------------------------------------------

    fn lint_many(sources: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::from_source(p, s.to_string()))
            .collect();
        lint_files(&cfg(), &files)
    }

    #[test]
    fn taint_fires_at_source_tokens_in_protected_crates() {
        // Same file:line as wall-clock-quarantine — the subsumption
        // the per-file rule's retirement depends on.
        let r = lint_many(&[(
            "crates/det/src/lib.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n",
        )]);
        let rules = rules_of(&r);
        assert_eq!(
            rules.iter().filter(|r| **r == "determinism-taint").count(),
            2
        );
        let taint: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == "determinism-taint")
            .map(|f| f.line)
            .collect();
        let wall: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == "wall-clock-quarantine")
            .map(|f| f.line)
            .collect();
        assert_eq!(taint, wall, "token-level taint mirrors the per-file rule");
    }

    #[test]
    fn taint_propagates_across_files_with_witness_chain() {
        // No wall-clock token in decide.rs at all: only the call graph
        // can see the taint.
        let r = lint_many(&[
            (
                "crates/det/src/decide.rs",
                "pub fn decide(load: u64) -> u64 { load + now_ms() }\n",
            ),
            (
                "crates/other/src/clock.rs",
                "pub fn now_ms() -> u64 { SystemTime::now_raw() }\n",
            ),
        ]);
        let taint: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "determinism-taint")
            .collect();
        assert_eq!(taint.len(), 1, "{:?}", r.findings);
        assert_eq!(taint[0].file, "crates/det/src/decide.rs");
        assert_eq!(taint[0].line, 1);
        assert!(taint[0].message.contains("decide -> now_ms"));
        assert!(taint[0].message.contains("SystemTime"));
    }

    #[test]
    fn quarantined_and_pragma_sanctioned_sources_do_not_taint() {
        let r = lint_many(&[
            (
                "crates/det/src/caller.rs",
                "pub fn run() -> u64 { quarantined_time() + allowed_time() }\n",
            ),
            (
                "crates/app/src/quarantined.rs",
                "pub fn quarantined_time() -> u64 { Instant::stamp() }\n",
            ),
            (
                "crates/app/src/timing.rs",
                "pub fn allowed_time() -> u64 {\n    \
                 // spotweb-lint: allow(wall-clock-quarantine) -- BENCH-only timing\n    \
                 Instant::stamp()\n}\n",
            ),
        ]);
        assert!(
            !rules_of(&r).contains(&"determinism-taint"),
            "{:?}",
            r.findings
        );
        assert!(r.allows[0].used, "sanctioning counts as use");
    }

    #[test]
    fn taint_finding_is_allowlistable_at_the_def_line() {
        let r = lint_many(&[
            (
                "crates/det/src/decide.rs",
                "// spotweb-lint: allow(determinism-taint) -- feeds BENCH output only\n\
                 pub fn decide(load: u64) -> u64 { load + now_ms() }\n",
            ),
            (
                "crates/other/src/clock.rs",
                "pub fn now_ms() -> u64 { SystemTime::now_raw() }\n",
            ),
        ]);
        assert!(
            !rules_of(&r).contains(&"determinism-taint"),
            "{:?}",
            r.findings
        );
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn golden_write_needs_both_literal_and_write_reachability() {
        let path = format!("{GOLDEN_PATH_FRAGMENT}/x.json");
        // Mentions the path AND reaches fs::write two hops away.
        let writer = format!(
            "pub fn dump(b: &[u8]) {{ save(\"{path}\", b); }}\n\
             fn save(p: &str, b: &[u8]) {{ raw(p, b); }}\n\
             fn raw(p: &str, b: &[u8]) {{ std::fs::write(p, b).expect(\"io\"); }}\n"
        );
        let r = lint_many(&[("crates/app/src/export.rs", &writer)]);
        let hits: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "golden-write-outside-bless")
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", r.findings);
        assert_eq!(hits[0].line, 1);
        assert!(hits[0].message.contains("dump -> save -> raw"));

        // The literal alone (a reader) is fine…
        let reader =
            format!("pub fn read() -> Vec<u8> {{ std::fs::read(\"{path}\").expect(\"io\") }}\n");
        let r = lint_many(&[("crates/app/src/import.rs", &reader)]);
        assert!(r.is_clean(), "{:?}", r.findings);

        // …and so is a registered bless module doing the real thing.
        let r = lint_many(&[("crates/det/src/blessed.rs", &writer)]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn manifest_input_threads_through_the_driver() {
        let input = ManifestInput {
            manifest_text: None,
            files: vec![("a.json".to_string(), b"x".to_vec())],
        };
        let f = SourceFile::from_source("crates/app/src/lib.rs", "fn f() {}\n".to_string());
        let r = lint_files_with_manifest(&cfg(), &[f], Some(&input));
        assert_eq!(rules_of(&r), ["manifest-consistency"]);
    }
}
