//! Source-file model: workspace discovery, module-path derivation,
//! and `#[cfg(test)]` scope computation.
//!
//! Rules never touch the filesystem — they operate on [`SourceFile`]s,
//! which can be built from in-memory strings (unit tests, the
//! seeded-violation test) or scanned from a real workspace tree.

use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::{lex, Token};

/// Which compilation target a file belongs to; several rules only
/// apply to library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// `src/` of a crate (excluding `src/bin/` and `src/main.rs`).
    Lib,
    /// `src/bin/*.rs` or `src/main.rs`.
    Bin,
    /// `tests/*.rs` integration tests.
    Test,
    /// `examples/*.rs`.
    Example,
    /// `benches/*.rs`.
    Bench,
    /// Anything else (`build.rs`, stray scripts) — exempt from rules.
    Other,
}

/// One lexed source file plus the derived facts rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated on every platform.
    pub path: String,
    /// Module path such as `sim::sweep` or `bench::bin::figures`;
    /// the crate component is the directory name under `crates/`
    /// (the root package maps to `spotweb`).
    pub module_path: String,
    /// Short crate name (`sim`, `bench`, `spotweb` for the root).
    pub crate_name: String,
    /// Compilation target kind.
    pub target: Target,
    /// Raw source text.
    pub src: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]`-guarded item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Build a file from an in-memory source string. `rel_path` uses
    /// `/` separators and is relative to the workspace root.
    pub fn from_source(rel_path: &str, src: String) -> SourceFile {
        let tokens = lex(&src);
        let in_test = test_scopes(&src, &tokens);
        let (crate_name, module_path, target) = classify(rel_path);
        SourceFile {
            path: rel_path.to_string(),
            module_path,
            crate_name,
            target,
            src,
            tokens,
            in_test,
        }
    }

    /// Indices of non-comment tokens, in order.
    pub fn code_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| !self.tokens[i].kind.is_comment())
    }

    /// Text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.src)
    }

    /// Index of the nearest non-comment token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].kind.is_comment())
    }

    /// Index of the nearest non-comment token after `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| !self.tokens[j].kind.is_comment())
    }
}

/// Derive `(crate_name, module_path, target)` from a relative path.
fn classify(rel_path: &str) -> (String, String, Target) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = if parts.len() >= 3 && parts[0] == "crates" {
        (parts[1], &parts[2..])
    } else {
        // Root package: `src/…`, `tests/…`, `examples/…`.
        ("spotweb", &parts[..])
    };
    let module = |segs: &[&str]| -> String {
        let mut out = vec![crate_name.to_string()];
        for (k, s) in segs.iter().enumerate() {
            let name = s.strip_suffix(".rs").unwrap_or(s);
            let last = k + 1 == segs.len();
            if last && (name == "lib" || name == "mod" || name == "main") {
                continue;
            }
            out.push(name.to_string());
        }
        out.join("::")
    };
    let (module_path, target) = match rest {
        ["src", "bin", bin @ ..] if !bin.is_empty() => {
            let mut segs = vec!["bin"];
            segs.extend(bin);
            (module(&segs), Target::Bin)
        }
        ["src", "main.rs"] => (module(&[]), Target::Bin),
        ["src", tail @ ..] if !tail.is_empty() => (module(tail), Target::Lib),
        ["tests", tail @ ..] if !tail.is_empty() => {
            let mut segs = vec!["tests"];
            segs.extend(tail);
            (module(&segs), Target::Test)
        }
        ["examples", tail @ ..] if !tail.is_empty() => {
            let mut segs = vec!["examples"];
            segs.extend(tail);
            (module(&segs), Target::Example)
        }
        ["benches", tail @ ..] if !tail.is_empty() => {
            let mut segs = vec!["benches"];
            segs.extend(tail);
            (module(&segs), Target::Bench)
        }
        _ => (module(rest), Target::Other),
    };
    (crate_name.to_string(), module_path, target)
}

/// `true` when `module_path` equals `prefix` or sits inside it
/// (segment-aware: `sim::sweep` matches `sim::sweep::inner` but not
/// `sim::sweeper`).
pub fn module_matches(module_path: &str, prefix: &str) -> bool {
    module_path == prefix
        || (module_path.len() > prefix.len()
            && module_path.starts_with(prefix)
            && module_path[prefix.len()..].starts_with("::"))
}

/// Compute, per token, whether it sits inside a test-gated item:
/// `#[cfg(test)]`, `#[test]`, or any `cfg` attribute mentioning
/// `test` without `not` (so `#[cfg(not(test))]` code stays linted).
fn test_scopes(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    // Indices of non-comment tokens.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].kind.is_comment())
        .collect();
    let text = |ci: usize| tokens[code[ci]].text(src);

    let mut p = 0usize;
    while p < code.len() {
        if text(p) != "#" || p + 1 >= code.len() || text(p + 1) != "[" {
            p += 1;
            continue;
        }
        let attr_start = p;
        // Consume the attribute's bracket group.
        let (attr_end, is_test) = scan_attr(&code, tokens, src, p + 1);
        p = attr_end;
        if !is_test {
            continue;
        }
        // Skip any further attributes on the same item.
        while p + 1 < code.len() && text(p) == "#" && text(p + 1) == "[" {
            let (next_end, _) = scan_attr(&code, tokens, src, p + 1);
            p = next_end;
        }
        // The guarded item extends to the matching `}` of its first
        // top-level brace, or to a `;` for brace-less items.
        let mut depth = 0i32;
        while p < code.len() {
            match text(p) {
                "{" | "(" | "[" => depth += 1,
                "}" => {
                    depth -= 1;
                    // Only a closing *curly* at depth 0 ends the item:
                    // `fn f() { … }` must not end at the signature's `)`.
                    if depth == 0 {
                        break;
                    }
                }
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            p += 1;
        }
        let end_tok = if p < code.len() {
            code[p]
        } else {
            tokens.len() - 1
        };
        for f in flags.iter_mut().take(end_tok + 1).skip(code[attr_start]) {
            *f = true;
        }
        p += 1;
    }
    flags
}

/// Scan an attribute whose `[` is at code-index `open`; returns the
/// code-index one past the closing `]` and whether the attribute
/// gates test-only code.
fn scan_attr(code: &[usize], tokens: &[Token], src: &str, open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut q = open;
    while q < code.len() {
        let t = tokens[code[q]].text(src);
        match t {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return (q + 1, has_test && !has_not);
                }
            }
            "test" => has_test = true,
            "not" => has_not = true,
            _ => {}
        }
        q += 1;
    }
    (q, false)
}

/// Recursively collect every `.rs` file under `root`, skipping
/// `target/`, `vendor/`, `fixtures/`, and VCS directories. Paths are
/// sorted so the resulting report is byte-stable.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut rel_paths = Vec::new();
    collect(root, root, &mut rel_paths)?;
    rel_paths.sort();
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let src = fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::from_source(&rel, src));
    }
    Ok(files)
}

const SKIP_DIRS: [&str; 5] = ["target", "vendor", "fixtures", ".git", "node_modules"];

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_lib_and_module() {
        let f = SourceFile::from_source("crates/sim/src/sweep.rs", String::new());
        assert_eq!(f.crate_name, "sim");
        assert_eq!(f.module_path, "sim::sweep");
        assert_eq!(f.target, Target::Lib);
        let f = SourceFile::from_source("crates/sim/src/lib.rs", String::new());
        assert_eq!(f.module_path, "sim");
        let f = SourceFile::from_source("crates/bench/src/bin/figures.rs", String::new());
        assert_eq!(f.module_path, "bench::bin::figures");
        assert_eq!(f.target, Target::Bin);
    }

    #[test]
    fn classify_root_package_and_tests() {
        let f = SourceFile::from_source("src/lib.rs", String::new());
        assert_eq!(f.module_path, "spotweb");
        assert_eq!(f.target, Target::Lib);
        let f = SourceFile::from_source("tests/golden.rs", String::new());
        assert_eq!(f.module_path, "spotweb::tests::golden");
        assert_eq!(f.target, Target::Test);
        let f = SourceFile::from_source("crates/lb/tests/proptests.rs", String::new());
        assert_eq!(f.module_path, "lb::tests::proptests");
        assert_eq!(f.target, Target::Test);
        let f = SourceFile::from_source("examples/quickstart.rs", String::new());
        assert_eq!(f.target, Target::Example);
        let f = SourceFile::from_source("crates/bench/benches/solver.rs", String::new());
        assert_eq!(f.target, Target::Bench);
    }

    #[test]
    fn module_prefix_matching_is_segment_aware() {
        assert!(module_matches("sim::sweep", "sim::sweep"));
        assert!(module_matches("sim::sweep::inner", "sim::sweep"));
        assert!(module_matches("telemetry::json", "telemetry"));
        assert!(!module_matches("sim::sweeper", "sim::sweep"));
        assert!(!module_matches("sim", "sim::sweep"));
    }

    #[test]
    fn cfg_test_module_is_scoped() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn more_lib() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        let flag_of = |name: &str| {
            (0..f.tokens.len())
                .find(|&i| f.text(i) == name)
                .map(|i| f.in_test[i])
        };
        assert_eq!(flag_of("lib_code"), Some(false));
        assert_eq!(flag_of("helper"), Some(true));
        assert_eq!(flag_of("more_lib"), Some(false));
    }

    #[test]
    fn test_fn_attribute_is_scoped() {
        let src = "#[test]\nfn a_test() { body(); }\nfn lib() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        let flag_of = |name: &str| {
            (0..f.tokens.len())
                .find(|&i| f.text(i) == name)
                .map(|i| f.in_test[i])
        };
        assert_eq!(flag_of("body"), Some(true));
        assert_eq!(flag_of("lib"), Some(false));
    }

    #[test]
    fn cfg_not_test_stays_linted() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        assert!(f.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn attribute_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        let flag_of = |name: &str| {
            (0..f.tokens.len())
                .find(|&i| f.text(i) == name)
                .map(|i| f.in_test[i])
        };
        assert_eq!(flag_of("HashMap"), Some(true));
        assert_eq!(flag_of("lib"), Some(false));
    }

    #[test]
    fn stacked_attributes_are_covered() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() {} }\nfn lib() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        let flag_of = |name: &str| {
            (0..f.tokens.len())
                .find(|&i| f.text(i) == name)
                .map(|i| f.in_test[i])
        };
        assert_eq!(flag_of("x"), Some(true));
        assert_eq!(flag_of("lib"), Some(false));
    }
}
