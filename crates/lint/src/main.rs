//! `spotweb-lint` CLI: analyze the workspace, print diagnostics,
//! optionally write the byte-stable `lint_report.json`.
//!
//! ```text
//! spotweb-lint [--root DIR] [--json FILE] [--list-allows] [--rules] [--quiet]
//! spotweb-lint --bless-check [--root DIR] [--base-manifest FILE] [CHANGED_PATH...]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings, `2` usage or I/O
//! error. `--list-allows` prints every allow pragma with its reason —
//! the full suppression surface — and exits by the same rule, so a
//! pragma audit cannot mask a failing tree.
//!
//! `--bless-check` is the CI gate for golden governance: it runs only
//! the manifest-consistency checks, plus — given `--base-manifest`
//! (the merge base's `MANIFEST.json`) and the list of changed paths
//! from the PR diff — the epoch-bump check that fails any diff
//! touching a golden fixture without blessing it.

use std::path::PathBuf;
use std::process::ExitCode;

use spotweb_lint::manifest::{self, Manifest};
use spotweb_lint::rules::RULES;
use spotweb_lint::{find_workspace_root, lint_workspace, LintConfig};

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    list_allows: bool,
    rules: bool,
    quiet: bool,
    bless_check: bool,
    base_manifest: Option<PathBuf>,
    changed: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: None,
        json: None,
        list_allows: false,
        rules: false,
        quiet: false,
        bless_check: false,
        base_manifest: None,
        changed: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => out.root = Some(PathBuf::from(args.next().ok_or("--root needs a dir")?)),
            "--json" => out.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?)),
            "--list-allows" => out.list_allows = true,
            "--rules" => out.rules = true,
            "--quiet" => out.quiet = true,
            "--bless-check" => out.bless_check = true,
            "--base-manifest" => {
                out.base_manifest = Some(PathBuf::from(
                    args.next().ok_or("--base-manifest needs a path")?,
                ))
            }
            "--help" | "-h" => {
                return Err(
                    "usage: spotweb-lint [--root DIR] [--json FILE] [--list-allows] [--rules] [--quiet]\n\
                     \x20      spotweb-lint --bless-check [--root DIR] [--base-manifest FILE] [CHANGED_PATH...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => out.changed.push(path.to_string()),
        }
    }
    if !out.changed.is_empty() && !out.bless_check {
        return Err("positional paths are only valid with --bless-check".to_string());
    }
    if out.base_manifest.is_some() && !out.bless_check {
        return Err("--base-manifest is only valid with --bless-check".to_string());
    }
    Ok(out)
}

/// Run the `--bless-check` gate. Uses the manifest module's path
/// constants throughout so no golden-directory literal appears in a
/// function body (the analyzer's own `golden-write-outside-bless`
/// rule scans this crate too).
fn run_bless_check(root: &std::path::Path, args: &Args) -> ExitCode {
    let input = match manifest::load_input(root) {
        Ok(Some(input)) => input,
        Ok(None) => {
            eprintln!(
                "spotweb-lint: {} has no {} directory",
                root.display(),
                manifest::GOLDEN_DIR
            );
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("spotweb-lint: reading {}: {e}", manifest::GOLDEN_DIR);
            return ExitCode::from(2);
        }
    };
    let mut findings = manifest::check_input(&input);

    if let Some(base_path) = &args.base_manifest {
        let base_text = match std::fs::read_to_string(base_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("spotweb-lint: reading {}: {e}", base_path.display());
                return ExitCode::from(2);
            }
        };
        let base = match Manifest::parse(&base_text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("spotweb-lint: base manifest: {e}");
                return ExitCode::from(2);
            }
        };
        let current = input
            .manifest_text
            .as_deref()
            .and_then(|t| Manifest::parse(t).ok())
            .unwrap_or_default();
        // Changed paths come in repo-relative from the CI diff; keep
        // only top-level golden fixtures, manifest excluded.
        let prefix = format!("{}/", manifest::GOLDEN_DIR);
        let changed: Vec<String> = args
            .changed
            .iter()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|n| *n != manifest::MANIFEST_NAME && !n.contains('/'))
            .map(str::to_string)
            .collect();
        findings.append(&mut manifest::check_epoch_bumps(&current, &base, &changed));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for f in &findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    println!("spotweb-lint: bless-check, {} finding(s)", findings.len());
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.rules {
        for r in RULES {
            println!(
                "{:<32} {}{}",
                r.id,
                r.summary,
                if r.allowlistable {
                    ""
                } else {
                    " [not allowlistable]"
                }
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("spotweb-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    if args.bless_check {
        return run_bless_check(&root, &args);
    }

    let report = match lint_workspace(&root, &LintConfig::spotweb()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spotweb-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("spotweb-lint: creating {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("spotweb-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.list_allows {
        print!("{}", report.render_allows());
    } else if !args.quiet {
        print!("{}", report.render_human());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
