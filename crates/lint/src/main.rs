//! `spotweb-lint` CLI: analyze the workspace, print diagnostics,
//! optionally write the byte-stable `lint_report.json`.
//!
//! ```text
//! spotweb-lint [--root DIR] [--json FILE] [--list-allows] [--rules] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings, `2` usage or I/O
//! error. `--list-allows` prints every allow pragma with its reason —
//! the full suppression surface — and exits by the same rule, so a
//! pragma audit cannot mask a failing tree.

use std::path::PathBuf;
use std::process::ExitCode;

use spotweb_lint::rules::RULES;
use spotweb_lint::{find_workspace_root, lint_workspace, LintConfig};

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    list_allows: bool,
    rules: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: None,
        json: None,
        list_allows: false,
        rules: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => out.root = Some(PathBuf::from(args.next().ok_or("--root needs a dir")?)),
            "--json" => out.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?)),
            "--list-allows" => out.list_allows = true,
            "--rules" => out.rules = true,
            "--quiet" => out.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: spotweb-lint [--root DIR] [--json FILE] [--list-allows] [--rules] [--quiet]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.rules {
        for r in RULES {
            println!(
                "{:<32} {}{}",
                r.id,
                r.summary,
                if r.allowlistable {
                    ""
                } else {
                    " [not allowlistable]"
                }
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("spotweb-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &LintConfig::spotweb()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spotweb-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("spotweb-lint: creating {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("spotweb-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.list_allows {
        print!("{}", report.render_allows());
    } else if !args.quiet {
        print!("{}", report.render_human());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
